"""The §2.4 transformability study over the synthetic JDK-like corpus.

Reproduces the paper's claim that "about 40% of the 8,200 classes and
interfaces in JDK 1.4.1 cannot be transformed", prints the per-package
breakdown and the reasons, and sweeps the effect of user code whose native
methods reference JDK classes.

Run with:  python examples/corpus_study.py
"""

from __future__ import annotations

from repro.corpus import generate_corpus, run_study, user_code_sensitivity


def main() -> None:
    corpus = generate_corpus()
    study = run_study(corpus)

    print(f"corpus size                     : {study.corpus_size} classes and interfaces")
    print(f"non-transformable               : {study.non_transformable} "
          f"({study.percent_non_transformable:.1f} %)")
    print("paper claim                     : about 40 %")
    print()

    print("per-package breakdown (percent non-transformable):")
    for breakdown in sorted(study.packages, key=lambda b: -b.fraction):
        bar = "#" * int(40 * breakdown.fraction)
        print(f"  {breakdown.package:16s} {100 * breakdown.fraction:5.1f}%  {bar}")
    print()

    print("reasons (a class may carry several):")
    for reason, count in study.reasons().items():
        print(f"  {count:5d}  {reason}")
    print()

    print("sensitivity to user code with native methods referencing the JDK:")
    print("  native fraction   non-transformable %   increase over baseline")
    for point in user_code_sensitivity(corpus, user_classes=400):
        print(
            f"  {point.native_fraction:14.2f}   {point.percent_non_transformable:18.1f}"
            f"   {point.percent_increase_over_baseline:+21.2f}"
        )


if __name__ == "__main__":
    main()
