"""The paper's Figure 1 scenario, end to end.

Objects of class A and class B hold references to a shared instance of class
C.  The example runs the identical interaction sequence four ways:

1. the original, untransformed classes;
2. the transformed program in a single address space;
3. the transformed program with C placed on a remote node behind a proxy; and
4. the transformed program where C starts local and is moved to the remote
   node *while the program is running*.

Run with:  python examples/figure1_redistribution.py
"""

from __future__ import annotations

from repro import ApplicationTransformer, Cluster, DistributionController
from repro.policy import all_local_policy, local, place_classes_on
from repro.workloads.figure1 import A, B, C, run_figure1_plain, run_figure1_scenario

VALUES = tuple(range(1, 11))


def show(label: str, result, cluster=None) -> None:
    line = f"{label:28s} total={result.total:<6} average={result.average:<6.2f}"
    if cluster is not None:
        line += (
            f" messages={cluster.metrics.total_messages:<4}"
            f" simulated_ms={cluster.clock.now * 1000:.2f}"
        )
    print(line)


def main() -> None:
    oracle = run_figure1_plain(VALUES)
    show("original program", oracle)

    # Transformed, single address space.
    local_app = ApplicationTransformer(all_local_policy()).transform([A, B, C])
    show("transformed, all local", run_figure1_scenario(local_app, VALUES))

    # Transformed, shared C remote from the start.
    remote_app = ApplicationTransformer(place_classes_on({"C": "server"})).transform([A, B, C])
    remote_cluster = Cluster(("client", "server"))
    remote_app.deploy(remote_cluster, default_node="client")
    show("transformed, C on server", run_figure1_scenario(remote_app, VALUES), remote_cluster)

    # Transformed, C moved to the server half-way through the run.
    policy = all_local_policy()
    policy.set_class("C", instances=local(dynamic=True))
    dynamic_app = ApplicationTransformer(policy).transform([A, B, C])
    dynamic_cluster = Cluster(("client", "server"))
    dynamic_app.deploy(dynamic_cluster, default_node="client")
    controller = DistributionController(dynamic_app, dynamic_cluster)

    shared = dynamic_app.new("C", "shared")
    holder_a = dynamic_app.new("A", shared)
    holder_b = dynamic_app.new("B", shared)
    midpoint = len(VALUES) // 2
    for value in VALUES[:midpoint]:
        holder_a.record(value)
        holder_b.record(value)
    print(f"... moving the shared C to the server after {midpoint} rounds ...")
    controller.make_remote(shared, "server")
    for value in VALUES[midpoint:]:
        holder_a.record(value)
        holder_b.record(value)

    print(
        f"{'transformed, C moved mid-run':28s} total={shared.get_total():<6} "
        f"average={shared.average():<6.2f} messages={dynamic_cluster.metrics.total_messages:<4}"
        f" simulated_ms={dynamic_cluster.clock.now * 1000:.2f}"
    )
    print()
    print("All four configurations observe the same totals:",
          oracle.total == shared.get_total())


if __name__ == "__main__":
    main()
