"""Adaptive distribution: the application follows its shifting workload.

An order-processing back end serves two phases: a *browse* phase driven by
the front node (catalog-heavy) and a *fulfilment* phase driven by the
warehouse node (order-store-heavy).  A static placement is wrong for at least
one of the phases; the adaptive distribution manager watches where the calls
come from and moves each hot object to the node that uses it.

Run with:  python examples/adaptive_orders.py
"""

from __future__ import annotations

from repro import ApplicationTransformer, Cluster, DistributionController
from repro.policy import AdaptiveDistributionManager, all_local_policy
from repro.workloads.orders import Catalog, CustomerSession, OrderStore, seed_catalog


def report(label: str, cluster) -> None:
    print(
        f"{label:34s} messages={cluster.metrics.total_messages:<5}"
        f" simulated_ms={cluster.clock.now * 1000:.2f}"
    )


def main() -> None:
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
        [Catalog, OrderStore, CustomerSession]
    )
    cluster = Cluster(("front", "warehouse"))
    app.deploy(cluster, default_node="front")
    controller = DistributionController(app, cluster)
    manager = AdaptiveDistributionManager(app, controller, threshold=0.6, min_calls=8)

    catalog = app.new("Catalog")
    orders = app.new("OrderStore")
    seed_catalog(catalog, product_count=20)
    manager.attach(catalog)
    manager.attach(orders)

    # ---- phase 1: browsing from the front node --------------------------------
    session = app.new("CustomerSession", "alice", catalog, orders)
    for index in range(30):
        session.browse([f"sku-{index % 20}", f"sku-{(index + 5) % 20}"])
        if index % 3 == 0:
            session.buy(f"sku-{index % 20}", 1)
    report("after browse phase (front node)", cluster)
    record = manager.adapt()
    print(f"  adaptation round 1: {record.moved} objects moved "
          f"({[s.describe() for s in record.applied]})")

    # ---- phase 2: fulfilment from the warehouse node ---------------------------
    with app.executing_on("warehouse"):
        pending = list(orders.pending())
        for order_id in pending:
            orders.fulfil(order_id)
        for _ in range(30):
            orders.order_count()
    report("after fulfilment phase (warehouse)", cluster)
    record = manager.adapt()
    print(f"  adaptation round 2: {record.moved} objects moved")
    for suggestion in record.applied:
        print(f"    moved {suggestion.class_name} -> {suggestion.target_node} "
              f"({suggestion.caller_share:.0%} of calls came from there)")

    # ---- phase 2 continues after the adaptation --------------------------------
    before = cluster.metrics.total_messages
    with app.executing_on("warehouse"):
        for _ in range(30):
            orders.order_count()
    after = cluster.metrics.total_messages
    print(f"warehouse-side calls after the move generated "
          f"{after - before} network messages")

    print()
    print(f"orders fulfilled : {len(pending)}")
    print(f"revenue          : {orders.revenue()}")
    print(f"boundary of OrderStore now: {controller.boundary_of(orders)}")


if __name__ == "__main__":
    main()
