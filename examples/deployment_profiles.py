"""Capturing and deciding distribution policy (the paper's stated future work).

This example closes the loop the paper sketches in its conclusions:

1. the application is transformed once, with every class *dynamic*;
2. a profiling run observes which node actually uses which object
   (the :class:`PlacementRecommender`);
3. the recommendation is captured as a deployment descriptor (plain JSON);
4. the same program is redeployed from that descriptor — no code changes —
   and the remote handles are guarded with retry-based fault tolerance.

Run with:  python examples/deployment_profiles.py
"""

from __future__ import annotations

from repro import ApplicationTransformer, Cluster
from repro.policy import all_local_policy
from repro.policy.loader import policy_to_dict
from repro.runtime import RetryPolicy, guard_handle
from repro.tools import (
    DeploymentDescriptor,
    NodeSpec,
    application_report,
    deployment_from_dict,
    profile_and_recommend,
    traffic_report,
)
from repro.workloads.shared_cache import Cache, CacheClient

CLASSES = [Cache, CacheClient]
NODES = ("front", "compute")


def build_profiling_app():
    """Everything dynamic, everything monitored: the profiling configuration."""
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(CLASSES)
    app.deploy(Cluster(NODES), default_node="front")
    return app


def profiling_workload(app, cache):
    """The cache is hammered by worker objects living on the compute node."""
    def run():
        with app.executing_on("compute"):
            clients = [app.new("CacheClient", f"worker-{i}", cache) for i in range(3)]
            for client in clients:
                client.warm(15)
                client.read_back(15)
    return run


def main() -> None:
    # ---- 1 + 2: profile the application ------------------------------------
    profiling_app = build_profiling_app()
    cache = profiling_app.new("Cache", 128)
    recommendation = profile_and_recommend(
        profiling_app, profiling_workload(profiling_app, cache), min_calls=10
    )
    print(recommendation.describe())
    print()

    # ---- 3: capture the decision as a deployment descriptor ----------------
    policy = recommendation.to_policy(transport="rmi", home_node="front")
    descriptor = DeploymentDescriptor(
        nodes=tuple(NodeSpec(node) for node in NODES),
        default_node="front",
        policy=policy,
    )
    print("captured deployment descriptor (excerpt):")
    captured = descriptor.to_dict()
    print("  nodes      :", [node["id"] for node in captured["nodes"]])
    print("  placements :", {
        name: entry.get("node", "local")
        for name, entry in policy_to_dict(policy)["classes"].items()
    })
    print()

    # ---- 4: redeploy the same program from the captured descriptor ----------
    production_app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(CLASSES)
    production_cluster = deployment_from_dict(captured).apply(production_app)

    cache = production_app.new("Cache", 128)
    # Remote handles get retry-based fault tolerance (paper §4: network failure).
    for handle in production_app.handles():
        if handle.meta.is_remote:
            guard_handle(handle, policy=RetryPolicy(max_attempts=3))

    with production_app.executing_on("compute"):
        clients = [production_app.new("CacheClient", f"worker-{i}", cache) for i in range(3)]
        for client in clients:
            client.warm(15)
            client.read_back(15)

    print(application_report(production_app))
    print()
    print(traffic_report(production_cluster, title="production run traffic"))


if __name__ == "__main__":
    main()
