"""Quickstart: transform an ordinary program and choose its distribution later.

The program below is plain Python — no middleware imports, no remote
interfaces, no stubs.  The RAFDA transformation turns it into a componentised
application whose objects can be local or remote depending on a policy that
is supplied at deployment time, not at design time.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ApplicationTransformer, Cluster, ServicePolicy, Session
from repro.policy import all_local_policy, place_classes_on


# --- the application, written with no distribution in mind -----------------

class AddressBook:
    """Stores name -> email entries."""

    def __init__(self, owner):
        self.owner = owner
        self.entries = {}

    def add(self, name, email):
        entries = self.entries
        entries[name] = email
        self.entries = entries
        return len(entries)

    def find(self, name):
        return self.entries.get(name)

    def size(self):
        return len(self.entries)


class Mailer:
    """Sends (pretend) mail using a shared address book."""

    def __init__(self, book):
        self.book = book
        self.sent = 0

    def send(self, name, subject):
        email = self.book.find(name)
        if email is None:
            return None
        self.sent = self.sent + 1
        return f"to={email} subject={subject}"


def drive(app) -> list[str]:
    """The same driver code runs whatever the distribution policy says."""
    book = app.new("AddressBook", "team")
    mailer = app.new("Mailer", book)
    book.add("ada", "ada@example.org")
    book.add("alan", "alan@example.org")
    sent = [
        mailer.send("ada", "Meeting"),
        mailer.send("alan", "Review"),
        mailer.send("grace", "Lost"),
    ]
    return [entry for entry in sent if entry is not None]


def main() -> None:
    classes = [AddressBook, Mailer]

    # 1. Single address space: the transformed program behaves like the original.
    local_app = ApplicationTransformer(all_local_policy()).transform(classes)
    local_result = drive(local_app)
    print("local deployment        :", local_result)

    # 2. The same program, redeployed with the address book on a server node.
    remote_app = ApplicationTransformer(
        place_classes_on({"AddressBook": "server"})
    ).transform(classes)
    cluster = Cluster(("workstation", "server"))
    remote_app.deploy(cluster, default_node="workstation")
    remote_result = drive(remote_app)
    print("distributed deployment  :", remote_result)
    print("identical behaviour     :", remote_result == local_result)
    print(
        "simulated network       : "
        f"{cluster.metrics.total_messages} messages, "
        f"{cluster.metrics.total_bytes} bytes, "
        f"{cluster.clock.now * 1000:.2f} simulated ms"
    )

    # 3. What the transformation generated for AddressBook.
    artifact_names = sorted(remote_app.emit_sources("AddressBook"))
    print("generated artifacts     :", ", ".join(artifact_names))

    # 4. The service façade: batching, pipelining, retries and replication
    #    are one declarative policy away — no hand-wired proxy stacks.
    policy = ServicePolicy(transport="rmi").with_batching(16)
    with Session(cluster, node="workstation") as session:
        book = session.service("bulk-book", policy, impl=AddressBook("bulk"),
                               node="server")
        futures = [
            book.future.add(f"user-{index}", f"user-{index}@example.org")
            for index in range(64)
        ]
        book.flush()                        # 64 adds, 4 batch messages
        sizes = [future.result() for future in futures]
        print("façade service          :", f"{book.size()} entries,",
              f"last add returned {sizes[-1]}")


if __name__ == "__main__":
    main()
