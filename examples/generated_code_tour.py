"""A tour of the code the transformation generates (Figures 2-5 of the paper).

Defines the paper's sample class ``X`` (with its collaborators ``Y`` and
``Z``), transforms it, and prints the generated interfaces, local
implementations, one proxy and both factories — the Python rendering of the
paper's Figures 3, 4 and 5.

Run with:  python examples/generated_code_tour.py
"""

from __future__ import annotations

from repro import ApplicationTransformer
from repro.policy import all_local_policy


# --- Figure 2: the sample application class X (plus collaborators) ----------

class Y:
    K = 42

    def __init__(self, base):
        self.base = base

    def n(self, j):
        return self.base + j


class Z:
    def __init__(self, seed):
        self.seed = seed

    def q(self, i):
        return self.seed * i


class X:
    z = Z(Y.K)

    def __init__(self, y):
        self.y = y

    def m(self, j):
        return self.y.n(j)

    @staticmethod
    def p(i):
        return X.z.q(i)


SHOWN_ARTIFACTS = (
    "X_O_Int",            # Figure 3: instance interface
    "X_O_Local",          # Figure 3: non-remote implementation
    "X_O_Proxy_SOAP",     # Figure 3: SOAP proxy
    "X_C_Int",            # Figure 4: class (static members) interface
    "X_C_Local",          # Figure 4: singleton implementation
    "X_O_Factory",        # Figure 5: object factory (make / init)
    "X_C_Factory",        # Figure 5: class factory (discover / clinit)
)


def main() -> None:
    app = ApplicationTransformer(all_local_policy()).transform([X, Y, Z])
    sources = app.emit_sources("X", transports=("soap", "rmi"))

    for name in SHOWN_ARTIFACTS:
        print("=" * 72)
        print(f"# {name}")
        print("=" * 72)
        print(sources[name])
        print()

    # And show that the generated code actually runs:
    y = app.new("Y", 5)
    x = app.new("X", y)
    print("x.m(3)              ->", x.m(3), "(original:", X(Y(5)).m(3), ")")
    print("statics('X').p(2)   ->", app.statics("X").p(2), "(original:", X.p(2), ")")


if __name__ == "__main__":
    main()
