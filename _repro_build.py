"""Minimal in-tree PEP 517 build backend.

The reproduction is built in offline environments where the ``wheel`` package
(and PyPI access for build isolation) may be unavailable, which breaks the
standard setuptools editable-install path.  This backend needs nothing beyond
the standard library: it produces wheels directly with :mod:`zipfile`.

* ``build_wheel``      — packages ``src/repro`` as a regular pure-Python wheel.
* ``build_editable``   — produces a wheel containing only a ``.pth`` file that
  points at ``src/``, which is all an editable install needs.
* ``build_sdist``      — a plain tar.gz of the project tree.

``pyproject.toml`` points at this module via ``build-backend``/``backend-path``
with an empty ``requires`` list, so ``pip install -e .`` works with or without
network access, build isolation and the ``wheel`` package.
"""

from __future__ import annotations

import base64
import hashlib
import os
import tarfile
import zipfile
from pathlib import Path

_ROOT = Path(__file__).resolve().parent
_NAME = "repro"
_VERSION = "1.0.0"
_TAG = "py3-none-any"


# ---------------------------------------------------------------------------
# metadata helpers
# ---------------------------------------------------------------------------

def _metadata() -> str:
    summary = (
        "Reproduction of 'A Reflective Approach to Providing Flexibility in "
        "Application Distribution' (RAFDA, Middleware 2003)"
    )
    lines = [
        "Metadata-Version: 2.1",
        f"Name: {_NAME}",
        f"Version: {_VERSION}",
        f"Summary: {summary}",
        "Requires-Python: >=3.10",
        "License: MIT",
    ]
    return "\n".join(lines) + "\n"


def _wheel_metadata() -> str:
    return (
        "Wheel-Version: 1.0\n"
        f"Generator: {_NAME}-in-tree-backend\n"
        "Root-Is-Purelib: true\n"
        f"Tag: {_TAG}\n"
    )


def _record_entry(archive_name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=").decode("ascii")
    return f"{archive_name},sha256={digest},{len(data)}"


class _WheelWriter:
    """Accumulates files and writes a spec-compliant wheel archive."""

    def __init__(self, directory: str, editable: bool) -> None:
        suffix = _TAG
        self.dist_info = f"{_NAME}-{_VERSION}.dist-info"
        self.filename = f"{_NAME}-{_VERSION}-{suffix}.whl"
        self.path = Path(directory) / self.filename
        self._entries: list[tuple[str, bytes]] = []
        self._editable = editable

    def add(self, archive_name: str, data: bytes) -> None:
        self._entries.append((archive_name, data))

    def finish(self) -> str:
        self.add(f"{self.dist_info}/METADATA", _metadata().encode("utf-8"))
        self.add(f"{self.dist_info}/WHEEL", _wheel_metadata().encode("utf-8"))
        record_name = f"{self.dist_info}/RECORD"
        record_lines = [_record_entry(name, data) for name, data in self._entries]
        record_lines.append(f"{record_name},,")
        record_data = ("\n".join(record_lines) + "\n").encode("utf-8")
        with zipfile.ZipFile(self.path, "w", compression=zipfile.ZIP_DEFLATED) as archive:
            for name, data in self._entries:
                archive.writestr(name, data)
            archive.writestr(record_name, record_data)
        return self.filename


# ---------------------------------------------------------------------------
# PEP 517 hooks
# ---------------------------------------------------------------------------

def get_requires_for_build_wheel(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_editable(config_settings=None):  # noqa: D103
    return []


def get_requires_for_build_sdist(config_settings=None):  # noqa: D103
    return []


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    dist_info = Path(metadata_directory) / f"{_NAME}-{_VERSION}.dist-info"
    dist_info.mkdir(parents=True, exist_ok=True)
    (dist_info / "METADATA").write_text(_metadata(), encoding="utf-8")
    (dist_info / "WHEEL").write_text(_wheel_metadata(), encoding="utf-8")
    return dist_info.name


def prepare_metadata_for_build_editable(metadata_directory, config_settings=None):
    return prepare_metadata_for_build_wheel(metadata_directory, config_settings)


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    writer = _WheelWriter(wheel_directory, editable=False)
    package_root = _ROOT / "src" / _NAME
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(_ROOT / "src")
        writer.add(str(relative).replace(os.sep, "/"), path.read_bytes())
    return writer.finish()


def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    writer = _WheelWriter(wheel_directory, editable=True)
    source_dir = str((_ROOT / "src").resolve())
    writer.add(f"__editable__.{_NAME}.pth", (source_dir + "\n").encode("utf-8"))
    return writer.finish()


def build_sdist(sdist_directory, config_settings=None):
    filename = f"{_NAME}-{_VERSION}.tar.gz"
    base = f"{_NAME}-{_VERSION}"
    include = ["pyproject.toml", "setup.py", "README.md", "DESIGN.md", "EXPERIMENTS.md",
               "_repro_build.py", "src", "tests", "benchmarks", "examples"]
    with tarfile.open(Path(sdist_directory) / filename, "w:gz") as archive:
        for entry in include:
            path = _ROOT / entry
            if path.exists():
                archive.add(path, arcname=f"{base}/{entry}")
    return filename
