"""Tests for the docstring-coverage gate (repro.tools.doccheck)."""

from __future__ import annotations

import io
import textwrap
from pathlib import Path

from repro.tools.doccheck import main, measure_module, measure_tree

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

SAMPLE = textwrap.dedent(
    '''
    """Module docstring."""

    class Documented:
        """Has one."""

        def covered(self):
            """Covered method."""

        def naked(self):
            return 1

        def _private(self):
            return 2

    class Bare:
        pass

    def helper():
        """Covered function."""

    def undocumented():
        pass

    def _internal():
        pass
    '''
)


def _sample_path(tmp_path) -> Path:
    path = tmp_path / "sample_module.py"
    path.write_text(SAMPLE, encoding="utf-8")
    return path


class TestMeasurement:
    def test_full_level_counts_public_defs(self, tmp_path):
        coverage = measure_module(_sample_path(tmp_path))
        # module + Documented + covered + naked + Bare + helper + undocumented
        assert coverage.total == 7
        assert coverage.covered == 4
        missing = "\n".join(coverage.missing)
        assert "Documented.naked" in missing
        assert "Bare" in missing
        assert "undocumented" in missing
        assert "_private" not in missing and "_internal" not in missing

    def test_api_level_counts_modules_and_classes_only(self, tmp_path):
        coverage = measure_module(_sample_path(tmp_path), include_functions=False)
        # module + Documented + Bare
        assert coverage.total == 3
        assert coverage.covered == 2
        assert coverage.percent == 100.0 * 2 / 3

    def test_empty_module_counts_its_missing_docstring(self, tmp_path):
        path = tmp_path / "empty.py"
        path.write_text("x = 1\n", encoding="utf-8")
        coverage = measure_module(path)
        assert (coverage.total, coverage.covered) == (1, 0)

    def test_measure_tree_walks_directories(self, tmp_path):
        _sample_path(tmp_path)
        (tmp_path / "second.py").write_text('"""Doc."""\n', encoding="utf-8")
        modules = measure_tree([tmp_path])
        assert len(modules) == 2


class TestGate:
    def _run(self, *argv):
        buffer = io.StringIO()
        code = main(list(argv), out=buffer)
        return code, buffer.getvalue()

    def test_repo_api_surface_is_fully_documented(self):
        code, output = self._run(str(REPO_SRC), "--level", "api", "--fail-under", "100")
        assert code == 0, output
        assert "100.0 %" in output

    def test_failing_threshold_exits_nonzero_and_lists_missing(self, tmp_path):
        _sample_path(tmp_path)
        code, output = self._run(str(tmp_path), "--fail-under", "99", "--list")
        assert code == 1
        assert "FAIL" in output
        assert "undocumented" in output

    def test_passing_threshold_exits_zero(self, tmp_path):
        _sample_path(tmp_path)
        code, _ = self._run(str(tmp_path), "--fail-under", "50")
        assert code == 0

    def test_no_files_found_is_an_error(self, tmp_path):
        code, output = self._run(str(tmp_path))
        assert code == 1
        assert "no Python files" in output

    def test_nonexistent_path_is_a_usage_error_not_a_pass(self, tmp_path):
        # A mistyped root must fail loudly (exit 2), not shrink the measured
        # surface to nothing and report vacuous success.
        code, output = self._run(str(tmp_path / "nowhere"), "--fail-under", "100")
        assert code == 2
        assert "no such file or directory" in output

    def test_analysis_package_api_surface_is_fully_documented(self):
        # The lint rules' docstrings double as `repro lint --explain` text,
        # so the analysis package itself must stay at 100 % API coverage.
        code, output = self._run(
            str(REPO_SRC / "analysis"), "--level", "api", "--fail-under", "100"
        )
        assert code == 0, output
        assert "100.0 %" in output
