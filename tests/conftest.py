"""Shared fixtures for the RAFDA reproduction test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the suite from a source checkout that has not been installed.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
_TESTS = Path(__file__).resolve().parent
if str(_TESTS) not in sys.path:
    sys.path.insert(0, str(_TESTS))

import sample_app  # noqa: E402

from repro.core.transformer import ApplicationTransformer  # noqa: E402
from repro.policy.policy import all_local_policy, place_classes_on  # noqa: E402
from repro.runtime.cluster import Cluster  # noqa: E402

SAMPLE_CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]
FIGURE1_CLASSES = None  # populated lazily to avoid importing workloads at collection


@pytest.fixture
def sample_classes():
    """The paper's Figure 2 sample classes (X, Y, Z)."""
    return list(SAMPLE_CLASSES)


@pytest.fixture
def local_app():
    """The sample application transformed with an all-local policy."""
    return ApplicationTransformer(all_local_policy()).transform(SAMPLE_CLASSES)


@pytest.fixture
def two_node_cluster():
    """A client/server cluster on a LAN-like simulated network."""
    return Cluster(("client", "server"))


@pytest.fixture
def three_node_cluster():
    """A three-node cluster used by redistribution and adaptive tests."""
    return Cluster(("front", "middle", "back"))


@pytest.fixture
def remote_y_app(two_node_cluster):
    """Sample app with instances of Y placed on the server node."""
    app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(SAMPLE_CLASSES)
    app.deploy(two_node_cluster, default_node="client")
    return app


@pytest.fixture
def figure1_classes():
    from repro.workloads.figure1 import A, B, C

    return [A, B, C]
