"""Unit tests for interface extraction (paper §2.1 and §2.2)."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.classmodel import TypeRef
from repro.core.interfaces import (
    adapt_type,
    class_factory_name,
    class_interface_name,
    class_local_name,
    class_proxy_name,
    extract_class_interface,
    extract_instance_interface,
    extract_interfaces,
    getter_name,
    instance_interface_name,
    instance_local_name,
    instance_proxy_name,
    object_factory_name,
    redirector_name,
    setter_name,
)
from repro.core.introspect import class_model_from_python
from repro.errors import InterfaceExtractionError


class TestNamingScheme:
    """The generated names follow the paper's A_O_Int / A_C_Int convention."""

    def test_interface_names(self):
        assert instance_interface_name("X") == "X_O_Int"
        assert class_interface_name("X") == "X_C_Int"

    def test_implementation_names(self):
        assert instance_local_name("X") == "X_O_Local"
        assert class_local_name("X") == "X_C_Local"

    def test_proxy_names_include_transport(self):
        assert instance_proxy_name("X", "soap") == "X_O_Proxy_SOAP"
        assert class_proxy_name("X", "rmi") == "X_C_Proxy_RMI"

    def test_factory_and_redirector_names(self):
        assert object_factory_name("X") == "X_O_Factory"
        assert class_factory_name("X") == "X_C_Factory"
        assert redirector_name("X") == "X_O_Redirector"

    def test_accessor_names(self):
        assert getter_name("y") == "get_y"
        assert setter_name("y") == "set_y"


class TestTypeAdaptation:
    def test_transformed_class_type_becomes_interface(self):
        assert adapt_type(TypeRef("Y"), {"Y"}) == TypeRef("Y_O_Int")

    def test_untransformed_class_type_is_untouched(self):
        assert adapt_type(TypeRef("Y"), {"Z"}) == TypeRef("Y")

    def test_primitive_type_is_untouched(self):
        assert adapt_type(TypeRef("int"), {"int"}) == TypeRef("int")


class TestInstanceInterfaceExtraction:
    def _interface(self):
        model = class_model_from_python(sample_app.X)
        return extract_instance_interface(model, {"X", "Y", "Z"})

    def test_interface_name_and_kind(self):
        interface = self._interface()
        assert interface.name == "X_O_Int"
        assert interface.kind == "instance"
        assert interface.source_class == "X"

    def test_fields_become_accessor_pairs(self):
        interface = self._interface()
        names = interface.method_names()
        assert "get_y" in names and "set_y" in names

    def test_instance_methods_are_captured(self):
        interface = self._interface()
        assert "m" in interface.method_names()

    def test_static_members_are_not_in_instance_interface(self):
        interface = self._interface()
        assert "p" not in interface.method_names()
        assert "get_z" not in interface.method_names()

    def test_accessor_metadata(self):
        interface = self._interface()
        getter = interface.get("get_y")
        setter = interface.get("set_y")
        assert getter.accessor_for == "y" and getter.accessor_kind == "get"
        assert setter.accessor_for == "y" and setter.accessor_kind == "set"
        assert setter.parameter_names == ("y",)

    def test_plain_methods_and_accessors_partition(self):
        interface = self._interface()
        accessor_names = {s.name for s in interface.accessors()}
        plain_names = {s.name for s in interface.plain_methods()}
        assert accessor_names.isdisjoint(plain_names)
        assert accessor_names | plain_names == set(interface.method_names())

    def test_extracting_from_interface_model_is_an_error(self):
        model = class_model_from_python(sample_app.X)
        model.is_interface = True
        with pytest.raises(InterfaceExtractionError):
            extract_instance_interface(model)


class TestClassInterfaceExtraction:
    def _interface(self):
        model = class_model_from_python(sample_app.X)
        return extract_class_interface(model, {"X", "Y", "Z"})

    def test_interface_name_and_kind(self):
        interface = self._interface()
        assert interface.name == "X_C_Int"
        assert interface.kind == "class"

    def test_static_field_becomes_accessor_pair(self):
        interface = self._interface()
        assert "get_z" in interface.method_names()
        assert "set_z" in interface.method_names()

    def test_static_method_is_captured_non_statically(self):
        interface = self._interface()
        signature = interface.get("p")
        assert signature is not None
        assert signature.parameter_names == ("i",)

    def test_instance_members_are_not_in_class_interface(self):
        interface = self._interface()
        assert "m" not in interface.method_names()
        assert "get_y" not in interface.method_names()

    def test_class_with_no_statics_yields_empty_interface(self):
        model = class_model_from_python(sample_app.Z)
        interface = extract_class_interface(model)
        assert interface.is_empty


class TestExtractInterfacesTogether:
    def test_both_interfaces_returned(self):
        model = class_model_from_python(sample_app.X)
        instance, class_interface = extract_interfaces(model, {"X", "Y", "Z"})
        assert instance.name == "X_O_Int"
        assert class_interface.name == "X_C_Int"

    def test_figure3_interface_shape_for_x(self):
        """Figure 3: X_O_Int has exactly get_y, set_y and m."""
        model = class_model_from_python(sample_app.X)
        interface = extract_instance_interface(model, {"X", "Y", "Z"})
        assert interface.method_names() == ["get_y", "set_y", "m"]

    def test_figure4_interface_shape_for_x(self):
        """Figure 4: X_C_Int has exactly get_z, set_z and p."""
        model = class_model_from_python(sample_app.X)
        interface = extract_class_interface(model, {"X", "Y", "Z"})
        assert interface.method_names() == ["get_z", "set_z", "p"]
