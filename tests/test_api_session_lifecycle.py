"""Session lifecycle: close() must not leak callbacks or event-queue work.

Regression suite for the façade teardown path: a session registers a rebind
listener on the cluster's (long-lived, shared) naming service, and a
replicated session additionally schedules heartbeat rounds on the event
queue and subscribes its replica manager to the detector.  Opening and
closing many sessions in one process must leave no trace of any of it.
"""

from __future__ import annotations

import pytest

from repro.api import ServicePolicy, Session
from repro.runtime.cluster import Cluster
from repro.workloads.bulk_orders import OrderIntake


@pytest.fixture
def cluster():
    return Cluster(("client", "shard-0", "shard-1"))


def _drain_queue(cluster, limit: int = 100_000) -> int:
    """Run the event queue dry; returns the number of events executed."""
    executed = 0
    while cluster.network.events.run_next():
        executed += 1
        assert executed < limit, "event queue never went idle (leaked reschedules)"
    return executed


class TestSessionClose:
    def test_close_unregisters_the_rebind_listener(self, cluster):
        before = cluster.naming.rebind_listener_count()
        session = Session(cluster, node="client")
        assert cluster.naming.rebind_listener_count() == before + 1
        session.close()
        assert cluster.naming.rebind_listener_count() == before

    def test_close_is_idempotent(self, cluster):
        session = Session(cluster, node="client")
        session.close()
        session.close()
        assert session.closed

    def test_close_stops_heartbeat_and_detaches_manager(self, cluster):
        session = Session(cluster, node="client")
        session.service(
            "orders",
            ServicePolicy(batch_window=4).with_replication(2),
            impl=OrderIntake(),
            node="shard-0",
            backup_nodes=["shard-1"],
        )
        detector = session.detector
        assert detector.listener_count() == 2  # the manager's two listeners
        session.close()
        assert not detector.running
        assert detector.watched_nodes() == []
        assert detector.listener_count() == 0
        # Whatever round was already scheduled becomes a no-op and the
        # queue goes idle instead of rescheduling forever.
        _drain_queue(cluster)

    def test_close_tears_down_even_when_the_drain_raises(self, cluster):
        """A failing drain must not skip the teardown (or wedge close())."""
        from repro.errors import NetworkError

        session = Session(cluster, node="client")
        svc = session.service(
            "orders",
            ServicePolicy(transport="rmi", batch_window=8),
            impl=OrderIntake(),
            node="shard-0",
        )
        svc.future.submit("sku-1", 1, 10)  # buffered, not yet shipped
        cluster.network.failures.crash_node("shard-0")
        with pytest.raises(NetworkError):
            session.close()  # the drain's flush hits the dead node
        assert session.closed
        assert cluster.naming.rebind_listener_count() == 0

    def test_exception_exit_still_unregisters(self, cluster):
        with pytest.raises(RuntimeError):
            with Session(cluster, node="client") as session:
                session.service("orders", impl=OrderIntake(), node="shard-0")
                raise RuntimeError("application error")
        assert cluster.naming.rebind_listener_count() == 0

    def test_fifty_sessions_do_not_leak_callbacks(self, cluster):
        """The regression scenario: 50 replicated sessions, opened and closed."""
        policy = (
            ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2)
            .with_replication(2)
        )
        for round_index in range(50):
            with Session(cluster, node="client") as session:
                svc = session.service(
                    f"orders-{round_index}",
                    policy,
                    impl=OrderIntake(),
                    node="shard-0",
                    backup_nodes=["shard-1"],
                )
                futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(8)]
                session.drain()
                assert all(f.ok for f in futures)
        assert cluster.naming.rebind_listener_count() == 0
        # No detector keeps probing, no sync loop keeps ticking: the event
        # queue drains completely instead of replenishing itself.
        _drain_queue(cluster)
        assert cluster.network.events.run_next() is False

    def test_closed_session_cannot_ship_ghost_batches(self):
        """A backoff re-ship left on the shared event queue by a dead session
        must not fire its batch when a later party pumps the queue."""
        from repro.network.failures import FailureModel
        from repro.runtime.faulttolerance import RetryPolicy

        cluster = Cluster(
            ("client", "shard-0", "shard-1"),
            failures=FailureModel(drop_probability=1.0),
        )
        intake = OrderIntake()
        session = Session(cluster, node="client")
        svc = session.service(
            "orders",
            ServicePolicy(transport="rmi", batch_window=2, pipeline_depth=2)
            .with_retry(RetryPolicy(max_attempts=50, initial_backoff=0.5)),
            impl=intake,
            node="shard-0",
        )
        future = svc.future.submit("sku-1", 1, 10)
        svc.flush()  # ships; the drop schedules a far-future backoff re-ship
        session.close(drain=False)
        assert svc.scheduler.stopped
        # A later session on the same cluster pumps the shared queue; the
        # dead session's requeued batch must fail, not execute.
        while cluster.network.events.run_next():
            pass
        assert future.done and not future.ok
        assert intake.accepted_count() == 0
        # And fresh submissions against the retired scheduler fail fast
        # instead of stranding a silently-pending future.
        from repro.errors import InvocationError

        with pytest.raises(InvocationError, match="stopped"):
            svc.scheduler.submit(svc.reference, "submit", "sku-2", 1, 10)

    def test_closed_session_batch_futures_fail_instead_of_shipping(self, cluster):
        """result() on a future buffered in a closed session's BatchPipe must
        fail — not flush a window of messages into the cluster."""
        from repro.errors import InvocationError

        intake = OrderIntake()
        session = Session(cluster, node="client")
        svc = session.service(
            "orders", ServicePolicy(batch_window=8), impl=intake, node="shard-0"
        )
        held = svc.future.submit("sku-1", 1, 10)
        session.close(drain=False)
        before = cluster.metrics.total_messages
        with pytest.raises(InvocationError, match="closed"):
            held.result()
        assert cluster.metrics.total_messages == before  # nothing shipped
        assert intake.accepted_count() == 0

    def test_dismantle_unexports_and_unbinds(self, cluster):
        """ROADMAP item: a dismantled session is fully reversible."""
        session = Session(cluster, node="client")
        before = cluster.space("shard-0").object_count()
        session.service("orders", impl=OrderIntake(), node="shard-0")
        assert "orders" in cluster.naming
        assert cluster.space("shard-0").object_count() == before + 1
        session.dismantle()
        assert session.closed
        assert "orders" not in cluster.naming
        assert cluster.space("shard-0").object_count() == before

    def test_dismantle_tears_down_replica_groups(self, cluster):
        session = Session(cluster, node="client")
        objects_before = {
            node: cluster.space(node).object_count() for node in cluster.node_ids()
        }
        svc = session.service(
            "orders",
            ServicePolicy(batch_window=4).with_replication(2),
            impl=OrderIntake(),
            node="shard-0",
            backup_nodes=["shard-1"],
        )
        svc.submit("sku-1", 1, 10)
        session.dismantle()
        assert "orders" not in cluster.naming
        for node in cluster.node_ids():
            assert cluster.space(node).object_count() == objects_before[node], node
        assert session.replica_manager.groups() == []
        _drain_queue(cluster)

    def test_dismantle_leaves_foreign_deployments_alone(self, cluster):
        owner = Session(cluster, node="client")
        owner.service("orders", impl=OrderIntake(), node="shard-0")
        attacher = Session(cluster, node="client")
        attacher.service("orders")  # attach only
        attacher.dismantle()
        assert "orders" in cluster.naming  # the owner's binding survived
        owner.dismantle()
        assert "orders" not in cluster.naming

    def test_dismantle_is_idempotent_and_safe_after_close(self, cluster):
        session = Session(cluster, node="client")
        session.service("orders", impl=OrderIntake(), node="shard-0")
        session.close()
        session.dismantle()
        session.dismantle()
        assert "orders" not in cluster.naming

    def test_fifty_dismantled_sessions_leak_nothing(self, cluster):
        """The leak regression, extended to cover dismantle(): names, exports,
        listeners and event-queue work must all be gone."""
        policy = (
            ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2)
            .with_replication(2)
            .with_caching(lease_ms=50)
        )
        objects_before = {
            node: cluster.space(node).object_count() for node in cluster.node_ids()
        }
        names_before = cluster.naming.names()
        for round_index in range(50):
            session = Session(cluster, node="client")
            svc = session.service(
                f"orders-{round_index}",
                policy,
                impl=OrderIntake(),
                node="shard-0",
                backup_nodes=["shard-1"],
            )
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(8)]
            svc.call("accepted_count")
            session.drain()
            assert all(f.ok for f in futures)
            session.dismantle()
        assert cluster.naming.names() == names_before
        assert cluster.naming.rebind_listener_count() == 0
        assert cluster.space("client").invalidation_listener_count() == 0
        for node in cluster.node_ids():
            assert cluster.space(node).object_count() == objects_before[node], node
        _drain_queue(cluster)
        assert cluster.network.events.run_next() is False

    def test_rebinds_after_close_do_not_touch_old_services(self, cluster):
        session = Session(cluster, node="client")
        svc = session.service("orders", impl=OrderIntake(), node="shard-0")
        old_ref = svc.reference
        session.close()
        replacement = cluster.space("shard-1").export(OrderIntake())
        cluster.naming.rebind("orders", replacement)
        assert svc.reference == old_ref  # the closed session stopped listening
