"""The coherent client-side result cache (runtime/caching + the wire frames).

Covers the subsystem bottom-up: control-frame round trips, the
:class:`~repro.runtime.caching.CachePolicy` value object, the
:class:`~repro.runtime.caching.ResultCache` mechanics (LRU, leases, the
version-token race guard), the façade integration (hits cost no messages,
writes invalidate **before** they are acknowledged, piggybacked
invalidations ride batch responses), cacheability metadata on generated
artifacts, and the adaptive policy's hit-rate discount.
"""

from __future__ import annotations

import pytest

from repro.api import CachePolicy, ServicePolicy, Session, cacheable
from repro.core.interfaces import cacheable_members, is_cacheable
from repro.errors import PolicyError, TransportError
from repro.runtime.caching import CacheManager, freeze_arguments
from repro.runtime.cluster import Cluster
from repro.transports.base import (
    attach_invalidations,
    frame_invalidation,
    frame_subscription,
    is_invalidation,
    is_subscription,
    parse_invalidation,
    parse_subscription,
    split_invalidations,
)


class Catalog:
    """A tiny key/value service with cacheable reads and plain writes."""

    def __init__(self):
        self.items = {}
        self.version = 0

    @cacheable
    def get_item(self, key):
        return self.items.get(key)

    @cacheable
    def item_count(self):
        return len(self.items)

    def put_item(self, key, value):
        self.items[key] = value
        self.version += 1
        return self.version


@pytest.fixture
def cluster():
    return Cluster(("reader", "writer", "server"))


def _sessions(cluster, reader_policy, writer_policy=None, impl=None):
    impl = impl if impl is not None else Catalog()
    reader = Session(cluster, node="reader")
    writer = Session(cluster, node="writer")
    svc = reader.service("catalog", reader_policy, impl=impl, node="server")
    wsvc = writer.service(
        "catalog", writer_policy or ServicePolicy(transport="rmi")
    )
    return reader, writer, svc, wsvc, impl


CACHED = ServicePolicy(transport="rmi").with_caching(lease_ms=500)


class TestControlFrames:
    def test_invalidation_round_trip(self):
        payload = frame_invalidation(["obj-2", "obj-1"])
        assert is_invalidation(payload)
        assert parse_invalidation(payload) == ["obj-1", "obj-2"]

    def test_subscription_round_trip(self):
        payload = frame_subscription("obj-1", "reader", 0.25)
        assert is_subscription(payload)
        body = parse_subscription(payload)
        assert body["object_id"] == "obj-1"
        assert body["node"] == "reader"
        assert body["lease"] == 0.25

    def test_unbounded_subscription(self):
        assert parse_subscription(frame_subscription("o", "n", None))["lease"] is None

    def test_piggyback_attach_and_split(self):
        inner = b"rmi\n{...}"
        wrapped = attach_invalidations(inner, ["obj-1"])
        ids, unwrapped = split_invalidations(wrapped)
        assert ids == ["obj-1"]
        assert unwrapped == inner

    def test_piggyback_without_ids_is_identity(self):
        inner = b"rmi\nbody"
        assert attach_invalidations(inner, []) == inner
        assert split_invalidations(inner) == ([], inner)

    def test_malformed_frames_raise(self):
        with pytest.raises(TransportError):
            parse_invalidation(b"!inv\nnot json")
        with pytest.raises(TransportError):
            parse_subscription(b"!sub\n[1,2]")
        with pytest.raises(TransportError):
            split_invalidations(b"!inv+\nnot json")


class TestCachePolicy:
    def test_defaults(self):
        policy = CachePolicy()
        assert policy.mode == "leases"
        assert policy.subscribes and policy.expires
        assert policy.lease_seconds == pytest.approx(0.05)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_entries": 0},
            {"lease_ms": 0},
            {"lease_ms": -5},
            {"mode": "psychic"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PolicyError):
            CachePolicy(**kwargs)

    def test_mode_properties(self):
        assert not CachePolicy(mode="invalidate").expires
        assert CachePolicy(mode="invalidate").subscribes
        assert not CachePolicy(mode="write_through").subscribes
        assert CachePolicy(mode="write_through").expires

    def test_service_policy_rejects_non_cache_policy(self):
        with pytest.raises(PolicyError):
            ServicePolicy(cache="yes please")

    def test_with_caching_knobs_conflict(self):
        with pytest.raises(PolicyError):
            ServicePolicy().with_caching(CachePolicy(), lease_ms=5)

    def test_freeze_arguments_rejects_unhashable_leaves(self):
        frozen = freeze_arguments(([1, 2], {"k": {"n": 1}}), {})
        assert hash(frozen) is not None
        with pytest.raises(TypeError):
            freeze_arguments((object().__class__.__dict__,), {})


class TestCacheableMetadata:
    def test_decorator_and_members(self):
        assert is_cacheable(Catalog.get_item)
        assert not is_cacheable(Catalog.put_item)
        assert cacheable_members(Catalog) == {"get_item", "item_count"}

    def test_markers_survive_subclassing(self):
        class Special(Catalog):
            pass

        assert "get_item" in cacheable_members(Special)

    def test_interface_extraction_flags_getters_and_marked_methods(self):
        import sample_app
        from repro.core.introspect import class_model_from_python
        from repro.core.interfaces import extract_instance_interface

        model = class_model_from_python(Catalog)
        interface = extract_instance_interface(model)
        names = set(interface.cacheable_method_names())
        assert "get_item" in names and "item_count" in names
        assert "put_item" not in names
        # Accessor getters are always cacheable; setters never are.
        y_interface = extract_instance_interface(class_model_from_python(sample_app.Y))
        y_names = set(y_interface.cacheable_method_names())
        assert any(name.startswith("get_") for name in y_names)
        assert not any(name.startswith("set_") for name in y_names)


class TestResultCacheMechanics:
    def _cache(self, cluster, policy=None):
        manager = CacheManager(cluster.space("reader"))
        cache = manager.create_cache(
            policy or CachePolicy(lease_ms=500), frozenset({"get_item"})
        )
        ref = cluster.space("server").export(Catalog())
        return manager, cache, ref

    def test_miss_fill_hit(self, cluster):
        manager, cache, ref = self._cache(cluster)
        hit, _ = cache.lookup(ref, "get_item", ("a",), {})
        assert not hit
        token = cache.begin_fill(ref)
        assert cache.store(ref, "get_item", ("a",), {}, 41, token)
        hit, value = cache.lookup(ref, "get_item", ("a",), {})
        assert hit and value == 41
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction(self, cluster):
        manager, cache, ref = self._cache(cluster, CachePolicy(max_entries=2, lease_ms=500))
        for key in ("a", "b", "c"):
            cache.store(ref, "get_item", (key,), {}, key, cache.begin_fill(ref))
        assert len(cache) == 2
        assert cache.lookup(ref, "get_item", ("a",), {}) == (False, None)
        assert cache.lookup(ref, "get_item", ("c",), {})[0]

    def test_lease_expiry_uses_simulated_time(self, cluster):
        manager, cache, ref = self._cache(cluster, CachePolicy(lease_ms=10))
        cache.store(ref, "get_item", ("a",), {}, 1, cache.begin_fill(ref))
        assert cache.lookup(ref, "get_item", ("a",), {})[0]
        cluster.clock.advance(0.02)  # 20 ms > the 10 ms lease
        assert not cache.lookup(ref, "get_item", ("a",), {})[0]
        assert cache.entries_expired == 1

    def test_version_race_discards_the_fill(self, cluster):
        """An invalidation arriving while a read is in flight voids its fill."""
        manager, cache, ref = self._cache(cluster)
        token = cache.begin_fill(ref)
        manager.bump_version(ref.object_id)  # a write raced the read
        assert not cache.store(ref, "get_item", ("a",), {}, "stale", token)
        assert cache.racy_fills_discarded == 1
        assert not cache.lookup(ref, "get_item", ("a",), {})[0]

    def test_pending_write_bypasses_lookup(self, cluster):
        from repro.runtime.pipelining import InvocationFuture

        manager, cache, ref = self._cache(cluster)
        cache.store(ref, "get_item", ("a",), {}, 1, cache.begin_fill(ref))
        write = InvocationFuture("put_item")
        cache.note_write(ref, write)
        assert not cache.lookup(ref, "get_item", ("a",), {})[0]
        write._resolve(7)
        # Entries were dropped by the write; a fresh fill works again.
        cache.store(ref, "get_item", ("a",), {}, 2, cache.begin_fill(ref))
        assert cache.lookup(ref, "get_item", ("a",), {}) == (True, 2)

    def test_manager_close_detaches_listener(self, cluster):
        space = cluster.space("reader")
        before = space.invalidation_listener_count()
        manager = CacheManager(space)
        assert space.invalidation_listener_count() == before + 1
        manager.close()
        manager.close()
        assert space.invalidation_listener_count() == before


class TestFacadeCaching:
    def test_hits_cost_no_messages(self, cluster):
        reader, writer, svc, wsvc, impl = _sessions(cluster, CACHED)
        wsvc.put_item("a", 1)
        assert svc.get_item("a") == 1
        before = cluster.metrics.total_messages
        for _ in range(10):
            assert svc.get_item("a") == 1
        assert cluster.metrics.total_messages == before
        assert svc.cache.hits == 10
        reader.close(), writer.close()

    def test_foreign_write_invalidates_before_it_is_acknowledged(self, cluster):
        reader, writer, svc, wsvc, impl = _sessions(cluster, CACHED)
        wsvc.put_item("a", 1)
        assert svc.get_item("a") == 1
        wsvc.put_item("a", 2)  # the ack carries the coherence guarantee
        assert cluster.space("reader").invalidations_received == 1
        assert svc.get_item("a") == 2
        reader.close(), writer.close()

    def test_own_write_through_cached_service(self, cluster):
        reader, writer, svc, wsvc, impl = _sessions(cluster, CACHED)
        svc.put_item("a", 1)
        assert svc.get_item("a") == 1
        svc.put_item("a", 2)
        assert svc.get_item("a") == 2
        reader.close(), writer.close()

    def test_batched_write_piggybacks_the_invalidation(self, cluster):
        """A cached+batched client's own writes invalidate via the batch
        response, not a separate !inv message."""
        policy = ServicePolicy(transport="rmi", batch_window=4).with_caching(
            lease_ms=500
        )
        reader, writer, svc, wsvc, impl = _sessions(cluster, policy)
        assert svc.get_item("a") is None  # fill (and subscribe)
        futures = [svc.future.put_item("a", n) for n in (1, 2, 3)]
        svc.flush()
        assert [f.result() for f in futures] == [1, 2, 3]
        assert cluster.space("server").invalidations_piggybacked == 1
        assert cluster.space("server").invalidations_sent == 0
        assert svc.get_item("a") == 3
        reader.close(), writer.close()

    def test_invalidate_mode_never_expires(self, cluster):
        policy = ServicePolicy(transport="rmi").with_caching(
            CachePolicy(mode="invalidate")
        )
        reader, writer, svc, wsvc, impl = _sessions(cluster, policy)
        wsvc.put_item("a", 1)
        assert svc.get_item("a") == 1
        cluster.clock.advance(60.0)  # any lease would be long gone
        before = cluster.metrics.total_messages
        assert svc.get_item("a") == 1
        assert cluster.metrics.total_messages == before
        wsvc.put_item("a", 2)
        assert svc.get_item("a") == 2
        reader.close(), writer.close()

    def test_write_through_mode_staleness_is_lease_bounded(self, cluster):
        policy = ServicePolicy(transport="rmi").with_caching(
            CachePolicy(mode="write_through", lease_ms=10)
        )
        reader, writer, svc, wsvc, impl = _sessions(cluster, policy)
        wsvc.put_item("a", 1)
        assert svc.get_item("a") == 1
        wsvc.put_item("a", 2)
        # No subscription: the stale value may be served within the lease...
        assert svc.get_item("a") == 1
        # ...but never beyond it.
        cluster.clock.advance(0.02)
        assert svc.get_item("a") == 2
        # Own writes invalidate immediately even in write_through mode.
        svc.put_item("a", 3)
        assert svc.get_item("a") == 3
        reader.close(), writer.close()

    def test_non_cacheable_members_always_dispatch(self, cluster):
        reader, writer, svc, wsvc, impl = _sessions(cluster, CACHED)
        svc.put_item("a", 1)
        before = cluster.metrics.total_messages
        svc.put_item("a", 2)
        assert cluster.metrics.total_messages > before
        reader.close(), writer.close()

    def test_attaching_session_uses_explicit_cacheable_list(self, cluster):
        """Without the impl class, CachePolicy(cacheable=...) supplies the
        metadata."""
        impl = Catalog()
        owner = Session(cluster, node="writer")
        owner.service("catalog", ServicePolicy(transport="rmi"), impl=impl, node="server")
        reader = Session(cluster, node="reader")
        svc = reader.service(
            "catalog",
            ServicePolicy(transport="rmi").with_caching(
                CachePolicy(lease_ms=500, cacheable=("get_item",))
            ),
        )
        impl.items["a"] = 5
        assert svc.get_item("a") == 5
        before = cluster.metrics.total_messages
        assert svc.get_item("a") == 5
        assert cluster.metrics.total_messages == before
        reader.close(), owner.close()

    def test_session_close_detaches_cache_manager(self, cluster):
        reader, writer, svc, wsvc, impl = _sessions(cluster, CACHED)
        assert cluster.space("reader").invalidation_listener_count() == 1
        reader.close()
        assert cluster.space("reader").invalidation_listener_count() == 0
        assert reader.cache_manager.closed
        writer.close()

    def test_shorter_lease_on_the_same_node_cannot_silence_invalidations(
        self, cluster
    ):
        """Regression: a second session on the same node subscribing with a
        shorter lease must not overwrite (and prematurely expire) the
        longer-lease subscription — the server keeps the later expiry."""
        impl = Catalog()
        long_reader = Session(cluster, node="reader")
        svc_long = long_reader.service(
            "catalog",
            ServicePolicy(transport="rmi").with_caching(lease_ms=1000),
            impl=impl,
            node="server",
        )
        writer = Session(cluster, node="writer")
        wsvc = writer.service("catalog", ServicePolicy(transport="rmi"))
        wsvc.put_item("k", "v1")
        assert svc_long.get_item("k") == "v1"  # cached under the long lease
        short_reader = Session(cluster, node="reader")
        svc_short = short_reader.service(
            "catalog",
            ServicePolicy(transport="rmi").with_caching(
                CachePolicy(lease_ms=1, cacheable=("get_item",))
            ),
        )
        assert svc_short.get_item("k") == "v1"  # subscribes with a 1 ms lease
        cluster.clock.advance(0.01)  # past the short lease, within the long one
        wsvc.put_item("k", "v2")
        assert svc_long.get_item("k") == "v2", "invalidation was silenced"
        long_reader.close(), short_reader.close(), writer.close()

    def test_lost_invalidation_waits_the_lease_out(self, cluster):
        """An undeliverable !inv frame falls back to the lease protocol: the
        write stalls until the subscriber's entries have expired."""
        reader, writer, svc, wsvc, impl = _sessions(
            cluster, ServicePolicy(transport="rmi").with_caching(lease_ms=50)
        )
        wsvc.put_item("a", 1)
        assert svc.get_item("a") == 1
        # Partition the reader so the invalidation cannot be delivered.
        cluster.network.failures.partition({"reader"}, {"writer", "server"})
        wsvc.put_item("a", 2)  # must wait out the reader's lease
        cluster.network.failures.heal()
        assert svc.get_item("a") == 2  # lease expired during the stall: no stale read
        reader.close(), writer.close()


class TestGeneratedProxyCaching:
    @pytest.fixture
    def app_cluster(self):
        import sample_app
        from repro.core.transformer import ApplicationTransformer
        from repro.policy.policy import all_local_policy

        app = ApplicationTransformer(all_local_policy()).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        return app, cluster

    def test_batch_proxy_carries_cacheable_metadata(self, app_cluster):
        app, cluster = app_cluster
        proxy_cls = app.artifacts("Y").batch_proxy_for("rmi")
        names = set(proxy_cls._repro_cacheable_members)
        assert any(name.startswith("get_") for name in names)
        assert not any(name.startswith("set_") for name in names)

    def test_batch_proxy_serves_hits_without_round_trips(self, app_cluster):
        app, cluster = app_cluster
        server_space = cluster.space("server")
        impl = app.artifacts("Y").local_cls()
        impl.set_base(13)
        ref = server_space.export(impl)
        manager = CacheManager(cluster.space("client"))
        cache = manager.create_cache(CachePolicy(lease_ms=500))
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            ref, cluster.space("client")
        ).enable_caching(cache)
        assert proxy.get_base().result() == 13  # miss: fills
        before = cluster.metrics.total_messages
        assert proxy.get_base().result() == 13  # hit: no traffic
        assert cluster.metrics.total_messages == before
        assert cache.hits == 1

    def test_batch_proxy_write_invalidates_and_refills(self, app_cluster):
        app, cluster = app_cluster
        impl = app.artifacts("Y").local_cls()
        impl.set_base(1)
        ref = cluster.space("server").export(impl)
        manager = CacheManager(cluster.space("client"))
        cache = manager.create_cache(CachePolicy(lease_ms=500))
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            ref, cluster.space("client")
        ).enable_caching(cache)
        assert proxy.get_base().result() == 1
        proxy.set_base(2).result()  # a write through the same proxy
        assert proxy.get_base().result() == 2

    def test_class_batch_proxy_batches_static_calls(self, app_cluster):
        """ROADMAP item: class singletons route through the batch-aware path."""
        app, cluster = app_cluster
        artifacts = app.artifacts("Y")
        proxy_cls = artifacts.batch_proxy_for("rmi", kind="class")
        assert proxy_cls.__name__ == "Y_C_BatchProxy_RMI"
        singleton = artifacts.class_local_cls.get_me()
        ref = cluster.space("server").export(singleton)
        proxy = proxy_cls(ref, cluster.space("client"), max_batch=8)
        futures = [proxy.get_K() for _ in range(4)]
        batches_before = cluster.space("client").batches_sent
        proxy.flush()
        assert cluster.space("client").batches_sent == batches_before + 1
        assert all(future.result() == singleton.get_K() for future in futures)

    def test_unknown_kind_raises_clearly(self, app_cluster):
        from repro.errors import GenerationError

        app, _ = app_cluster
        with pytest.raises(GenerationError, match="class batch proxy"):
            app.artifacts("Y").batch_proxy_for("carrier-pigeon", kind="class")

    def test_emitted_listing_includes_class_batch_proxy(self, app_cluster):
        app, _ = app_cluster
        sources = app.emit_sources("Y", transports=("rmi",))
        assert "Y_C_BatchProxy_RMI" in sources
        assert "_repro_cacheable_members" in sources["Y_O_BatchProxy_RMI"]


class TestAdaptiveHitRateTerm:
    def _manager(self, **kwargs):
        import sample_app
        from repro.core.transformer import ApplicationTransformer
        from repro.policy.adaptive import AdaptiveDistributionManager
        from repro.policy.policy import all_local_policy
        from repro.runtime.redistribution import DistributionController

        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        cluster = Cluster(("front", "back"))
        app.deploy(cluster, default_node="front")
        controller = DistributionController(app, cluster)
        return app, AdaptiveDistributionManager(
            app, controller, threshold=0.6, min_calls=10, **kwargs
        )

    def test_hit_ratio_validation(self):
        from repro.errors import RedistributionError

        with pytest.raises(RedistributionError):
            self._manager(cache_hit_ratio=1.0)
        with pytest.raises(RedistributionError):
            self._manager(cache_hit_ratio=-0.1)

    def test_configured_ratio_discounts_the_window(self):
        app, manager = self._manager(cache_hit_ratio=0.75)
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        with app.executing_on("back"):
            for _ in range(20):
                y.n(1)
        # 20 observed calls, 75% served from cache -> 5 amortised < min_calls.
        assert manager.amortised_call_count(monitor) == pytest.approx(5.0)
        assert manager.evaluate() == []

    def test_measured_ratio_supersedes_configured(self):
        class FakeCache:
            hits = 90
            misses = 10

        app, manager = self._manager(cache_hit_ratio=0.0)
        manager.connect_cache(FakeCache())
        assert manager.effective_cache_hit_ratio() == pytest.approx(0.9)
        manager.connect_cache(None)
        assert manager.effective_cache_hit_ratio() == 0.0

    def test_unhit_cache_falls_back_to_configured(self):
        class EmptyCache:
            hits = 0
            misses = 0

        app, manager = self._manager(cache_hit_ratio=0.5)
        manager.connect_cache(EmptyCache())
        assert manager.effective_cache_hit_ratio() == pytest.approx(0.5)
