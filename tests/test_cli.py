"""Unit tests for the command-line interface."""

from __future__ import annotations

import io
import json
import textwrap

import pytest

from repro.api.errors import ReproError
from repro.cli import build_parser, load_classes_from_file, main

APP_SOURCE = textwrap.dedent(
    '''
    """A tiny application used by the CLI tests."""

    from repro.core.introspect import native


    class Ledger:
        RATE = 3

        def __init__(self, owner):
            self.owner = owner
            self.balance = 0

        def credit(self, amount):
            self.balance = self.balance + amount
            return self.balance

        @staticmethod
        def convert(amount):
            return amount * Ledger.RATE


    class NativeBridge:
        @native
        def poke(self, register):
            return register
    '''
)


@pytest.fixture
def app_file(tmp_path):
    path = tmp_path / "ledger_app.py"
    path.write_text(APP_SOURCE, encoding="utf-8")
    return path


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestClassLoading:
    def test_loads_only_classes_defined_in_the_file(self, app_file):
        classes = load_classes_from_file(app_file)
        assert {cls.__name__ for cls in classes} == {"Ledger", "NativeBridge"}

    def test_subset_selection(self, app_file):
        classes = load_classes_from_file(app_file, ["Ledger"])
        assert [cls.__name__ for cls in classes] == ["Ledger"]

    def test_missing_class_is_an_error(self, app_file):
        with pytest.raises(ReproError):
            load_classes_from_file(app_file, ["Ghost"])

    def test_missing_file_is_an_error(self, tmp_path):
        with pytest.raises(ReproError):
            load_classes_from_file(tmp_path / "nope.py")


class TestAnalyzeCommand:
    def test_analyze_reports_both_outcomes(self, app_file):
        code, output = run_cli("analyze", str(app_file))
        assert code == 0
        assert "[ok]   Ledger" in output
        assert "[skip] NativeBridge" in output
        assert "native" in output

    def test_analyze_subset(self, app_file):
        code, output = run_cli("analyze", str(app_file), "--classes", "Ledger")
        assert code == 0
        assert "NativeBridge" not in output

    def test_analyze_missing_file_reports_error(self, tmp_path):
        code, output = run_cli("analyze", str(tmp_path / "missing.py"))
        assert code == 2
        assert "error:" in output


class TestEmitCommand:
    def test_emit_prints_generated_artifacts(self, app_file):
        code, output = run_cli("emit", str(app_file), "--cls", "Ledger")
        assert code == 0
        assert "Ledger_O_Int" in output
        assert "Ledger_O_Local" in output
        assert "Ledger_O_Factory" in output
        assert "that.set_owner(owner)" in output

    def test_emit_respects_transport_selection(self, app_file):
        code, output = run_cli("emit", str(app_file), "--cls", "Ledger", "--transports", "corba")
        assert code == 0
        assert "Ledger_O_Proxy_CORBA" in output
        assert "Ledger_O_Proxy_SOAP" not in output

    def test_emit_for_non_transformable_class_fails(self, app_file):
        code, output = run_cli("emit", str(app_file), "--cls", "NativeBridge")
        assert code == 1
        assert "was not transformed" in output


class TestReportCommand:
    def test_report_without_policy(self, app_file):
        code, output = run_cli("report", str(app_file))
        assert code == 0
        assert "RAFDA transformed application" in output
        assert "Ledger" in output

    def test_report_with_policy_file(self, app_file, tmp_path):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text(
            json.dumps(
                {"classes": {"Ledger": {"placement": "remote", "node": "server"}}}
            ),
            encoding="utf-8",
        )
        code, output = run_cli("report", str(app_file), "--policy", str(policy_path))
        assert code == 0
        assert "instances on 'server'" in output


class TestCorpusAndTemplateCommands:
    def test_corpus_study_smoke(self):
        code, output = run_cli("corpus-study", "--seed", "7")
        assert code == 0
        assert "corpus classes            : 8200" in output
        assert "%" in output

    def test_policy_template_round_robin(self):
        code, output = run_cli(
            "policy-template", "--classes", "A,B,C", "--nodes", "n1,n2", "--transport", "soap"
        )
        assert code == 0
        config = json.loads(output)
        assert config["classes"]["A"]["node"] == "n1"
        assert config["classes"]["B"]["node"] == "n2"
        assert config["classes"]["C"]["node"] == "n1"
        assert config["classes"]["A"]["transport"] == "soap"

    def test_policy_template_requires_arguments(self):
        code, output = run_cli("policy-template", "--classes", "", "--nodes", "n1")
        assert code == 1

    def test_parser_lists_all_subcommands(self):
        parser = build_parser()
        help_text = parser.format_help()
        for command in (
            "analyze",
            "emit",
            "report",
            "corpus-study",
            "policy-template",
            "bench-batching",
            "bench-pipelining",
            "bench-replication",
            "bench-partition",
        ):
            assert command in help_text


class TestBenchPipeliningCommand:
    def test_reports_speedup_per_transport(self):
        code, output = run_cli(
            "bench-pipelining", "--transports", "rmi", "--orders", "64",
            "--batch-size", "16", "--window", "4", "--shards", "2",
        )
        assert code == 0
        assert "rmi" in output
        assert "x" in output  # a speedup column was printed

    def test_rejects_unknown_transports(self):
        code, output = run_cli("bench-pipelining", "--transports", "carrier-pigeon")
        assert code == 1
        assert "unknown transports" in output

    def test_rejects_degenerate_window(self):
        code, output = run_cli("bench-pipelining", "--window", "1")
        assert code == 1
        assert "--window" in output


class TestBenchReplicationCommand:
    def test_kill_run_reports_zero_losses(self):
        code, output = run_cli(
            "bench-replication", "--transports", "rmi", "--orders", "64",
            "--batch-size", "16", "--window", "4",
        )
        assert code == 0
        assert "killing 'shard-0'" in output
        lines = [line for line in output.splitlines() if line.startswith("rmi")]
        assert len(lines) == 1
        columns = lines[0].split()
        assert columns[1] == "64"  # every order accepted
        assert columns[2] == "0"  # zero client-visible failures
        assert columns[3] == "1"  # exactly one failover

    def test_no_kill_steady_state(self):
        code, output = run_cli(
            "bench-replication", "--transports", "rmi", "--orders", "32", "--no-kill",
        )
        assert code == 0
        assert "killing" not in output

    def test_rejects_unknown_transports(self):
        code, output = run_cli("bench-replication", "--transports", "carrier-pigeon")
        assert code == 1
        assert "unknown transports" in output

    def test_rejects_single_shard(self):
        code, output = run_cli("bench-replication", "--shards", "1")
        assert code == 1
        assert "--shards" in output

    def test_rejects_unknown_sync_mode(self):
        code, output = run_cli("bench-replication", "--sync", "psychic")
        assert code == 1
        assert "--sync" in output


class TestBenchPartitionCommand:
    def test_single_cell_reports_safety(self):
        code, output = run_cli(
            "bench-partition", "--transports", "inproc", "--cells", "A",
        )
        assert code == 0
        assert "every cell safe" in output
        assert "FAIL" not in output
        lines = [line for line in output.splitlines() if line.startswith("inproc")]
        assert len(lines) == 1
        columns = lines[0].split()
        assert columns[3] == "0"  # zero acknowledged writes lost
        assert columns[4] == "0"  # zero stale cached reads
        assert columns[6] == "1"  # cell A promotes exactly once

    def test_cells_are_case_insensitive(self):
        code, output = run_cli(
            "bench-partition", "--transports", "inproc", "--cells", "b",
        )
        assert code == 0
        assert " B " in output

    def test_rejects_unknown_transports(self):
        code, output = run_cli("bench-partition", "--transports", "carrier-pigeon")
        assert code == 1
        assert "unknown transports" in output

    def test_rejects_unknown_cells(self):
        code, output = run_cli("bench-partition", "--cells", "Z")
        assert code == 1
        assert "unknown cells" in output
