"""Unit tests for whole-application transformation executed in one address space.

This is the paper's §4 claim: the transformations act on a non-distributed
program to produce a componentised, semantically equivalent version, and the
local version of the transformed application executes within a single address
space.
"""

from __future__ import annotations

import pytest

import sample_app
import sample_unsupported
from repro.core.transformer import (
    ApplicationTransformer,
    DEFAULT_TRANSPORTS,
    transform_application,
)
from repro.errors import NotTransformableError, TransformationError, UnknownClassError
from repro.policy.policy import all_local_policy

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


class TestTransformDriver:
    def test_transform_returns_an_application_with_all_classes(self):
        app = transform_application(CLASSES)
        assert app.transformed_classes() == {"X", "Y", "Z"}

    def test_default_transports_are_generated(self):
        app = transform_application(CLASSES)
        assert set(app.artifacts("X").instance_proxies) == set(DEFAULT_TRANSPORTS)

    def test_custom_transport_list(self):
        app = transform_application(CLASSES, transports=("soap",))
        assert set(app.artifacts("X").instance_proxies) == {"soap"}

    def test_class_models_can_be_passed_directly(self):
        from repro.core.introspect import class_model_from_python

        models = [class_model_from_python(cls) for cls in CLASSES]
        app = transform_application(models)
        assert app.is_transformed("X")

    def test_empty_input_is_an_error(self):
        with pytest.raises(TransformationError):
            transform_application([])

    def test_invalid_input_is_an_error(self):
        with pytest.raises(TransformationError):
            transform_application(["not-a-class"])  # type: ignore[list-item]

    def test_unknown_class_lookup_raises(self):
        app = transform_application(CLASSES)
        with pytest.raises(UnknownClassError):
            app.artifacts("Missing")

    def test_non_transformable_classes_are_left_out(self):
        app = transform_application(
            CLASSES + [sample_unsupported.NativeIO, sample_unsupported.ProtocolError]
        )
        assert not app.is_transformed("NativeIO")
        assert not app.is_transformed("ProtocolError")
        assert app.is_transformed("X")

    def test_strict_mode_raises_for_non_transformable_input(self):
        transformer = ApplicationTransformer(strict=True)
        with pytest.raises(NotTransformableError):
            transformer.transform(CLASSES + [sample_unsupported.NativeIO])

    def test_policy_exclusion_is_honoured(self):
        policy = all_local_policy()
        policy.exclude("Z")
        app = ApplicationTransformer(policy).transform(CLASSES)
        assert not app.is_transformed("Z")
        assert app.is_transformed("X")


class TestSingleAddressSpaceExecution:
    @pytest.fixture
    def app(self):
        return transform_application(CLASSES)

    def test_program_behaviour_matches_original(self, app):
        for base, j, i in [(0, 0, 0), (5, 3, 2), (-4, 10, 7)]:
            expected = sample_app.run_original(base, j, i)
            y = app.new("Y", base)
            x = app.new("X", y)
            observed = (x.m(j), app.statics("X").p(i), app.statics("Y").get_K())
            assert observed == expected

    def test_new_applies_policy_and_new_local_bypasses_it(self, app):
        assert type(app.new("Y", 1)).__name__ == "Y_O_Local"
        assert type(app.new_local("Y", 1)).__name__ == "Y_O_Local"

    def test_objects_are_interface_typed(self, app):
        y = app.new("Y", 1)
        assert isinstance(y, app.interface("Y"))

    def test_independent_instances_do_not_share_state(self, app):
        first = app.new("Y", 1)
        second = app.new("Y", 100)
        assert first.n(0) == 1
        assert second.n(0) == 100

    def test_statics_shared_across_instances(self, app):
        # X.p uses the class singleton regardless of which instance exists.
        app.new("X", app.new("Y", 0))
        assert app.statics("X").p(2) == sample_app.X.p(2)

    def test_unbound_application_has_no_cluster(self, app):
        assert not app.is_bound
        assert app.cluster is None
        assert app.current_space is None

    def test_executing_on_requires_deployment(self, app):
        with pytest.raises(TransformationError):
            with app.executing_on("anywhere"):
                pass

    def test_emit_sources_available_for_every_class(self, app):
        for name in ("X", "Y", "Z"):
            sources = app.emit_sources(name)
            assert f"{name}_O_Int" in sources

    def test_handles_list_empty_without_dynamic_policy(self, app):
        app.new("Y", 1)
        assert app.handles() == []


class TestNamespaceSeeding:
    def test_module_globals_are_visible_to_rewritten_code(self):
        """Rewritten bodies may reference helpers from the original module."""
        app = transform_application(CLASSES)
        assert "run_original" in app.registry.namespace

    def test_registry_namespace_contains_generated_artifacts(self):
        app = transform_application(CLASSES)
        namespace = app.registry.namespace
        for name in ("X_O_Int", "X_O_Local", "X_O_Factory", "X_C_Factory"):
            assert name in namespace
