"""Sample classes exercising the §2.4 non-transformability rules.

Each class here triggers one of the reasons a class may be excluded from
transformation: native methods, special (Throwable-like) semantics, being the
super-class of a non-transformable class, or being referenced by one.
"""

from __future__ import annotations

from repro.core.introspect import native


class Codec:
    """Transformable helper class referenced by the native-method class."""

    def __init__(self, factor):
        self.factor = factor

    def scale(self, value):
        return value * self.factor


class NativeIO:
    """Contains a native method, so it cannot be inspected or transformed."""

    def __init__(self, path):
        self.path = path
        self.codec = Codec(2)

    @native
    def read_block(self, offset):
        return offset

    def describe(self):
        return self.path


class BaseDevice:
    """Super-class of a non-transformable class (rule 3 victim)."""

    def __init__(self, name):
        self.name = name

    def identity(self):
        return self.name


class RawDevice(BaseDevice):
    """Native subclass: makes its super-class non-transformable too."""

    @native
    def raw_access(self, register):
        return register


class ProtocolError(Exception):
    """A Throwable-like class: special VM semantics, never transformed."""

    def __init__(self, code):
        super().__init__(f"protocol error {code}")
        self.code = code


class CleanHelper:
    """A perfectly ordinary class no special rule applies to."""

    def __init__(self, value):
        self.value = value

    def doubled(self):
        return self.value * 2
