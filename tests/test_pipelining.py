"""Tests for the pipelined invocation scheduler and its event-queue substrate.

Batches posted through the scheduler are in flight concurrently: their
round-trip delays overlap in simulated time and their responses complete
futures strictly in *arrival* order, which differs from submission order
whenever shards answer at different speeds.  Per-call result integrity must
survive the reordering — every future resolves to exactly its own call's
value.
"""

from __future__ import annotations

import pytest

from repro.errors import InvocationError, NodeUnreachableError
from repro.network.clock import EventQueue, SimClock
from repro.network.simnet import LinkConfig
from repro.policy.adaptive import AdaptiveDistributionManager
from repro.runtime.batching import BatchingProxy, PendingCall
from repro.runtime.cluster import Cluster
from repro.runtime.pipelining import InvocationFuture, PipelineScheduler
from repro.workloads.pipelined_orders import run_sharded_order_scenario


class Echo:
    """Returns exactly what each call sent: the integrity oracle."""

    def echo(self, value):
        return value


@pytest.fixture
def cluster():
    return Cluster(("client", "shard-0", "shard-1"))


def _exported_echo(cluster, node):
    service = Echo()
    return service, cluster.space(node).export(service)


class TestEventQueue:
    def test_events_fire_in_timestamp_order(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(0.3, lambda: fired.append("late"))
        queue.schedule(0.1, lambda: fired.append("early"))
        queue.schedule(0.2, lambda: fired.append("middle"))
        assert queue.run_until_idle() == 3
        assert fired == ["early", "middle", "late"]

    def test_equal_timestamps_fire_in_fifo_order(self):
        queue = EventQueue(SimClock())
        fired = []
        for index in range(4):
            queue.schedule(0.5, lambda index=index: fired.append(index))
        queue.run_until_idle()
        assert fired == [0, 1, 2, 3]

    def test_run_next_advances_the_clock_to_the_fire_time(self):
        clock = SimClock()
        queue = EventQueue(clock)
        seen = []
        queue.schedule(0.25, lambda: seen.append(clock.now))
        assert queue.run_next()
        assert seen == [pytest.approx(0.25)]
        assert clock.now == pytest.approx(0.25)

    def test_callbacks_can_schedule_follow_up_events(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []

        def first():
            fired.append(("first", clock.now))
            queue.schedule(0.1, lambda: fired.append(("second", clock.now)))

        queue.schedule(0.1, first)
        assert queue.run_until_idle() == 2
        assert fired == [("first", pytest.approx(0.1)), ("second", pytest.approx(0.2))]

    def test_negative_delay_clamps_to_now(self):
        clock = SimClock()
        clock.advance(1.0)
        queue = EventQueue(clock)
        assert queue.schedule(-5.0, lambda: None) == pytest.approx(1.0)

    def test_idle_queue_reports_no_progress(self):
        queue = EventQueue(SimClock())
        assert not queue.run_next()
        assert queue.pending == 0
        assert queue.next_fire_time() is None

    def test_clear_drops_pending_events(self):
        queue = EventQueue(SimClock())
        queue.schedule(0.1, lambda: pytest.fail("cleared event fired"))
        queue.clear()
        assert queue.run_until_idle() == 0


class TestAsyncPost:
    def test_posted_round_trips_overlap_in_simulated_time(self, cluster):
        """Two concurrent posts cost ~max, two sequential sends cost ~sum."""
        _, ref0 = _exported_echo(cluster, "shard-0")
        client = cluster.space("client")

        started = cluster.clock.now
        client.invoke_remote(ref0, "echo", (1,))
        client.invoke_remote(ref0, "echo", (2,))
        sequential = cluster.clock.now - started

        responses = []
        started = cluster.clock.now
        payload = client._encode_batch_payload([(ref0, "echo", (3,), {})], None)
        cluster.network.post("client", "shard-0", payload, responses.append, responses.append)
        payload = client._encode_batch_payload([(ref0, "echo", (4,), {})], None)
        cluster.network.post("client", "shard-0", payload, responses.append, responses.append)
        cluster.network.events.run_until_idle()
        overlapped = cluster.clock.now - started

        assert len(responses) == 2
        assert overlapped < sequential * 0.75

    def test_post_to_unregistered_node_reports_error_via_callback(self, cluster):
        errors = []
        cluster.network.post(
            "client", "ghost", b"rmi\n{}",
            lambda response: pytest.fail("unexpected response"),
            errors.append,
        )
        cluster.network.events.run_until_idle()
        assert len(errors) == 1
        assert isinstance(errors[0], NodeUnreachableError)


class TestInvocationFuture:
    def test_resolution_and_callbacks(self):
        future = InvocationFuture("m")
        seen = []
        future.add_done_callback(seen.append)
        assert not future.done
        future._resolve(41)
        assert future.done and future.ok
        assert future.result() == 41
        assert future.exception() is None
        assert seen == [future]
        # A callback added after completion runs immediately.
        future.add_done_callback(seen.append)
        assert seen == [future, future]

    def test_failure_reraises_from_result(self):
        future = InvocationFuture("m")
        future._fail(ValueError("boom"))
        assert future.done and not future.ok
        with pytest.raises(ValueError):
            future.result()
        assert isinstance(future.exception(), ValueError)

    def test_unowned_pending_future_cannot_block(self):
        with pytest.raises(InvocationError):
            InvocationFuture("m").result()
        # exception() must not read as "success" for a call that never ran.
        with pytest.raises(InvocationError):
            InvocationFuture("m").exception()


class TestPipelineScheduler:
    def test_results_preserve_per_call_integrity(self, cluster):
        _, ref0 = _exported_echo(cluster, "shard-0")
        _, ref1 = _exported_echo(cluster, "shard-1")
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=4, window=8)
        futures = [
            scheduler.submit((ref0, ref1)[index % 2], "echo", f"payload-{index}")
            for index in range(20)
        ]
        scheduler.drain()
        assert [future.result() for future in futures] == [
            f"payload-{index}" for index in range(20)
        ]
        assert all(future.ok for future in futures)

    def test_completions_arrive_out_of_submission_order(self, cluster):
        """Futures for a fast shard overtake earlier submissions to a slow one."""
        cluster.network.set_symmetric_link(
            "client", "shard-0", LinkConfig(latency=0.050)
        )
        _, slow_ref = _exported_echo(cluster, "shard-0")
        _, fast_ref = _exported_echo(cluster, "shard-1")
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=4, window=8)
        # All slow-shard calls are submitted BEFORE any fast-shard call.
        slow = [scheduler.submit(slow_ref, "echo", f"slow-{i}") for i in range(4)]
        fast = [scheduler.submit(fast_ref, "echo", f"fast-{i}") for i in range(4)]
        completions = scheduler.drain()

        assert scheduler.out_of_order_completions > 0
        # Arrival order: every fast future completed before every slow one.
        positions = {id(future): pos for pos, future in enumerate(completions)}
        assert max(positions[id(f)] for f in fast) < min(positions[id(f)] for f in slow)
        # Reordering must not leak between slots: each future kept its value.
        assert [future.result() for future in slow] == [f"slow-{i}" for i in range(4)]
        assert [future.result() for future in fast] == [f"fast-{i}" for i in range(4)]

    def test_window_bounds_concurrent_batches(self, cluster):
        _, ref0 = _exported_echo(cluster, "shard-0")
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=2, window=2)
        futures = [scheduler.submit(ref0, "echo", index) for index in range(12)]
        scheduler.drain()
        assert scheduler.batches_shipped == 6
        assert scheduler.max_in_flight <= 2
        assert [future.result() for future in futures] == list(range(12))

    def test_result_on_a_pending_future_drives_the_pipeline(self, cluster):
        _, ref0 = _exported_echo(cluster, "shard-0")
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=32, window=4)
        future = scheduler.submit(ref0, "echo", "lazy")
        assert not future.done
        assert future.result() == "lazy"  # flushes and pumps internally

    def test_local_destination_short_circuits(self, cluster):
        service = Echo()
        local_ref = cluster.space("client").export(service)
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=4, window=4)
        future = scheduler.submit(local_ref, "echo", "home")
        scheduler.drain()
        assert future.result() == "home"
        assert cluster.metrics.total_messages == 0

    def test_context_manager_drains_on_clean_exit(self, cluster):
        _, ref0 = _exported_echo(cluster, "shard-0")
        with PipelineScheduler(cluster.space("client"), max_batch=8, window=4) as scheduler:
            futures = [scheduler.submit(ref0, "echo", index) for index in range(3)]
        assert [future.result() for future in futures] == [0, 1, 2]

    def test_submission_requires_a_reference(self, cluster):
        scheduler = PipelineScheduler(cluster.space("client"))
        with pytest.raises(InvocationError):
            scheduler.submit(object(), "echo", 1)

    def test_invalid_configuration_rejected(self, cluster):
        with pytest.raises(InvocationError):
            PipelineScheduler(cluster.space("client"), max_batch=0)
        with pytest.raises(InvocationError):
            PipelineScheduler(cluster.space("client"), window=0)

    def test_synchronous_dispatch_failure_releases_the_window_slot(self, cluster):
        """An unknown transport fails at encode time, before anything is
        posted: the error surfaces, the futures fail, and no window slot or
        outstanding count leaks (a later drain must not stall)."""
        from repro.errors import UnknownTransportError

        _, ref0 = _exported_echo(cluster, "shard-0")
        scheduler = PipelineScheduler(
            cluster.space("client"), max_batch=4, window=2, transport="carrier-pigeon"
        )
        future = scheduler.submit(ref0, "echo", "lost")
        with pytest.raises(UnknownTransportError):
            scheduler.flush()
        assert future.done and isinstance(future.exception(), UnknownTransportError)
        assert scheduler.in_flight == 0
        assert scheduler.outstanding == 0
        assert scheduler.drain() == [future]  # idle, not stalled

    def test_application_errors_stay_isolated_per_slot(self, cluster):
        class Picky:
            """Rejects odd values."""

            def accept(self, value):
                if value % 2:
                    raise ValueError(f"odd value {value}")
                return value

        service = Picky()
        reference = cluster.space("shard-0").export(service)
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=8, window=4)
        futures = [scheduler.submit(reference, "accept", index) for index in range(6)]
        scheduler.drain()
        assert [future.ok for future in futures] == [True, False] * 3
        assert futures[0].result() == 0
        with pytest.raises(Exception):
            futures[1].result()


class TestShardedWorkload:
    def test_pipelined_beats_sequential_with_identical_results(self):
        sequential = run_sharded_order_scenario(
            Cluster(("client", "server-0", "server-1")), pipelined=False, orders=128
        )
        pipelined = run_sharded_order_scenario(
            Cluster(("client", "server-0", "server-1")), pipelined=True, orders=128
        )
        assert pipelined["values"] == sequential["values"]
        assert pipelined["accepted"] == sequential["accepted"] == 128
        assert pipelined["simulated_seconds"] < sequential["simulated_seconds"]
        assert pipelined["max_in_flight"] > 1

    def test_scenario_validates_inputs(self):
        with pytest.raises(ValueError):
            run_sharded_order_scenario(Cluster(("client",)), orders=0)
        with pytest.raises(ValueError):
            run_sharded_order_scenario(Cluster(("client",)), servers=())


class TestBatchingProxyFutures:
    def test_pending_calls_are_invocation_futures(self, cluster):
        service, reference = _exported_echo(cluster, "shard-0")
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=8)
        pending = proxy.echo("hello")
        assert isinstance(pending, PendingCall)
        assert isinstance(pending, InvocationFuture)
        seen = []
        pending.add_done_callback(seen.append)
        proxy.flush()
        assert pending.done and pending.ok
        assert pending.result() == "hello"
        assert seen == [pending]

    def test_result_still_auto_flushes(self, cluster):
        _, reference = _exported_echo(cluster, "shard-0")
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=8)
        pending = proxy.echo("flush-me")
        assert pending.result() == "flush-me"


class TestPipelineAwareAdaptivePolicy:
    def _manager(self, **kwargs):
        # The manager's weighting is pure arithmetic over the monitor window;
        # application/controller are not exercised here.
        return AdaptiveDistributionManager(None, None, **kwargs)

    def test_pipeline_depth_amortises_observed_windows(self):
        manager = self._manager(batch_size=4, pipeline_depth=8)

        class Window:
            total_calls = 64

        assert manager.amortised_call_count(Window()) == pytest.approx(2.0)

    def test_default_depth_keeps_batch_only_weighting(self):
        batch_only = self._manager(batch_size=4)
        assert batch_only.pipeline_depth == 1

        class Window:
            total_calls = 64

        assert batch_only.amortised_call_count(Window()) == pytest.approx(16.0)

    def test_invalid_pipeline_depth_rejected(self):
        from repro.errors import RedistributionError

        with pytest.raises(RedistributionError):
            self._manager(pipeline_depth=0)
