"""Batch-awareness of the adaptive distribution policy.

When callers batch their remote invocations, n calls cost about n/B message
overheads, so the adaptive manager weighs observed windows by 1/B before
comparing them with ``min_calls``.  Decisions must flip exactly when the
amortised per-call cost crosses that boundary — and with ``batch_size=1``
the behaviour must be bit-identical to the unbatched seed heuristic.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import RedistributionError
from repro.policy.adaptive import AdaptiveDistributionManager
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.redistribution import DistributionController

SAMPLE = [sample_app.X, sample_app.Y, sample_app.Z]


def _setup(**manager_kwargs):
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(SAMPLE)
    cluster = Cluster(("front", "back"))
    app.deploy(cluster, default_node="front")
    controller = DistributionController(app, cluster)
    manager = AdaptiveDistributionManager(
        app, controller, threshold=0.6, min_calls=10, **manager_kwargs
    )
    return app, cluster, controller, manager


def _hammer_from_back(app, handle, calls):
    with app.executing_on("back"):
        for _ in range(calls):
            handle.n(1)


class TestAmortisedBoundary:
    def test_amortisation_suppresses_a_move_the_seed_would_make(self):
        """20 calls: unbatched → move; batch window 4 → 5 amortised < 10 → stay."""
        app, _, _, unbatched_manager = _setup(batch_size=1)
        y = app.new("Y", 1)
        unbatched_manager.attach(y)
        _hammer_from_back(app, y, 20)
        assert len(unbatched_manager.evaluate()) == 1

        app2, _, _, batched_manager = _setup(batch_size=4)
        y2 = app2.new("Y", 1)
        batched_manager.attach(y2)
        _hammer_from_back(app2, y2, 20)
        assert batched_manager.evaluate() == []

    def test_decision_flips_exactly_at_the_boundary(self):
        """min_calls=10, batch window 4: 39 calls stay (9.75), 40 move (10.0)."""
        for calls, expect_move in ((39, False), (40, True)):
            app, _, _, manager = _setup(batch_size=4)
            y = app.new("Y", 1)
            manager.attach(y)
            _hammer_from_back(app, y, calls)
            suggestions = manager.evaluate()
            assert bool(suggestions) is expect_move, (calls, suggestions)

    def test_suggestion_reports_amortised_calls(self):
        app, _, _, manager = _setup(batch_size=4)
        y = app.new("Y", 1)
        manager.attach(y)
        _hammer_from_back(app, y, 48)
        (suggestion,) = manager.evaluate()
        assert suggestion.call_count == 48
        assert suggestion.amortised_calls == pytest.approx(12.0)

    def test_amortised_count_helper(self):
        app, _, _, manager = _setup(batch_size=8)
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        _hammer_from_back(app, y, 24)
        assert manager.amortised_call_count(monitor) == pytest.approx(3.0)

    def test_invalid_batch_size_rejected(self):
        app, _, controller, _ = _setup()
        with pytest.raises(RedistributionError):
            AdaptiveDistributionManager(app, controller, batch_size=0)


class TestReplicationAmplification:
    """replication_factor=R weighs observed windows UP: each served write
    costs R messages under eager replication, so replicated traffic justifies
    a move sooner, not later."""

    def test_amplification_triggers_a_move_the_seed_would_skip(self):
        app, _, _, plain_manager = _setup()
        y = app.new("Y", 1)
        plain_manager.attach(y)
        _hammer_from_back(app, y, 6)  # 6 < min_calls=10 → stay
        assert plain_manager.evaluate() == []

        app2, _, _, replicated_manager = _setup(replication_factor=2)
        y2 = app2.new("Y", 1)
        replicated_manager.attach(y2)
        _hammer_from_back(app2, y2, 6)  # 6 * 2 = 12 >= 10 → move
        assert len(replicated_manager.evaluate()) == 1

    def test_amplification_composes_with_batch_amortisation(self):
        """batch 4 and 3 replicas: n * 3 / 4 crosses min_calls=10 at n=14."""
        for calls, expect_move in ((13, False), (14, True)):
            app, _, _, manager = _setup(batch_size=4, replication_factor=3)
            y = app.new("Y", 1)
            manager.attach(y)
            _hammer_from_back(app, y, calls)
            assert bool(manager.evaluate()) is expect_move, calls

    def test_invalid_replication_factor_rejected(self):
        app, _, controller, _ = _setup()
        with pytest.raises(RedistributionError):
            AdaptiveDistributionManager(app, controller, replication_factor=0)


class TestSeedEquivalence:
    """batch_size=1 (the default) must reproduce the seed heuristic exactly."""

    def test_default_manager_has_no_amortisation(self):
        app, _, _, manager = _setup()
        assert manager.batch_size == 1
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        _hammer_from_back(app, y, 17)
        assert manager.amortised_call_count(monitor) == 17.0

    def test_unbatched_decisions_match_seed_across_the_call_range(self):
        """Replicate the seed rule (move iff calls >= min_calls and share >= threshold)
        call-count by call-count and check the batch-aware code agrees."""
        for calls in (0, 1, 9, 10, 11, 25):
            app, _, _, manager = _setup(batch_size=1)
            y = app.new("Y", 1)
            manager.attach(y)
            _hammer_from_back(app, y, calls)
            suggestions = manager.evaluate()
            seed_would_move = calls >= manager.min_calls  # share is always 1.0 here
            assert bool(suggestions) is seed_would_move, calls
            if suggestions:
                assert suggestions[0].amortised_calls == float(calls)
                assert suggestions[0].call_count == calls

    def test_unbatched_suggestion_fields_unchanged(self):
        app, _, _, manager = _setup(batch_size=1)
        y = app.new("Y", 1)
        manager.attach(y)
        _hammer_from_back(app, y, 12)
        (suggestion,) = manager.evaluate()
        assert suggestion.target_node == "back"
        assert suggestion.caller_share == 1.0
        assert suggestion.call_count == 12
        assert "Y" in suggestion.describe()

    def test_adapt_still_moves_and_resets_window(self):
        app, _, controller, manager = _setup(batch_size=2)
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        _hammer_from_back(app, y, 40)
        record = manager.adapt()
        assert record.moved == 1
        assert controller.boundary_of(y) == ("remote", "back")
        assert monitor.total_calls == 0
