"""Tests for heartbeat frames, the failure detector and EventQueue.run_until.

Heartbeat probes are real messages on the simulated network: they pay link
delays, cross the same failure model as invocations, and are answered by
address spaces before any transport decoding.  Detection latency is therefore
a deterministic function of the probe interval, the miss threshold and the
link configuration.
"""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.network.clock import EventQueue, SimClock
from repro.network.heartbeat import HeartbeatDetector
from repro.runtime.cluster import Cluster
from repro.transports.base import (
    frame_ping,
    frame_pong,
    is_ping,
    parse_heartbeat,
)


class TestHeartbeatFrames:
    def test_ping_pong_roundtrip(self):
        assert is_ping(frame_ping(7))
        assert not is_ping(frame_pong(7))
        assert parse_heartbeat(frame_ping(7)) == 7
        assert parse_heartbeat(frame_pong(41)) == 41

    def test_malformed_sequence_raises(self):
        with pytest.raises(TransportError):
            parse_heartbeat(b"!ping\nnot-a-number")

    def test_non_heartbeat_payload_raises(self):
        with pytest.raises(TransportError):
            parse_heartbeat(b"rmi\nwhatever")

    def test_address_space_answers_pings_without_decoding(self):
        cluster = Cluster(("a", "b"))
        response = cluster.network.send_request("a", "b", frame_ping(3))
        assert parse_heartbeat(response) == 3
        assert cluster.space("b").pings_answered == 1
        # Probes are liveness traffic, not served invocations.
        assert cluster.space("b").invocations_served == 0


class TestRunUntil:
    def test_fires_only_events_within_the_deadline(self):
        clock = SimClock()
        queue = EventQueue(clock)
        fired = []
        queue.schedule(0.1, lambda: fired.append("early"))
        queue.schedule(0.5, lambda: fired.append("late"))
        assert queue.run_until(0.2) == 1
        assert fired == ["early"]
        assert clock.now == pytest.approx(0.2)
        assert queue.pending == 1

    def test_periodic_events_do_not_outlive_the_deadline(self):
        clock = SimClock()
        queue = EventQueue(clock)
        ticks = []

        def tick():
            ticks.append(clock.now)
            queue.schedule(0.1, tick)

        queue.schedule(0.1, tick)
        queue.run_until(0.35)
        assert len(ticks) == 3  # 0.1, 0.2, 0.3 — never past the deadline


@pytest.fixture
def cluster():
    return Cluster(("monitor", "a", "b"))


def _detector(cluster, **kwargs) -> HeartbeatDetector:
    kwargs.setdefault("interval", 0.01)
    kwargs.setdefault("miss_threshold", 2)
    detector = HeartbeatDetector(cluster.network, "monitor", **kwargs)
    detector.watch("a")
    detector.watch("b")
    detector.start()
    return detector


class TestHeartbeatDetector:
    def test_healthy_nodes_stay_up(self, cluster):
        detector = _detector(cluster)
        cluster.network.events.run_until(0.1)
        assert detector.down_nodes() == []
        assert detector.health("a").last_seen is not None
        assert detector.rounds >= 5

    def test_crashed_node_is_declared_after_threshold_misses(self, cluster):
        detector = _detector(cluster)
        declared = []
        detector.on_failure(lambda node, at: declared.append((node, at)))
        cluster.network.events.run_until(0.05)
        cluster.network.failures.crash_node("a")
        cluster.network.events.run_until(0.2)
        assert detector.is_down("a")
        assert not detector.is_down("b")
        assert [node for node, _ in declared] == ["a"]
        # Two misses at a 10 ms interval: declared within ~3 intervals.
        assert declared[0][1] <= 0.05 + 3 * 0.01

    def test_recovered_node_is_declared_up_again(self, cluster):
        detector = _detector(cluster)
        recovered = []
        detector.on_recovery(lambda node, at: recovered.append(node))
        cluster.network.failures.crash_node("a")
        cluster.network.events.run_until(0.1)
        assert detector.is_down("a")
        cluster.network.failures.recover_node("a")
        cluster.network.events.run_until(0.2)
        assert not detector.is_down("a")
        assert recovered == ["a"]
        assert detector.health("a").declared_up_at

    def test_partition_from_monitor_counts_as_failure(self, cluster):
        detector = _detector(cluster)
        cluster.network.failures.partition(["monitor"], ["b"])
        cluster.network.events.run_until(0.1)
        assert detector.is_down("b")
        assert not detector.is_down("a")

    def test_stop_halts_the_probe_loop(self, cluster):
        detector = _detector(cluster)
        cluster.network.events.run_until(0.05)
        detector.stop()
        rounds = detector.rounds
        # The already-scheduled round is a no-op; the queue drains.
        cluster.network.events.run_until_idle()
        assert detector.rounds == rounds

    def test_monitor_cannot_watch_itself(self, cluster):
        detector = HeartbeatDetector(cluster.network, "monitor")
        with pytest.raises(ValueError):
            detector.watch("monitor")

    def test_probe_traffic_is_metered(self, cluster):
        detector = _detector(cluster)
        before = cluster.metrics.total_messages
        cluster.network.events.run_until(0.05)
        assert cluster.metrics.total_messages > before
        assert detector.probes_sent >= 8


class TestInFlightCrash:
    def test_posted_message_fails_if_destination_dies_before_delivery(self):
        cluster = Cluster(("a", "b"))
        outcomes = []
        cluster.network.post(
            "a", "b", frame_ping(1), outcomes.append, outcomes.append
        )
        # The delivery event is pending; the node dies first.
        cluster.network.failures.crash_node("b")
        cluster.network.events.run_until_idle()
        assert len(outcomes) == 1
        assert isinstance(outcomes[0], Exception)
        assert cluster.space("b").pings_answered == 0
