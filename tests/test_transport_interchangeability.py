"""Experiment E7: remote and non-remote versions of a class are interchangeable.

The use of extracted interfaces makes the local implementation and the SOAP,
RMI and CORBA proxies interchangeable: the same driver code produces the same
results whichever implementation the policy selects, and the transport of an
already-running object can be exchanged without the callers noticing.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, place_classes_on, remote
from repro.runtime.cluster import Cluster
from repro.runtime.redistribution import DistributionController
from repro.workloads.figure1 import A, B, C, run_figure1_plain, run_figure1_scenario

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]
TRANSPORTS = ("soap", "rmi", "corba")


def _deploy(transport: str):
    app = ApplicationTransformer(
        place_classes_on({"Y": "server"}, transport=transport)
    ).transform(CLASSES)
    cluster = Cluster(("client", "server"))
    app.deploy(cluster, default_node="client")
    return app, cluster


class TestSameResultOnEveryTransport:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_remote_result_matches_local_result(self, transport):
        local_app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        local_y = local_app.new("Y", 5)
        expected = local_app.new("X", local_y).m(3)

        app, _ = _deploy(transport)
        y = app.new("Y", 5)
        assert type(y).__name__ == f"Y_O_Proxy_{transport.upper()}"
        assert app.new("X", y).m(3) == expected

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_figure1_scenario_is_transport_independent(self, transport):
        oracle = run_figure1_plain()
        app = ApplicationTransformer(
            place_classes_on({"C": "server"}, transport=transport)
        ).transform([A, B, C])
        app.deploy(Cluster(("client", "server")), default_node="client")
        assert run_figure1_scenario(app).as_tuple() == oracle.as_tuple()

    def test_exceptions_cross_every_transport(self):
        from repro.errors import RemoteInvocationError

        for transport in TRANSPORTS:
            app, _ = _deploy(transport)
            y = app.new("Y", None)  # base None: n() raises TypeError remotely
            with pytest.raises(RemoteInvocationError):
                y.n(1)


class TestTransportCostOrdering:
    def test_soap_moves_more_bytes_than_corba_than_rmi(self):
        bytes_per_transport = {}
        for transport in TRANSPORTS:
            app, cluster = _deploy(transport)
            y = app.new("Y", 5)
            for value in range(10):
                y.n(value)
            bytes_per_transport[transport] = cluster.metrics.total_bytes
        assert (
            bytes_per_transport["soap"]
            > bytes_per_transport["corba"]
            > bytes_per_transport["rmi"]
        )

    def test_soap_costs_more_simulated_time_than_rmi(self):
        elapsed = {}
        for transport in ("soap", "rmi"):
            app, cluster = _deploy(transport)
            y = app.new("Y", 5)
            for value in range(10):
                y.n(value)
            elapsed[transport] = cluster.clock.now
        assert elapsed["soap"] > elapsed["rmi"]

    def test_message_counts_are_identical_across_transports(self):
        """Interchangeability: the protocols differ in cost, not in structure."""
        counts = set()
        for transport in TRANSPORTS:
            app, cluster = _deploy(transport)
            y = app.new("Y", 5)
            for value in range(5):
                y.n(value)
            counts.add(cluster.metrics.total_messages)
        assert len(counts) == 1


class TestMixedAndSwappedTransports:
    def test_different_classes_can_use_different_transports(self):
        policy = all_local_policy()
        policy.set_class("Y", instances=remote("server", transport="soap"))
        policy.set_class("Z", instances=remote("server", transport="corba"))
        app = ApplicationTransformer(policy).transform(CLASSES)
        app.deploy(Cluster(("client", "server")), default_node="client")
        assert type(app.new("Y", 1)).__name__ == "Y_O_Proxy_SOAP"
        assert type(app.new("Z", 2)).__name__ == "Z_O_Proxy_CORBA"

    def test_transport_swap_mid_run_preserves_behaviour(self):
        policy = all_local_policy()
        policy.set_class("Y", instances=remote("server", dynamic=True))
        app = ApplicationTransformer(policy).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        controller = DistributionController(app, cluster)

        y = app.new("Y", 5)
        first = y.n(1)
        for transport in ("soap", "corba", "rmi"):
            controller.set_transport(y, transport)
            assert y.n(1) == first

    def test_callers_only_depend_on_the_interface(self):
        """A holder written against Y_O_Int accepts local, proxy and handle alike."""
        app, cluster = _deploy("rmi")
        interface = app.interface("Y")
        remote_y = app.new("Y", 5)
        local_y = app.new_local("Y", 5)
        assert isinstance(remote_y, interface) and isinstance(local_y, interface)
        x = app.new("X", remote_y)
        x_local = app.new("X", local_y)
        assert x.m(2) == x_local.m(2)
