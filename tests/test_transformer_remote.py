"""Unit tests for transformed applications deployed across address spaces."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer, transform_application
from repro.policy.policy import all_local_policy, place_classes_on, remote
from repro.runtime.cluster import Cluster

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


class TestDeployment:
    def test_deploy_binds_every_space_to_the_application(self):
        app = transform_application(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        for space in cluster.spaces():
            assert space.application is app
        assert app.is_bound
        assert app.current_space.node_id == "client"

    def test_deploy_with_placement_updates_the_policy(self):
        app = transform_application(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, placement={"Y": "server"}, default_node="client")
        assert app.policy.instance_decision("Y").is_remote
        assert app.policy.instance_decision("Y").node_id == "server"

    def test_default_node_defaults_to_first_cluster_node(self):
        app = transform_application(CLASSES)
        cluster = Cluster(("alpha", "beta"))
        app.deploy(cluster)
        assert app.current_space.node_id == "alpha"


class TestRemoteCreation:
    @pytest.fixture
    def deployed(self):
        app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        return app, cluster

    def test_factory_returns_proxy_for_remote_classes(self, deployed):
        app, _ = deployed
        y = app.new("Y", 5)
        assert type(y).__name__ == "Y_O_Proxy_RMI"

    def test_remote_object_lives_on_the_target_node(self, deployed):
        app, cluster = deployed
        app.new("Y", 5)
        assert cluster.space("server").object_count() == 1
        assert cluster.space("client").object_count() == 0

    def test_remote_and_local_instances_behave_identically(self, deployed):
        app, _ = deployed
        remote_y = app.new("Y", 5)
        local_y = app.new_local("Y", 5)
        assert remote_y.n(3) == local_y.n(3) == 8

    def test_remote_initialisation_goes_through_init(self, deployed):
        app, cluster = deployed
        y = app.new("Y", 9)
        assert y.get_base() == 9
        assert cluster.metrics.total_messages > 0

    def test_mixed_graph_local_holder_remote_collaborator(self, deployed):
        """X stays local, Y is remote; X.m still reaches through the proxy."""
        app, _ = deployed
        y = app.new("Y", 5)
        x = app.new("X", y)
        assert type(x).__name__ == "X_O_Local"
        assert x.m(3) == 8

    def test_objects_created_on_their_home_node_are_local(self, deployed):
        """When the executing node equals the placement target, no proxy is used."""
        app, _ = deployed
        with app.executing_on("server"):
            y = app.new("Y", 5)
        assert type(y).__name__ == "Y_O_Local"

    def test_transport_choice_follows_policy(self):
        app = ApplicationTransformer(
            place_classes_on({"Y": "server"}, transport="soap")
        ).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        assert type(app.new("Y", 1)).__name__ == "Y_O_Proxy_SOAP"


class TestDynamicHandles:
    def test_dynamic_policy_produces_redirector_handles(self):
        policy = all_local_policy(dynamic=True)
        app = ApplicationTransformer(policy).transform(CLASSES)
        app.deploy(Cluster(("client", "server")), default_node="client")
        y = app.new("Y", 4)
        assert type(y).__name__ == "Y_O_Redirector"
        assert y.n(1) == 5
        assert app.handles_for("Y") == [y]

    def test_dynamic_remote_handles_wrap_proxies(self):
        policy = all_local_policy()
        policy.set_class("Y", instances=remote("server", dynamic=True))
        app = ApplicationTransformer(policy).transform(CLASSES)
        app.deploy(Cluster(("client", "server")), default_node="client")
        y = app.new("Y", 4)
        assert type(y).__name__ == "Y_O_Redirector"
        meta = y.meta
        assert meta.is_remote and meta.node_id == "server"
        assert y.n(6) == 10

    def test_statics_remain_consistent_per_node(self):
        app = ApplicationTransformer(place_classes_on({"X": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        # The statics proxy on the client and direct access on the server see
        # the same singleton state.
        client_view = app.statics("X")
        with app.executing_on("server"):
            server_view = app.statics("X")
        replacement = app.new_local("Z", 3)
        server_view.set_z(replacement)
        assert client_view.p(5) == 15


class TestReferencePassingAcrossSpaces:
    def test_passing_a_local_object_to_a_remote_one_exports_it(self):
        """Arguments of transformed types travel by reference, not by copy."""
        app = ApplicationTransformer(place_classes_on({"X": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        y = app.new("Y", 7)          # local on client
        x = app.new("X", y)          # remote on server, receives a reference to y
        assert type(x).__name__ == "X_O_Proxy_RMI"
        assert x.m(3) == 10
        # The callback from server to client for y.n() generated traffic both ways.
        assert cluster.metrics.messages_between("server", "client") > 0

    def test_remote_reference_returned_to_its_home_resolves_locally(self):
        app = ApplicationTransformer(place_classes_on({"X": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        y = app.new("Y", 7)
        x = app.new("X", y)
        returned = x.get_y()
        # The reference came back to the node where the object lives, so the
        # runtime hands back the local implementation, not a proxy to a proxy.
        assert type(returned).__name__ == "Y_O_Local"
        assert returned.n(1) == 8
