"""Generated batching/pipelining-aware proxies (``A_O_BatchProxy_<T>``).

PR 1 made callers opt into batching by wrapping a generated proxy in a
``BatchingProxy``; the ROADMAP flagged that generated proxies should emit
batching-aware variants natively.  These tests pin that: the transformation
now generates, per transport, a proxy whose methods buffer into batch
windows and return futures — and which can be attached to a pipeline
scheduler for asynchronous streaming — with the equivalent source listing
emitted alongside the classic artifacts.
"""

from __future__ import annotations

import ast

import pytest
import sample_app

from repro.api import ServicePolicy, Session
from repro.core.transformer import ApplicationTransformer
from repro.errors import GenerationError
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.pipelining import InvocationFuture


@pytest.fixture
def app():
    return ApplicationTransformer(all_local_policy()).transform(
        [sample_app.X, sample_app.Y, sample_app.Z]
    )


@pytest.fixture
def cluster():
    return Cluster(("client", "server"))


class TestGeneratedClasses:
    def test_batch_proxy_generated_per_transport(self, app):
        artifacts = app.artifacts("Y")
        for transport in ("soap", "rmi", "corba"):
            cls = artifacts.batch_proxy_for(transport)
            assert cls.__name__ == f"Y_O_BatchProxy_{transport.upper()}"
            assert cls._repro_role == "batch-proxy"
            assert cls._repro_transport == transport

    def test_batch_proxy_implements_the_instance_interface(self, app):
        cls = app.artifacts("Y").batch_proxy_for("rmi")
        assert issubclass(cls, app.interface("Y"))

    def test_unknown_transport_raises(self, app):
        with pytest.raises(GenerationError):
            app.artifacts("Y").batch_proxy_for("carrier-pigeon")

    def test_methods_buffer_and_return_futures(self, app, cluster):
        intake = sample_app.Y(5)
        reference = cluster.space("server").export(intake, interface_name="Y_O_Int")
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            reference, cluster.space("client"), max_batch=4
        )
        before = cluster.metrics.total_messages
        futures = [proxy.n(i) for i in range(3)]
        assert all(isinstance(f, InvocationFuture) for f in futures)
        assert cluster.metrics.total_messages == before  # nothing shipped yet
        assert proxy.pending_batched_calls() == 3
        proxy.flush()
        assert [f.result() for f in futures] == [intake_free_n(5, i) for i in range(3)]
        # One batch message + one response for the whole window.
        assert cluster.metrics.total_messages - before == 2

    def test_window_auto_flushes(self, app, cluster):
        intake = sample_app.Y(1)
        reference = cluster.space("server").export(intake, interface_name="Y_O_Int")
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            reference, cluster.space("client"), max_batch=2
        )
        before = cluster.metrics.total_messages
        first = proxy.n(1)
        second = proxy.n(2)  # fills the window of 2
        assert first.done and second.done
        assert cluster.metrics.total_messages - before == 2

    def test_attach_streams_through_a_session_scheduler(self, app, cluster):
        """The pipelining-aware path: no manual wrapping, just attach."""
        intake = sample_app.Y(3)
        reference = cluster.space("server").export(intake, interface_name="Y_O_Int")
        with Session(cluster, node="client") as session:
            scheduler = session._scheduler_for(
                ServicePolicy(transport="rmi", batch_window=2, pipeline_depth=2)
            )
            proxy = app.artifacts("Y").batch_proxy_for("rmi")(
                reference, cluster.space("client")
            ).attach(scheduler)
            futures = [proxy.n(i) for i in range(6)]
            scheduler.drain()
            assert [f.result() for f in futures] == [intake_free_n(3, i) for i in range(6)]
            assert scheduler.batches_shipped >= 3

    def test_rebinding_resets_the_buffer_target(self, app, cluster):
        first, second = sample_app.Y(1), sample_app.Y(100)
        ref_a = cluster.space("server").export(first, interface_name="Y_O_Int")
        ref_b = cluster.space("server").export(second, interface_name="Y_O_Int")
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(ref_a, cluster.space("client"))
        assert proxy.n(1).result() == intake_free_n(1, 1)
        proxy.bind(ref_b, cluster.space("client"))
        assert proxy.n(1).result() == intake_free_n(100, 1)

    def test_rebinding_ships_the_buffered_tail_first(self, app, cluster):
        """bind() must not strand futures buffered for the old binding."""
        first, second = sample_app.Y(1), sample_app.Y(100)
        ref_a = cluster.space("server").export(first, interface_name="Y_O_Int")
        ref_b = cluster.space("server").export(second, interface_name="Y_O_Int")
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            ref_a, cluster.space("client"), max_batch=8
        )
        buffered = proxy.n(1)
        proxy.bind(ref_b, cluster.space("client"))
        assert buffered.done  # shipped to the OLD target before rebinding
        assert buffered.result() == intake_free_n(1, 1)

    def test_attaching_an_engine_ships_the_buffered_tail_first(self, app, cluster):
        """attach() must not strand calls buffered before the switch."""
        intake = sample_app.Y(5)
        reference = cluster.space("server").export(intake, interface_name="Y_O_Int")
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            reference, cluster.space("client"), max_batch=8
        )
        buffered = proxy.n(2)
        with Session(cluster, node="client") as session:
            scheduler = session._scheduler_for(
                ServicePolicy(transport="rmi", batch_window=2, pipeline_depth=2)
            )
            proxy.attach(scheduler)
            assert buffered.done  # shipped before the engine took over
            assert buffered.result() == intake_free_n(5, 2)
            streamed = proxy.n(3)
            scheduler.drain()
            assert streamed.result() == intake_free_n(5, 3)

    def test_reconfiguring_ships_the_buffered_tail_first(self, app, cluster):
        """configure_batching() must not strand futures either."""
        intake = sample_app.Y(2)
        reference = cluster.space("server").export(intake, interface_name="Y_O_Int")
        proxy = app.artifacts("Y").batch_proxy_for("rmi")(
            reference, cluster.space("client"), max_batch=8
        )
        buffered = proxy.n(3)
        proxy.configure_batching(max_batch=64)
        assert buffered.done and buffered.result() == intake_free_n(2, 3)
        assert proxy.pending_batched_calls() == 0


class TestReservedControlNames:
    """Interface methods must not shadow the batching control plane."""

    class Buffer:
        """A buffer-like class whose member names collide with the mixin."""

        def __init__(self):
            self.items = []

        def add(self, value):
            items = self.items
            items.append(value)
            self.items = items
            return len(items)

        def flush(self):
            count = len(self.items)
            self.items = []
            return count

    def _proxy(self, cluster):
        app = ApplicationTransformer(all_local_policy()).transform([self.Buffer])
        impl = self.Buffer()
        reference = cluster.space("server").export(impl, interface_name="Buffer_O_Int")
        proxy = app.artifacts("Buffer").batch_proxy_for("rmi")(
            reference, cluster.space("client"), max_batch=8
        )
        return proxy, impl

    def test_flush_keeps_control_plane_semantics(self, cluster):
        proxy, impl = self._proxy(cluster)
        futures = [proxy.add(i) for i in range(3)]
        assert proxy.pending_batched_calls() == 3
        assert proxy.flush() is None  # the mixin's flush: ships the window
        assert [f.result() for f in futures] == [1, 2, 3]
        assert impl.items == [0, 1, 2]

    def test_colliding_remote_member_reachable_via_enqueue(self, cluster):
        proxy, impl = self._proxy(cluster)
        proxy.add(1)
        proxy.flush()
        future = proxy._enqueue("flush", ())  # the REMOTE flush
        assert future.result() == 1  # Buffer.flush returned its item count
        assert impl.items == []

    def test_emitted_listing_skips_reserved_names(self):
        from repro.core import codegen
        from repro.core.introspect import class_model_from_python

        model = class_model_from_python(self.Buffer)
        sources = codegen.emit_class_artifacts(model, {"Buffer"}, {"Buffer": model}, ("rmi",))
        listing = sources["Buffer_O_BatchProxy_RMI"]
        assert "def add(" in listing
        assert "def flush(" not in listing
        assert "reserved by the batching" in listing


class TestEmittedSource:
    def test_emit_includes_the_batch_proxy_listing(self, app):
        sources = app.emit_sources("Y", transports=("rmi",))
        assert "Y_O_BatchProxy_RMI" in sources
        source = sources["Y_O_BatchProxy_RMI"]
        ast.parse(source)  # valid Python
        assert "BatchingDispatchMixin" in source
        assert "_enqueue" in source
        # The emitted class carries the transport, like the live artifact —
        # otherwise executed listings would ship over the default transport.
        assert "_repro_transport = 'rmi'" in source

    def test_emitted_module_imports_the_mixin(self, app):
        from repro.core import codegen
        from repro.core.introspect import class_model_from_python

        model = class_model_from_python(sample_app.Y)
        module = codegen.emit_module(model, {"X", "Y", "Z"}, {"Y": model}, ("rmi",))
        ast.parse(module)
        assert "from repro.runtime.batching import BatchingDispatchMixin" in module


def intake_free_n(base: int, j: int) -> int:
    """What ``Y(base).n(j)`` returns (mirrors tests/sample_app.py)."""
    return sample_app.Y(base).n(j)
