"""Tests for majority-quorum replication, epoch fencing and reconciliation.

Covers the quorum write path (majority ack or a typed refusal), the epoch
machinery on :class:`~repro.runtime.replication.ReplicaEndpoint` (frames
from superseded epochs bounce with ``FencedError``, ``adopt_epoch`` doubles
as the promotion vote), vote-gated promotion (a blinded monitor is vetoed;
a majority elects a new epoch), stale-primary self-fencing, the epoch floor
on ``!inv`` frames, and the quorum knobs on ``ServicePolicy``.
"""

from __future__ import annotations

import pytest

from repro.api import ServicePolicy
from repro.api.errors import (
    FencedError,
    PolicyError,
    QuorumLostError,
    ReplicationError,
)
from repro.network.heartbeat import HeartbeatDetector
from repro.runtime.cluster import Cluster
from repro.runtime.replication import ReplicaEndpoint, ReplicaManager
from repro.workloads.bulk_orders import OrderIntake
from repro.workloads.replicated_orders import INTAKE_READONLY


@pytest.fixture
def cluster():
    return Cluster(("monitor", "client", "a", "b", "c"))


def _manager(cluster, monitor="monitor") -> ReplicaManager:
    detector = HeartbeatDetector(
        cluster.network, monitor, interval=0.002, miss_threshold=2
    )
    for node in ("a", "b", "c"):
        detector.watch(node)
    manager = ReplicaManager(cluster, detector=detector)
    detector.start()
    return manager


def _quorum_group(manager, primary="a", backups=("b", "c")):
    return manager.replicate(
        OrderIntake(),
        name="orders",
        primary_node=primary,
        backup_nodes=list(backups),
        readonly=INTAKE_READONLY,
        quorum=2,
        fencing=True,
    )


def _pump(cluster, seconds):
    cluster.network.events.run_until(cluster.network.clock.now + seconds)


class TestEndpointFencing:
    def test_frames_from_older_epochs_are_rejected(self):
        endpoint = ReplicaEndpoint(OrderIntake(), fencing=True, epoch=3)
        with pytest.raises(FencedError) as excinfo:
            endpoint.apply_op("submit", ["sku", 1, 10], {}, 2)
        assert excinfo.value.stale_epoch == 2
        assert excinfo.value.current_epoch == 3
        assert endpoint.fenced_rejections == 1
        assert endpoint.ops_applied == 0

    def test_newer_epoch_frames_are_adopted(self):
        endpoint = ReplicaEndpoint(OrderIntake(), fencing=True, epoch=1)
        endpoint.apply_op("submit", ["sku", 1, 10], {}, 4)
        assert endpoint.epoch == 4
        assert endpoint.ops_applied == 1

    def test_unstamped_frames_pass_for_compatibility(self):
        endpoint = ReplicaEndpoint(OrderIntake(), fencing=True, epoch=5)
        endpoint.apply_op("submit", ["sku", 1, 10], {})
        assert endpoint.ops_applied == 1

    def test_non_fencing_endpoint_ignores_epochs(self):
        endpoint = ReplicaEndpoint(OrderIntake())
        endpoint.apply_op("submit", ["sku", 1, 10], {}, 0)
        assert endpoint.ops_applied == 1

    def test_adopt_epoch_votes_once_per_epoch(self):
        endpoint = ReplicaEndpoint(OrderIntake(), fencing=True, epoch=0)
        assert endpoint.adopt_epoch(1) == 1
        # A duplicate (or superseded) promotion attempt is rejected: the
        # replica has already committed to this epoch.
        with pytest.raises(FencedError):
            endpoint.adopt_epoch(1)
        with pytest.raises(FencedError):
            endpoint.adopt_epoch(0)


class TestQuorumWrites:
    def test_majority_ack_commits_the_write(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        wrapper = group.primary_wrapper
        wrapper.submit("sku", 1, 10)
        assert group.acked_writes == 1
        assert group.quorum_failures == 0
        for record in group.backups.values():
            assert record.impl.accepted_count() == 1

    def test_lost_majority_refuses_with_quorum_lost(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        cluster.network.failures.partition(["a"], ["b", "c"])
        with pytest.raises(QuorumLostError):
            group.primary_wrapper.submit("sku", 1, 10)
        assert group.quorum_failures == 1
        # The local apply happened but was never acknowledged: it is
        # recorded divergent on the wrapper for later reconciliation.
        assert len(group.primary_wrapper._divergent_ops) == 1
        assert group.primary_impl.accepted_count() == 1

    def test_single_backup_loss_still_reaches_quorum(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        cluster.network.failures.partition(["a"], ["b"])
        group.primary_wrapper.submit("sku", 1, 10)
        assert group.acked_writes == 1
        # The unreachable backup was demoted, the reachable one acked.
        assert not group.backups["b"].healthy
        assert group.backups["c"].healthy

    def test_replicate_validates_quorum_bounds(self, cluster):
        manager = _manager(cluster)
        for bad in (0, 4):
            with pytest.raises(ReplicationError):
                manager.replicate(
                    OrderIntake(),
                    name=f"bad-{bad}",
                    primary_node="a",
                    backup_nodes=["b", "c"],
                    quorum=bad,
                )

    def test_quorum_requires_eager_sync(self, cluster):
        manager = _manager(cluster)
        with pytest.raises(ReplicationError):
            manager.replicate(
                OrderIntake(),
                name="interval-quorum",
                primary_node="a",
                backup_nodes=["b"],
                sync="interval",
                quorum=2,
            )


class TestVoteGatedPromotion:
    def test_majority_vote_promotes_and_bumps_epoch(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        cluster.network.failures.partition(["monitor"], ["a"])
        _pump(cluster, 0.02)
        assert len(manager.failovers) == 1
        record = manager.failovers[0]
        assert record.votes == 2
        assert record.epoch == 1
        assert group.epoch == 1
        assert group.primary_node in ("b", "c")

    def test_blinded_monitor_promotion_is_vetoed(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        cluster.network.failures.partition(["monitor"], ["a", "b", "c"])
        _pump(cluster, 0.02)
        assert manager.failovers == []
        assert group.promotions_vetoed >= 1
        assert group.epoch == 0
        # The data plane was never poisoned by the blinded monitor: writes
        # keep gathering their quorum.
        group.primary_wrapper.submit("sku", 1, 10)
        assert group.acked_writes == 1

    def test_direct_failover_call_is_also_vetoed(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        cluster.network.failures.partition(["monitor"], ["a", "b", "c"])
        _pump(cluster, 0.02)
        with pytest.raises(QuorumLostError):
            manager.failover(group)

    def test_isolated_primary_demotions_do_not_block_promotion(self, cluster):
        # The primary loses its backups first (demoting their records),
        # then the monitor declares it: promotion must still find the
        # backups promotable — their health flags reflect the dead
        # primary's view, and the vote round is what tests reachability.
        manager = _manager(cluster)
        group = _quorum_group(manager)
        cluster.network.failures.partition(["a"], ["monitor", "b", "c"])
        with pytest.raises(QuorumLostError):
            group.primary_wrapper.submit("sku", 1, 10)
        assert group.healthy_backups() == []
        _pump(cluster, 0.02)
        assert len(manager.failovers) == 1
        assert group.epoch == 1


class TestStalePrimaryFencing:
    def _promote_away_from_a(self, cluster, manager, group):
        cluster.network.failures.partition(["monitor"], ["a"])
        _pump(cluster, 0.02)
        assert group.epoch == 1
        return manager.failovers[0]

    def test_superseded_wrapper_fences_itself(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        old_wrapper = group.primary_wrapper
        self._promote_away_from_a(cluster, manager, group)
        with pytest.raises(FencedError):
            old_wrapper.submit("sku", 1, 10)
        assert group.fenced_calls == 1
        assert group.stale_primaries[0].retired is True

    def test_fenced_reads_are_rejected_too(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        old_wrapper = group.primary_wrapper
        self._promote_away_from_a(cluster, manager, group)
        with pytest.raises(FencedError):
            old_wrapper.accepted_count()

    def test_fenced_ex_primary_frames_bounce_off_voters(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        self._promote_away_from_a(cluster, manager, group)
        # A voter adopted epoch 1; a frame the old primary would send at
        # epoch 0 is rejected on arrival.
        surviving_backup = next(iter(group.backups.values()))
        if surviving_backup.endpoint_ref is not None:
            with pytest.raises((FencedError, Exception)):
                cluster.space("a").invoke_remote(
                    surviving_backup.endpoint_ref,
                    "apply_op",
                    ("submit", ["sku", 1, 10], {}, 0),
                )

    def test_heal_reconciles_divergence_and_reseeds(self, cluster):
        manager = _manager(cluster)
        group = _quorum_group(manager)
        old_wrapper = group.primary_wrapper
        # Isolate the primary completely: a write diverges, the monitor
        # promotes by majority vote.
        cluster.network.failures.partition(["a"], ["monitor", "b", "c"])
        with pytest.raises(QuorumLostError):
            old_wrapper.submit("sku", 1, 10)
        _pump(cluster, 0.02)
        assert group.epoch == 1
        assert len(old_wrapper._divergent_ops) == 1
        # Heal: the recovery declaration reconciles the fenced ex-primary —
        # divergent ops discarded, node re-seeded from the quorum's state.
        cluster.network.failures.heal()
        _pump(cluster, 0.1)
        assert old_wrapper._divergent_ops == []
        assert group.ops_discarded == 1
        assert len(manager.reconciliations) == 1
        assert manager.reconciliations[0].node_id == "a"
        assert group.stale_primaries == []
        record = group.backups["a"]
        assert record.healthy
        # Re-seeded from the current primary: the divergent write is gone.
        assert record.impl.accepted_count() == 0


class TestInvalidationEpochFloor:
    def test_stale_epoch_invalidations_are_rejected(self, cluster):
        space_a, space_b = cluster.space("a"), cluster.space("b")
        ref = space_a.export(OrderIntake())
        space_a.send_cache_invalidations([ref.object_id], ["b"], epoch=2)
        assert space_b.stale_invalidations_rejected == 0
        space_a.send_cache_invalidations([ref.object_id], ["b"], epoch=1)
        assert space_b.stale_invalidations_rejected == 1

    def test_equal_and_newer_epochs_advance_the_floor(self, cluster):
        space_a, space_b = cluster.space("a"), cluster.space("b")
        ref = space_a.export(OrderIntake())
        space_a.send_cache_invalidations([ref.object_id], ["b"], epoch=1)
        space_a.send_cache_invalidations([ref.object_id], ["b"], epoch=1)
        space_a.send_cache_invalidations([ref.object_id], ["b"], epoch=3)
        assert space_b.stale_invalidations_rejected == 0

    def test_unstamped_invalidations_always_apply(self, cluster):
        space_a, space_b = cluster.space("a"), cluster.space("b")
        ref = space_a.export(OrderIntake())
        space_a.send_cache_invalidations([ref.object_id], ["b"], epoch=4)
        space_a.send_cache_invalidations([ref.object_id], ["b"])
        assert space_b.stale_invalidations_rejected == 0
        assert space_b.invalidations_received >= 2


class TestPolicyQuorumKnobs:
    def test_majority_quorum_is_computed_from_replicas(self):
        policy = ServicePolicy().with_replication(3, quorum="majority", fencing=True)
        assert policy.replication_factor == 3
        assert policy.quorum == 2
        assert policy.fencing is True
        assert policy.quorum_replicated

    def test_explicit_integer_quorum(self):
        policy = ServicePolicy().with_replication(5, quorum=3)
        assert policy.quorum == 3
        assert policy.fencing is True  # defaults on when a quorum is asked for

    def test_quorum_above_factor_rejected(self):
        with pytest.raises(PolicyError):
            ServicePolicy().with_replication(2, quorum=3)

    def test_fencing_needs_at_least_two_replicas(self):
        with pytest.raises(PolicyError):
            ServicePolicy().with_replication(1, quorum=1, fencing=True)

    def test_quorum_requires_eager_sync(self):
        with pytest.raises(PolicyError):
            ServicePolicy().with_replication(3, quorum=2, sync="interval")

    def test_legacy_single_int_call_warns_and_keeps_old_semantics(self):
        with pytest.warns(DeprecationWarning):
            policy = ServicePolicy().with_replication(2)
        assert policy.replication_factor == 2
        assert policy.quorum == 1
        assert policy.fencing is False

    def test_legacy_factor_keyword_warns(self):
        with pytest.warns(DeprecationWarning):
            policy = ServicePolicy().with_replication(factor=2)
        assert policy.replication_factor == 2

    def test_explicit_quorum_call_is_warning_free(self, recwarn):
        ServicePolicy().with_replication(3, quorum="majority", fencing=True)
        assert not [
            warning
            for warning in recwarn.list
            if issubclass(warning.category, DeprecationWarning)
        ]


class TestErrorFacadeShim:
    def test_old_import_path_warns_but_works(self):
        import importlib
        import repro.errors as legacy

        importlib.reload(legacy)
        with pytest.warns(DeprecationWarning):
            fenced = legacy.FencedError
        from repro.api.errors import FencedError as public
        assert fenced is public
