"""Experiment E3: reproduce Figure 4 — static-member transformation of X.

Figure 4 lists the artifacts generated for the static members of the sample
class X: the interface ``X_C_Int`` (accessor pair for the static field ``z``
plus the former static method ``p``), the singleton ``X_C_Local`` whose ``p``
is now an instance method using ``get_z()``, and per-transport proxies.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster


@pytest.fixture(scope="module")
def app():
    return ApplicationTransformer(all_local_policy()).transform(
        [sample_app.X, sample_app.Y, sample_app.Z]
    )


@pytest.fixture(scope="module")
def sources(app):
    return app.emit_sources("X", transports=("soap", "rmi"))


class TestFigure4Interface:
    def test_class_interface_members_match_figure(self, app):
        """X_C_Int declares exactly get_z, set_z and p."""
        interface = app.artifacts("X").class_interface
        assert interface.method_names() == ["get_z", "set_z", "p"]

    def test_static_field_type_is_adapted(self, app):
        interface = app.artifacts("X").class_interface
        assert interface.get("get_z").return_type.name == "Z_O_Int"

    def test_emitted_interface_matches_listing(self, sources):
        source = sources["X_C_Int"]
        for expected in ("def get_z(self)", "def set_z(self, z)", "def p(self, i)"):
            assert expected in source


class TestFigure4Singleton:
    def test_emitted_singleton_matches_listing(self, sources):
        source = sources["X_C_Local"]
        assert "class X_C_Local(X_C_Int):" in source
        # Former static method p uses the receiver's accessor, as in the figure.
        assert "return self.get_z().q(i)" in source
        # Singleton declarations.
        assert "def get_me(cls):" in source

    def test_statics_are_made_non_static(self, app):
        singleton = app.statics("X")
        # p is now an ordinary bound method on the singleton instance.
        assert singleton.p(3) == 126  # Z(42).q(3)

    def test_uniqueness_semantics_via_singleton(self, app):
        assert app.statics("X") is app.statics("X")

    def test_static_state_is_shared_through_the_singleton(self, app):
        singleton = app.statics("X")
        replacement = app.new_local("Z", 2)
        original = singleton.get_z()
        try:
            singleton.set_z(replacement)
            assert app.statics("X").p(10) == 20
        finally:
            singleton.set_z(original)


class TestFigure4Proxies:
    def test_class_proxies_are_emitted_per_transport(self, sources):
        assert "class X_C_Proxy_SOAP(X_C_Int):" in sources["X_C_Proxy_SOAP"]
        assert "class X_C_Proxy_RMI(X_C_Int):" in sources["X_C_Proxy_RMI"]

    def test_remote_statics_behave_like_local_statics(self):
        """The static singleton can itself live on a remote node."""
        local_app = ApplicationTransformer(all_local_policy()).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        expected = local_app.statics("X").p(4)

        remote_app = ApplicationTransformer(
            place_classes_on({"X": "server"})
        ).transform([sample_app.X, sample_app.Y, sample_app.Z])
        cluster = Cluster(("client", "server"))
        remote_app.deploy(cluster, default_node="client")
        statics = remote_app.statics("X")
        assert type(statics).__name__ == "X_C_Proxy_RMI"
        assert statics.p(4) == expected
        assert cluster.metrics.total_messages > 0
