"""Distribution-specific edge cases: container arguments and network failure.

The paper concedes (§4) that spanning address spaces makes it impossible to
guarantee full preservation of the original semantics because of network
failure.  These tests pin down what the reproduction does in exactly those
situations: containers of references marshal correctly, partitions surface as
network errors rather than silent corruption, healing restores operation, and
the failure never leaks half-applied state into the remote object.
"""

from __future__ import annotations

import pytest

from repro.core.transformer import ApplicationTransformer
from repro.errors import NetworkError, PartitionError
from repro.network.failures import FailureModel
from repro.network.simnet import SimulatedNetwork
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster


class Sensor:
    """Produces readings; lives near the hardware."""

    def __init__(self, name, scale):
        self.name = name
        self.scale = scale

    def read(self, raw):
        return raw * self.scale


class Aggregator:
    """Aggregates over a *collection* of sensors passed by reference."""

    def __init__(self):
        self.sensors = []
        self.samples = 0

    def attach_all(self, sensors):
        current = self.sensors
        for sensor in sensors:
            current.append(sensor)
        self.sensors = current
        return len(current)

    def collect(self, raw):
        self.samples = self.samples + 1
        return sum(sensor.read(raw) for sensor in self.sensors)

    def sensor_count(self):
        return len(self.sensors)


CLASSES = [Sensor, Aggregator]


def _deployed(drop_probability=0.0):
    app = ApplicationTransformer(place_classes_on({"Aggregator": "hub"})).transform(CLASSES)
    network = SimulatedNetwork(failures=FailureModel(drop_probability=drop_probability, seed=3))
    cluster = Cluster(("edge", "hub"), network=network)
    app.deploy(cluster, default_node="edge")
    return app, cluster


class TestContainerArgumentsAcrossSpaces:
    def test_list_of_transformed_objects_passes_by_reference(self):
        app, cluster = _deployed()
        sensors = [app.new("Sensor", f"s{i}", i + 1) for i in range(3)]
        aggregator = app.new("Aggregator")
        assert type(aggregator).__name__ == "Aggregator_O_Proxy_RMI"
        assert aggregator.attach_all(sensors) == 3
        # collect() on the hub calls back into the edge-resident sensors.
        assert aggregator.collect(10) == 10 * (1 + 2 + 3)
        assert cluster.metrics.messages_between("hub", "edge") > 0

    def test_results_match_the_all_local_run(self):
        local_app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        local_sensors = [local_app.new("Sensor", f"s{i}", i + 1) for i in range(3)]
        local_aggregator = local_app.new("Aggregator")
        local_aggregator.attach_all(local_sensors)
        expected = local_aggregator.collect(7)

        app, _ = _deployed()
        sensors = [app.new("Sensor", f"s{i}", i + 1) for i in range(3)]
        aggregator = app.new("Aggregator")
        aggregator.attach_all(sensors)
        assert aggregator.collect(7) == expected

    def test_nested_containers_with_references(self):
        app, _ = _deployed()
        sensors = [app.new("Sensor", "a", 2), app.new("Sensor", "b", 3)]
        aggregator = app.new("Aggregator")
        # A tuple inside a list inside the argument list still marshals.
        aggregator.attach_all([sensors[0]])
        aggregator.attach_all((sensors[1],))
        assert aggregator.sensor_count() == 2


class TestPartitionSemantics:
    def test_partition_makes_remote_calls_fail_loudly(self):
        app, cluster = _deployed()
        aggregator = app.new("Aggregator")
        cluster.network.failures.partition(["edge"], ["hub"])
        with pytest.raises(PartitionError):
            aggregator.collect(1)

    def test_healing_restores_operation_and_state(self):
        app, cluster = _deployed()
        sensors = [app.new("Sensor", "s", 5)]
        aggregator = app.new("Aggregator")
        aggregator.attach_all(sensors)
        aggregator.collect(1)

        cluster.network.failures.partition(["edge"], ["hub"])
        with pytest.raises(NetworkError):
            aggregator.collect(2)
        cluster.network.failures.heal()

        # The failed call never reached the hub, so the sample count reflects
        # only the successful invocations.
        assert aggregator.collect(3) == 15
        assert aggregator.get_samples() == 2

    def test_local_deployment_is_immune_to_partitions(self):
        app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        network = SimulatedNetwork(failures=FailureModel())
        cluster = Cluster(("edge", "hub"), network=network)
        app.deploy(cluster, default_node="edge")
        aggregator = app.new("Aggregator")
        aggregator.attach_all([app.new("Sensor", "s", 2)])
        cluster.network.failures.partition(["edge"], ["hub"])
        # Everything is in one address space: the partition is irrelevant.
        assert aggregator.collect(4) == 8

    def test_dropped_request_does_not_mutate_remote_state(self):
        app, cluster = _deployed()
        aggregator = app.new("Aggregator")
        cluster.network.failures.drop_probability = 1.0
        with pytest.raises(NetworkError):
            aggregator.collect(1)
        cluster.network.failures.drop_probability = 0.0
        assert aggregator.get_samples() == 0
