"""Conformance and fault-injection suite for the interceptor chain.

Pins the bracket guarantees of :mod:`repro.api.middleware` across every
dispatch shape the façade composes — 3 pipes (direct, batched, pipelined)
x 4 transports — and the fault paths the chain must survive:

* ``begin``/``end`` exactly once per call; ``abort`` (not ``end``) on every
  error path — application errors, typed admission rejections, crashed
  nodes, retry exhaustion, deadline expiry;
* chain order: ``begin`` in registration order, ``end``/``abort`` in
  reverse; a rejecting ``begin`` short-circuits later ``begin``\\ s and
  aborts the already-begun in reverse;
* a raising ``end``/``abort`` hook is isolated (counted, not propagated),
  so one misbehaving interceptor cannot corrupt its batch's other calls;
* failover retries carry the *remaining* deadline (the absolute instant
  stamped at first ship, not a fresh budget), and rate-limit buckets never
  double-charge a retried call;
* a hypothesis property: for arbitrary interleavings of flaky interceptors
  and settlements, ``sum(begin) == sum(end) + sum(abort)`` per interceptor
  and the per-call event nesting stays well formed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import (
    CallContext,
    DeadlineInterceptor,
    Interceptor,
    InterceptorChain,
    MetricsInterceptor,
    RateLimitInterceptor,
    ServicePolicy,
    Session,
)
from repro.errors import (
    DeadlineExceededError,
    PolicyError,
    RateLimitError,
    RemoteInvocationError,
)
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import RetryPolicy
from repro.workloads.bulk_orders import OrderIntake

TRANSPORTS = ["inproc", "rmi", "corba", "soap"]

#: The three pipe shapes, as policy factories (transport filled in per test).
PIPES = {
    "direct": lambda t: ServicePolicy(transport=t),
    "batch": lambda t: ServicePolicy(transport=t, batch_window=4),
    "stream": lambda t: ServicePolicy(transport=t, batch_window=4, pipeline_depth=2),
}


class Recorder(Interceptor):
    """Records every bracket event into a log shared across interceptors."""

    def __init__(self, name: str, log: list):
        self.name = name
        self.log = log

    def begin(self, ctx):
        self.log.append(("begin", self.name, ctx.call_id))

    def end(self, ctx, result):
        self.log.append(("end", self.name, ctx.call_id))

    def abort(self, ctx, error):
        self.log.append(("abort", self.name, ctx.call_id, type(error).__name__))


def _events_by_call(log):
    """The log sliced per call id, preserving order within each call."""
    calls = {}
    for event in log:
        calls.setdefault(event[2], []).append(event)
    return calls


@pytest.fixture
def cluster():
    return Cluster(("client", "server", "spare"))


# ---------------------------------------------------------------------------
# chain unit conformance (no cluster)
# ---------------------------------------------------------------------------


class TestChainUnit:
    def test_non_interceptor_rejected_at_construction(self):
        with pytest.raises(PolicyError):
            InterceptorChain([object()])

    def test_begin_in_order_settle_in_reverse(self):
        log = []
        chain = InterceptorChain([Recorder("a", log), Recorder("b", log), Recorder("c", log)])
        ctx = CallContext(member="m")
        chain.open(ctx).close("ok")
        assert [e[:2] for e in log] == [
            ("begin", "a"), ("begin", "b"), ("begin", "c"),
            ("end", "c"), ("end", "b"), ("end", "a"),
        ]

    def test_rejecting_begin_short_circuits_and_aborts_in_reverse(self):
        log = []

        class Reject(Recorder):
            def begin(self, ctx):
                super().begin(ctx)
                raise RateLimitError("no")

        chain = InterceptorChain([Recorder("a", log), Reject("b", log), Recorder("c", log)])
        with pytest.raises(RateLimitError):
            chain.open(CallContext(member="m"))
        # c never saw begin; a (the only entered one) aborted.
        assert [e[:2] for e in log] == [
            ("begin", "a"), ("begin", "b"), ("abort", "a"),
        ]

    def test_bracket_settles_exactly_once(self):
        log = []
        chain = InterceptorChain([Recorder("a", log)])
        bracket = chain.open(CallContext(member="m"))
        bracket.close(1)
        bracket.fail(RuntimeError("late"))
        bracket.close(2)
        assert [e[0] for e in log] == ["begin", "end"]
        assert bracket.settled

    def test_raising_hooks_are_isolated_and_counted(self):
        log = []

        class Broken(Recorder):
            def end(self, ctx, result):
                super().end(ctx, result)
                raise RuntimeError("end boom")

            def abort(self, ctx, error):
                super().abort(ctx, error)
                raise RuntimeError("abort boom")

        chain = InterceptorChain([Recorder("a", log), Broken("b", log)])
        chain.open(CallContext(member="m")).close("ok")
        chain.open(CallContext(member="m")).fail(RuntimeError("call failed"))
        # The outer interceptor still saw every settlement despite b raising.
        assert [e[:2] for e in log] == [
            ("begin", "a"), ("begin", "b"), ("end", "b"), ("end", "a"),
            ("begin", "a"), ("begin", "b"), ("abort", "b"), ("abort", "a"),
        ]
        assert chain.callback_failures == 2


# ---------------------------------------------------------------------------
# conformance across 3 pipes x 4 transports
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("pipe", sorted(PIPES))
class TestPipeConformance:
    def test_begin_and_end_exactly_once_per_call(self, cluster, pipe, transport):
        log = []
        policy = PIPES[pipe](transport).with_middleware(
            Recorder("outer", log), Recorder("inner", log)
        )
        with Session(cluster, node="client") as session:
            svc = session.service(
                f"orders-{pipe}-{transport}", policy, impl=OrderIntake(), node="server"
            )
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(8)]
            svc.flush()
            session.drain()
        assert all(f.ok for f in futures)
        calls = _events_by_call(log)
        assert len(calls) == 8
        for events in calls.values():
            assert [e[:2] for e in events] == [
                ("begin", "outer"), ("begin", "inner"),
                ("end", "inner"), ("end", "outer"),
            ]

    def test_application_error_aborts_not_ends(self, cluster, pipe, transport):
        log = []
        policy = PIPES[pipe](transport).with_middleware(Recorder("rec", log))
        with Session(cluster, node="client") as session:
            svc = session.service(
                f"orders-{pipe}-{transport}", policy, impl=OrderIntake(), node="server"
            )
            good = svc.future.submit("sku-ok", 1, 10)
            bad = svc.future.submit("sku-bad", 0, 10)  # quantity 0 raises remotely
            svc.flush()
            session.drain()
        assert good.ok
        assert not bad.ok
        assert isinstance(bad.exception(), RemoteInvocationError)
        calls = _events_by_call(log)
        kinds = sorted(tuple(e[0] for e in events) for events in calls.values())
        assert kinds == [("begin", "abort"), ("begin", "end")]

    def test_rejected_call_never_ships_and_batchmates_survive(
        self, cluster, pipe, transport
    ):
        """A begin rejection fails only its own call: the other calls of the
        same window still ship and complete."""
        log = []
        limiter = RateLimitInterceptor(rate=0.001, burst=3.0, retryable=False)
        policy = PIPES[pipe](transport).with_middleware(limiter, Recorder("rec", log))
        with Session(cluster, node="client") as session:
            svc = session.service(
                f"orders-{pipe}-{transport}", policy, impl=OrderIntake(), node="server"
            )
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(4)]
            svc.flush()
            session.drain()
        # Burst 3: the fourth call is rejected client-side, the rest complete.
        assert [f.ok for f in futures] == [True, True, True, False]
        assert isinstance(futures[3].exception(), RateLimitError)
        assert limiter.rejected == {"default": 1}
        # The rejected call opened no bracket on the recorder (begin was
        # short-circuited), so only the three shipped calls appear.
        assert len(_events_by_call(log)) == 3


# ---------------------------------------------------------------------------
# server-side chain
# ---------------------------------------------------------------------------


class TestServerChain:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_server_chain_brackets_each_call_of_a_batch(self, cluster, transport):
        log = []
        policy = ServicePolicy(transport=transport, batch_window=4).with_middleware(
            MetricsInterceptor(), server=[Recorder("srv", log)]
        )
        with Session(cluster, node="client") as session:
            svc = session.service(
                f"orders-{transport}", policy, impl=OrderIntake(), node="server"
            )
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(4)]
            svc.flush()
            session.drain()
        assert all(f.ok for f in futures)
        # One framed batch message, but four individual server-side brackets.
        calls = _events_by_call(log)
        assert len(calls) == 4
        for events in calls.values():
            assert [e[0] for e in events] == ["begin", "end"]

    def test_server_rejection_travels_back_typed(self, cluster):
        policy = ServicePolicy(transport="soap").with_middleware(
            MetricsInterceptor(),
            server=[RateLimitInterceptor(rate=0.001, burst=1.0, retryable=False)],
        ).with_tenant("acme")
        intake = OrderIntake()
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=intake, node="server")
            assert svc.submit("sku-0", 1, 10) == 0
            with pytest.raises(RateLimitError):
                svc.submit("sku-1", 1, 10)
        # The rejected call never reached the implementation.
        assert intake.accepted_count() == 1

    def test_server_chain_requires_a_deploy(self, cluster):
        """Attaching to an existing name cannot reconfigure the hosting
        node's dispatch path: server middleware is deploy-only."""
        with Session(cluster, node="client") as deployer:
            deployer.service("orders", impl=OrderIntake(), node="server")
            with Session(cluster, node="client") as attacher:
                with pytest.raises(PolicyError):
                    attacher.service(
                        "orders",
                        ServicePolicy().with_middleware(server=[MetricsInterceptor()]),
                    )


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_rejected_server_side_before_execution(self, cluster):
        """A deadline shorter than the one-way latency expires in flight: the
        serving chain aborts it before the target method runs and the typed
        error surfaces at the client, whose own bracket aborts."""
        log = []
        intake = OrderIntake()
        policy = ServicePolicy(transport="rmi").with_middleware(
            DeadlineInterceptor(1e-6),  # far below the 0.5 ms link latency
            Recorder("rec", log),
            server=[DeadlineInterceptor(60.0)],
        )
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=intake, node="server")
            future = svc.future.submit("sku-0", 1, 10)
            session.drain()
        assert not future.ok
        assert isinstance(future.exception(), DeadlineExceededError)
        assert intake.accepted_count() == 0
        (events,) = _events_by_call(log).values()
        assert [e[0] for e in events] == ["begin", "abort"]

    def test_expired_deadline_aborts_client_side_without_shipping(self, cluster):
        """A context already past its deadline fails at the chain: nothing
        ships.  Forced by stacking two deadline interceptors — the first
        stamps a sub-latency budget, and enough simulated time is burnt
        between calls that the second sees it expired."""
        deadline = DeadlineInterceptor(60.0)
        policy = ServicePolicy(transport="rmi").with_middleware(deadline)
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            assert svc.submit("sku-0", 1, 10) == 0
            sent_before = cluster.network.metrics.total_messages

            # Hand-build an already-expired context through the service's
            # chain to pin the client-side enforcement deterministically.
            chain_ctx = CallContext(
                member="submit",
                deadline=cluster.clock.now - 1.0,
                side="client",
                clock=cluster.clock,
            )
            with pytest.raises(DeadlineExceededError):
                svc._pipe.chain.open(chain_ctx)
            assert deadline.expired_calls == 1
            assert cluster.network.metrics.total_messages == sent_before


# ---------------------------------------------------------------------------
# fault injection: failover and retries
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_failover_retry_carries_the_remaining_deadline(self, cluster):
        """Kill the primary with deadlines pending: the re-ship against the
        promoted replica must carry the *original* absolute deadline, not a
        fresh budget stamped at retry time."""
        client_log: list = []
        server_log: list = []
        stamped: dict = {}

        class StampRecorder(Recorder):
            """Runs after DeadlineInterceptor: sees the stamped deadline."""

            def begin(self, ctx):
                super().begin(ctx)
                stamped[ctx.call_id] = ctx.deadline

        class ServerRecorder(Interceptor):
            def begin(self, ctx):
                server_log.append((ctx.call_id, ctx.deadline, ctx.now()))

        policy = (
            ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2)
            .with_replication(2, readonly=("accepted_count",))
            .with_middleware(
                DeadlineInterceptor(5.0),
                StampRecorder("stamp", client_log),
                server=[ServerRecorder()],
            )
        )
        with Session(cluster, node="client") as session:
            svc = session.service(
                "orders", policy, impl=OrderIntake(), node="server",
                backup_nodes=["spare"],
            )
            futures = []
            for i in range(16):
                if i == 8:
                    cluster.network.failures.crash_node("server")
                futures.append(svc.future.submit(f"sku-{i}", 1, 10))
            session.drain()
            assert all(f.ok for f in futures)
            assert len(session.replica_manager.failovers) == 1
            assert svc.reference.node_id == "spare"
        # Every server-side observation carries exactly the client-stamped
        # absolute deadline, and executed within its remaining budget.
        assert stamped and server_log
        for call_id, observed_deadline, served_at in server_log:
            assert observed_deadline == stamped[call_id]
            assert served_at < observed_deadline

    def test_retried_call_is_not_double_charged(self, cluster):
        """Drop the response of an admitted call: the client retries, the
        server dispatches the same logical call twice, but the rate-limit
        bucket charges it once (the retry rides the charged-call memory)."""
        limiter = RateLimitInterceptor(rate=0.001, burst=1.0, retryable=False)
        policy = (
            ServicePolicy(transport="rmi")
            .with_retry(max_attempts=3)
            .with_middleware(MetricsInterceptor(), server=[limiter])
            .with_tenant("acme")
        )
        intake = OrderIntake()
        failures = cluster.network.failures
        drops = {"remaining": 1}

        def drop_first_response(source, destination):
            if source == "server" and destination == "client" and drops["remaining"]:
                drops["remaining"] -= 1
                return True
            return False

        failures.should_drop = drop_first_response
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=intake, node="server")
            future = svc.future.submit("sku-0", 1, 10)
            session.drain()
        assert future.ok
        assert future.attempts == 2  # the drop forced exactly one retry
        assert intake.accepted_count() == 2  # at-least-once: both dispatches ran
        # ... but the bucket charged the logical call once: burst is 1, so a
        # double-charge would have rejected (and failed) the retry.
        assert limiter.admitted == {"acme": 1}
        assert limiter.rejected == {}

    def test_retry_exhaustion_aborts_exactly_once(self, cluster):
        log = []
        policy = (
            ServicePolicy(transport="rmi")
            .with_retry(RetryPolicy(max_attempts=2, initial_backoff=0.001))
            .with_middleware(Recorder("rec", log))
        )
        failures = cluster.network.failures
        failures.should_drop = lambda source, destination: destination == "server"
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            future = svc.future.submit("sku-0", 1, 10)
            session.drain()
        assert not future.ok
        (events,) = _events_by_call(log).values()
        assert [e[0] for e in events] == ["begin", "abort"]

    def test_throttled_rejection_is_retryable_and_heals(self, cluster):
        """A retryable server-side throttle (ThrottledError) backs off and
        succeeds on a later attempt once the bucket refills."""
        limiter = RateLimitInterceptor(rate=100.0, burst=1.0, retryable=True)
        policy = (
            ServicePolicy(transport="rmi")
            .with_retry(RetryPolicy(max_attempts=4, initial_backoff=0.02))
            .with_middleware(MetricsInterceptor(), server=[limiter])
            .with_tenant("acme")
        )
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            first = svc.future.submit("sku-0", 1, 10)
            second = svc.future.submit("sku-1", 1, 10)
            session.drain()
        assert first.ok
        # The second call drained the bucket's single token's worth of
        # budget on arrival, was throttled, backed off (simulated time
        # advances through the retry backoff, refilling at 100/s) and
        # eventually succeeded — a *fresh* admission, charged separately.
        assert second.ok
        assert second.attempts > 1
        assert limiter.admitted == {"acme": 2}
        assert limiter.rejected["acme"] >= 1


# ---------------------------------------------------------------------------
# metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_session_metrics_namespace_client_and_server_counters(self, cluster):
        client_metrics = MetricsInterceptor()
        server_metrics = MetricsInterceptor()
        policy = ServicePolicy(transport="rmi", batch_window=4).with_middleware(
            client_metrics, server=[server_metrics]
        )
        with Session(cluster, node="client") as session:
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(6)]
            svc.flush()
            session.drain()
            assert all(f.ok for f in futures)
            merged = session.metrics()
        # The two sides are reported under separate namespaces — summing
        # them into one row would double-count every remote call.
        assert merged["client"]["members"]["submit"]["calls"] == 6
        assert merged["server"]["members"]["submit"]["calls"] == 6
        assert merged["client"]["members"]["submit"]["errors"] == 0
        assert client_metrics.snapshot()["submit"]["calls"] == 6
        assert server_metrics.snapshot()["submit"]["calls"] == 6
        # Client-side latency includes the round trip; server-side is local.
        assert client_metrics.snapshot()["submit"]["total_latency"] > 0.0
        assert merged["client"]["latency"]["count"] == 6
        assert merged["server"]["latency"]["count"] == 6
        assert merged["client"]["latency"]["mean"] >= merged["server"]["latency"]["mean"]

    def test_session_metrics_merge_histograms_across_interceptors(self, cluster):
        first = MetricsInterceptor()
        second = MetricsInterceptor()
        policy_a = ServicePolicy(transport="rmi", batch_window=2).with_middleware(first)
        policy_b = ServicePolicy(transport="rmi", batch_window=2).with_middleware(second)
        with Session(cluster, node="client") as session:
            a = session.service("orders-a", policy_a, impl=OrderIntake(), node="server")
            b = session.service("orders-b", policy_b, impl=OrderIntake(), node="server")
            futures = [a.future.submit(f"a-{i}", 1, 10) for i in range(4)]
            futures += [b.future.submit(f"b-{i}", 1, 10) for i in range(3)]
            a.flush()
            b.flush()
            session.drain()
            assert all(f.ok for f in futures)
            merged = session.metrics()
        # One merged client histogram covering both services' interceptors.
        assert merged["client"]["latency"]["count"] == 7
        assert merged["client"]["latency"]["max"] >= merged["client"]["latency"]["min"] > 0.0


# ---------------------------------------------------------------------------
# adaptivity regression: every scheduler feeds the manager
# ---------------------------------------------------------------------------


class TestAdaptivityConnectsEveryScheduler:
    def test_two_policy_shapes_both_feed_measured_depth(self, cluster):
        """Two pipelined policy shapes create two shared schedulers; the
        adaptive manager must aggregate both (it used to silently keep only
        the most recently created one)."""
        import sample_app
        from repro.core.transformer import ApplicationTransformer
        from repro.policy.policy import all_local_policy

        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        app.deploy(cluster, default_node="client")
        with Session(cluster, node="client") as session:
            manager = session.enable_adaptivity(app)
            shapes = [
                ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2),
                ServicePolicy(transport="rmi", batch_window=8, pipeline_depth=4),
            ]
            services = [
                session.service(f"svc-{i}", shape, impl=OrderIntake(), node="server")
                for i, shape in enumerate(shapes)
            ]
            schedulers = {id(svc.scheduler) for svc in services}
            assert len(schedulers) == 2  # distinct shapes, distinct schedulers
            futures = []
            for i in range(32):
                futures.append(services[i % 2].future.submit(f"sku-{i}", 1, 10))
            session.drain()
            assert all(f.ok for f in futures)
            for svc in services:
                assert svc.scheduler.depth_samples > 0
            observed = manager.effective_pipeline_depth()
            expected = sum(
                s.scheduler.observed_pipeline_depth * s.scheduler.depth_samples
                for s in services
            ) / sum(s.scheduler.depth_samples for s in services)
            assert observed == pytest.approx(expected)
            # Disconnecting clears every source, falling back to configured.
            manager.connect_pipeline(None)
            assert manager.effective_pipeline_depth() == float(
                manager.pipeline_depth
            )


# ---------------------------------------------------------------------------
# property: bracket accounting under arbitrary interleavings
# ---------------------------------------------------------------------------


class Flaky(Interceptor):
    """An interceptor whose hooks optionally raise, with full accounting."""

    def __init__(self, name, fail_begin, fail_end, fail_abort, log):
        self.name = name
        self.fail_begin = fail_begin
        self.fail_end = fail_end
        self.fail_abort = fail_abort
        self.log = log
        self.begins = self.begin_failures = self.ends = self.aborts = 0

    def begin(self, ctx):
        self.log.append(("begin", self.name))
        if self.fail_begin:
            self.begin_failures += 1
            raise RuntimeError(f"{self.name}: begin boom")
        self.begins += 1

    def end(self, ctx, result):
        self.log.append(("end", self.name))
        self.ends += 1
        if self.fail_end:
            raise RuntimeError(f"{self.name}: end boom")

    def abort(self, ctx, error):
        self.log.append(("abort", self.name))
        self.aborts += 1
        if self.fail_abort:
            raise RuntimeError(f"{self.name}: abort boom")


class TestBracketAccountingProperty:
    @given(
        specs=st.lists(
            st.tuples(st.booleans(), st.booleans(), st.booleans()),
            min_size=1,
            max_size=5,
        ),
        outcomes=st.lists(
            st.sampled_from(["close", "fail", "close-fail", "fail-close"]),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_begun_call_settles_exactly_once(self, specs, outcomes):
        log: list = []
        interceptors = [
            Flaky(f"i{n}", fb, fe, fa, log) for n, (fb, fe, fa) in enumerate(specs)
        ]
        chain = InterceptorChain(interceptors)
        boundaries = [0]
        for outcome in outcomes:
            try:
                bracket = chain.open(CallContext(member="m"))
            except RuntimeError:
                boundaries.append(len(log))
                continue
            if outcome in ("close", "close-fail"):
                bracket.close("ok")
            if outcome in ("fail", "close-fail", "fail-close"):
                bracket.fail(RuntimeError("call failed"))
            if outcome == "fail-close":
                bracket.close("ok")
            boundaries.append(len(log))

        # Accounting: every successful begin is settled exactly once,
        # whatever combination of hooks raised around it.
        order = [i.name for i in interceptors]
        for interceptor in interceptors:
            assert interceptor.begins == interceptor.ends + interceptor.aborts

        # Nesting: per call, begins are a prefix of registration order and
        # the settlement runs over exactly the entered set, in reverse.
        for start, stop in zip(boundaries, boundaries[1:]):
            events = log[start:stop]
            begun = [name for kind, name in events if kind == "begin"]
            assert begun == order[: len(begun)]
            settled = [name for kind, name in events if kind != "begin"]
            # A failed begin is always the last begin logged for its call.
            last_failed = begun and interceptors[len(begun) - 1].fail_begin
            entered = begun[:-1] if last_failed else begun
            assert settled == list(reversed(entered))
