"""Tests for the batched & pipelined invocation subsystem.

One framed network message carries N requests; responses preserve order;
application errors inside a successful batch stay isolated per call, while a
transport-level failure (drop, partition, crash) fails the whole batch
atomically.  The BatchingProxy layers auto-flush buffering on top.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    InvocationError,
    MessageDroppedError,
    NodeUnreachableError,
    PartitionError,
    RemoteInvocationError,
    TransportError,
)
from repro.network.failures import FailureModel
from repro.runtime.batching import BatchingProxy, BatchResult
from repro.runtime.cluster import Cluster
from repro.workloads.bulk_orders import OrderIntake, run_bulk_order_scenario
from repro.workloads.orders import OrderStore

ALL_TRANSPORTS = ("inproc", "rmi", "corba", "soap")


@pytest.fixture
def cluster():
    return Cluster(("client", "server"))


@pytest.fixture
def exported_store(cluster):
    store = OrderStore()
    reference = cluster.space("server").export(store)
    return store, reference


def _place_calls(reference, count, start=0):
    return [
        (reference, "place", (f"sku-{index}", 1, 10 + index), {})
        for index in range(start, start + count)
    ]


class TestInvokeRemoteMany:
    @pytest.mark.parametrize("transport", ALL_TRANSPORTS)
    def test_batch_results_preserve_request_order(self, cluster, exported_store, transport):
        store, reference = exported_store
        results = cluster.space("client").invoke_remote_many(
            _place_calls(reference, 8), transport=transport
        )
        assert [r.unwrap() for r in results] == list(range(8))
        assert [r.index for r in results] == list(range(8))
        assert store.order_count() == 8

    @pytest.mark.parametrize("transport", ALL_TRANSPORTS)
    def test_batch_travels_as_one_message_round_trip(
        self, cluster, exported_store, transport
    ):
        _, reference = exported_store
        cluster.network.reset_metrics()
        cluster.space("client").invoke_remote_many(
            _place_calls(reference, 16), transport=transport
        )
        # One request message plus one response message, regardless of N.
        assert cluster.metrics.total_messages == 2

    def test_batch_is_cheaper_than_sequential_calls(self, cluster, exported_store):
        _, reference = exported_store
        client = cluster.space("client")
        started = cluster.clock.now
        for call in _place_calls(reference, 16):
            client.invoke_remote(call[0], call[1], call[2], call[3])
        sequential = cluster.clock.now - started
        started = cluster.clock.now
        client.invoke_remote_many(_place_calls(reference, 16, start=16))
        batched = cluster.clock.now - started
        assert batched < sequential / 3

    def test_empty_batch_is_a_no_op(self, cluster):
        assert cluster.space("client").invoke_remote_many([]) == []
        assert cluster.metrics.total_messages == 0

    def test_batch_rejects_mixed_destinations(self, cluster):
        ref_a = cluster.space("server").export(OrderStore())
        ref_b = cluster.space("client").export(OrderStore())
        with pytest.raises(InvocationError):
            cluster.space("client").invoke_remote_many(
                [(ref_a, "order_count", (), {}), (ref_b, "order_count", (), {})]
            )

    def test_local_batch_short_circuits_without_network(self, cluster):
        store = OrderStore()
        reference = cluster.space("client").export(store)
        results = cluster.space("client").invoke_remote_many(_place_calls(reference, 4))
        assert [r.unwrap() for r in results] == [0, 1, 2, 3]
        assert cluster.metrics.total_messages == 0

    def test_counters_track_batches_and_calls(self, cluster, exported_store):
        _, reference = exported_store
        client, server = cluster.space("client"), cluster.space("server")
        client.invoke_remote_many(_place_calls(reference, 5))
        assert client.batches_sent == 1
        assert client.invocations_sent == 5
        assert server.batches_served == 1
        assert server.invocations_served == 5


class TestPerCallErrorIsolation:
    @pytest.mark.parametrize("transport", ALL_TRANSPORTS)
    def test_application_error_stays_in_its_slot(self, cluster, transport):
        intake = OrderIntake()
        reference = cluster.space("server").export(intake)
        calls = [
            (reference, "submit", ("sku-ok", 1, 10), {}),
            (reference, "submit", ("sku-bad", 0, 10), {}),  # quantity 0 raises
            (reference, "submit", ("sku-ok-2", 2, 10), {}),
        ]
        results = cluster.space("client").invoke_remote_many(calls, transport=transport)
        assert results[0].ok and results[0].unwrap() == 0
        assert not results[1].ok
        with pytest.raises(RemoteInvocationError) as excinfo:
            results[1].unwrap()
        assert excinfo.value.remote_type == "ValueError"
        # The failing middle call did not prevent the tail from executing.
        assert results[2].ok and results[2].unwrap() == 1
        assert intake.accepted_count() == 2
        assert intake.rejected_count() == 1

    def test_unknown_member_is_isolated_too(self, cluster, exported_store):
        _, reference = exported_store
        results = cluster.space("client").invoke_remote_many(
            [
                (reference, "order_count", (), {}),
                (reference, "no_such_member", (), {}),
            ]
        )
        assert results[0].unwrap() == 0
        assert not results[1].ok

    def test_local_batch_isolates_errors_with_original_exceptions(self, cluster):
        intake = OrderIntake()
        reference = cluster.space("client").export(intake)
        results = cluster.space("client").invoke_remote_many(
            [
                (reference, "submit", ("a", 1, 5), {}),
                (reference, "submit", ("b", -1, 5), {}),
            ]
        )
        assert results[0].ok
        with pytest.raises(ValueError):
            results[1].unwrap()


class TestTransportLevelAtomicity:
    """A dropped/failed message fails the whole batch, not individual slots."""

    def _cluster_with_failures(self, failures):
        return Cluster(("client", "server"), failures=failures)

    def test_dropped_request_fails_batch_atomically(self):
        failures = FailureModel(drop_probability=1.0)
        cluster = self._cluster_with_failures(failures)
        store = OrderStore()
        reference = cluster.space("server").export(store)
        with pytest.raises(MessageDroppedError):
            cluster.space("client").invoke_remote_many(_place_calls(reference, 6))
        # Nothing executed: the message never reached the dispatcher.
        assert store.order_count() == 0

    def test_dropped_response_fails_batch_after_execution(self):
        """A response-side drop still fails the caller's batch as a whole —
        the classic at-most-once ambiguity is surfaced, never partial results."""

        class ResponseDropper(FailureModel):
            def __init__(self):
                super().__init__()
                self.armed = False

            def should_drop(self, source, destination):
                # Drop only the server->client leg (the response).
                return self.armed and source == "server"

        failures = ResponseDropper()
        cluster = self._cluster_with_failures(failures)
        store = OrderStore()
        reference = cluster.space("server").export(store)
        failures.armed = True
        with pytest.raises(MessageDroppedError):
            cluster.space("client").invoke_remote_many(_place_calls(reference, 4))
        # The batch did execute server-side; the caller just never hears back.
        assert store.order_count() == 4

    def test_partition_fails_batch(self):
        failures = FailureModel()
        cluster = self._cluster_with_failures(failures)
        reference = cluster.space("server").export(OrderStore())
        failures.partition({"client"}, {"server"})
        with pytest.raises(PartitionError):
            cluster.space("client").invoke_remote_many(_place_calls(reference, 3))

    def test_crashed_node_fails_batch(self):
        failures = FailureModel()
        cluster = self._cluster_with_failures(failures)
        reference = cluster.space("server").export(OrderStore())
        failures.crash_node("server")
        with pytest.raises(NodeUnreachableError):
            cluster.space("client").invoke_remote_many(_place_calls(reference, 3))


class TestBatchingProxy:
    def test_calls_buffer_until_flush(self, cluster, exported_store):
        store, reference = exported_store
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=32)
        pending = [proxy.place(f"sku-{i}", 1, 10) for i in range(5)]
        assert store.order_count() == 0  # nothing shipped yet
        assert len(proxy) == 5
        results = proxy.flush()
        assert [r.unwrap() for r in results] == [0, 1, 2, 3, 4]
        assert [p.result() for p in pending] == [0, 1, 2, 3, 4]
        assert store.order_count() == 5

    def test_auto_flush_at_max_batch(self, cluster, exported_store):
        store, reference = exported_store
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=3)
        for index in range(7):
            proxy.place(f"sku-{index}", 1, 10)
        assert store.order_count() == 6  # two full windows auto-flushed
        assert proxy.batches_flushed == 2
        assert len(proxy) == 1
        proxy.flush()
        assert store.order_count() == 7
        assert proxy.calls_enqueued == 7

    def test_result_triggers_flush_of_pending_tail(self, cluster, exported_store):
        store, reference = exported_store
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=32)
        pending = proxy.place("sku", 2, 10)
        assert pending.result() == 0
        assert store.order_count() == 1

    def test_context_manager_flushes_on_clean_exit(self, cluster, exported_store):
        store, reference = exported_store
        with BatchingProxy(reference, space=cluster.space("client")) as proxy:
            proxy.place("sku", 1, 10)
        assert store.order_count() == 1

    def test_network_failure_poisons_all_pending_calls(self):
        failures = FailureModel(drop_probability=1.0)
        cluster = Cluster(("client", "server"), failures=failures)
        reference = cluster.space("server").export(OrderStore())
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=32)
        pending = [proxy.place(f"sku-{i}", 1, 10) for i in range(3)]
        with pytest.raises(MessageDroppedError):
            proxy.flush()
        for placeholder in pending:
            with pytest.raises(MessageDroppedError):
                placeholder.result()

    def test_wraps_generated_proxies(self, remote_y_app):
        """A transformed application's proxy can opt in to batching."""
        y = remote_y_app.new("Y", 3)
        batch = BatchingProxy(y, max_batch=16)
        pending = [batch.n(value) for value in range(6)]
        batch.flush()
        assert [p.result() for p in pending] == [3 + v for v in range(6)]

    def test_survives_migration_of_the_wrapped_handle(self):
        """Batches follow a rebindable handle when the adaptive layer moves
        its object — the construction-time reference must not go stale."""
        import sample_app
        from repro.core.transformer import ApplicationTransformer
        from repro.policy.policy import all_local_policy
        from repro.runtime.redistribution import DistributionController

        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        cluster = Cluster(("front", "back"))
        app.deploy(cluster, default_node="front")
        controller = DistributionController(app, cluster)
        y = app.new("Y", 100)

        controller.make_remote(y, "back")
        batch = BatchingProxy(y, space=cluster.space("front"), max_batch=32)
        first = batch.n(1)
        batch.flush()
        assert first.result() == 101

        # The object moves home; the buffered proxy must follow the rebind.
        controller.make_local(y)
        second = batch.n(2)
        batch.flush()
        assert second.result() == 102

        # And back out to a remote node again.
        controller.make_remote(y, "back")
        third = batch.n(3)
        batch.flush()
        assert third.result() == 103

    def test_rejects_targets_without_a_reference(self, cluster):
        with pytest.raises(InvocationError):
            BatchingProxy(object(), space=cluster.space("client"))

    def test_rejects_invalid_window(self, cluster, exported_store):
        _, reference = exported_store
        with pytest.raises(InvocationError):
            BatchingProxy(reference, space=cluster.space("client"), max_batch=0)


class TestBatchFraming:
    def test_single_and_batch_frames_are_distinguished(self):
        from repro.transports.base import (
            frame_batch_message,
            frame_message,
            parse_frame,
        )

        assert parse_frame(frame_message("rmi", b"x")) == ("rmi", b"x", False)
        assert parse_frame(frame_batch_message("rmi", b"x")) == ("rmi", b"x", True)

    def test_batch_and_single_wire_types_do_not_cross(self):
        from repro.transports.corba import CorbaTransport
        from repro.transports.rmi import RmiTransport

        request = {"target": "t", "interface": "I", "member": "m", "args": [], "kwargs": {}}
        for transport in (RmiTransport(), CorbaTransport()):
            batch_payload = transport.encode_batch_request([request])
            with pytest.raises(TransportError):
                transport.decode_request(batch_payload)
            single_payload = transport.encode_request(request)
            with pytest.raises(TransportError):
                transport.decode_batch_request(single_payload)

    def test_soap_batch_envelope_shares_one_envelope(self):
        from repro.transports.soap import SoapTransport

        request = {"target": "t", "interface": "I", "member": "m", "args": [1], "kwargs": {}}
        batch = SoapTransport().encode_batch_request([request] * 8)
        singles = 8 * len(SoapTransport().encode_request(request))
        assert len(batch) < singles  # the envelope/declaration cost is amortised

    def test_soap_batch_count_mismatch_is_detected(self):
        """A corrupted envelope that lost an entry must fail at decode time,
        not surface as a confusing length mismatch later."""
        from repro.transports.soap import SoapTransport

        transport = SoapTransport()
        request = {"target": "t", "interface": "I", "member": "m", "args": [], "kwargs": {}}
        payload = transport.encode_batch_request([request] * 3)
        truncated = payload.replace(b"<Invoke ", b"<Ignored ", 1)
        with pytest.raises(TransportError):
            transport.decode_batch_request(truncated)
        response_payload = transport.encode_batch_response([{"result": 1}] * 3)
        dropped = response_payload.replace(b'count="3"', b'count="2"')
        with pytest.raises(TransportError):
            transport.decode_batch_response(dropped)

    def test_transport_without_batch_support_raises_typed_error(self):
        from repro.transports.base import Transport

        class Legacy(Transport):
            name = "legacy"

            def encode_request(self, request):
                return b""

            def decode_request(self, payload):
                return {}

            def encode_response(self, response):
                return b""

            def decode_response(self, payload):
                return {}

        with pytest.raises(TransportError):
            Legacy().encode_batch_request([])


class TestBulkOrderScenario:
    @pytest.mark.parametrize("transport", ALL_TRANSPORTS)
    def test_batched_scenario_is_at_least_3x_cheaper(self, transport):
        unbatched = run_bulk_order_scenario(
            Cluster(("client", "server")), transport=transport, orders=64, batch_size=1
        )
        batched = run_bulk_order_scenario(
            Cluster(("client", "server")), transport=transport, orders=64, batch_size=32
        )
        assert batched["accepted"] == unbatched["accepted"] == 64
        assert unbatched["per_call_seconds"] / batched["per_call_seconds"] >= 3.0
        assert batched["messages"] < unbatched["messages"]

    def test_scenario_validates_inputs(self):
        with pytest.raises(ValueError):
            run_bulk_order_scenario(Cluster(("client", "server")), orders=0)


class TestBatchResult:
    def test_unwrap_returns_value_or_raises(self):
        assert BatchResult(index=0, value=41).unwrap() == 41
        failing = BatchResult(index=1, error=RuntimeError("boom"))
        assert not failing.ok
        with pytest.raises(RuntimeError):
            failing.unwrap()
