"""Tests for replica groups, state sync, failover and the retry integrations.

The replication subsystem must keep backups equal to their primary (eagerly
per write, or per interval snapshot), promote a backup when the heartbeat
detector declares the primary's node dead, rebind the group's name, publish
reference redirects — and the fault-tolerance and pipelining layers must
ride those redirects so a crashed shard costs latency, never lost calls.
"""

from __future__ import annotations

import pytest

from repro.errors import NodeUnreachableError, ReplicationError
from repro.network.heartbeat import HeartbeatDetector
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import FaultTolerantInvoker, RetryPolicy
from repro.runtime.pipelining import PipelineScheduler
from repro.runtime.replication import (
    ReplicaManager,
    apply_state,
    snapshot_state,
)
from repro.workloads.bulk_orders import OrderIntake
from repro.workloads.replicated_orders import (
    INTAKE_READONLY,
    run_replicated_order_scenario,
)

READONLY = INTAKE_READONLY


@pytest.fixture
def cluster():
    return Cluster(("client", "a", "b", "c"))


def _manager(cluster, **kwargs) -> ReplicaManager:
    detector = HeartbeatDetector(
        cluster.network, "client", interval=0.002, miss_threshold=2
    )
    for node in ("a", "b", "c"):
        detector.watch(node)
    manager = ReplicaManager(cluster, detector=detector, **kwargs)
    detector.start()
    return manager


def _replicated_intake(manager, primary="a", backups=("b",), **kwargs):
    return manager.replicate(
        OrderIntake(),
        name="orders",
        primary_node=primary,
        backup_nodes=list(backups),
        readonly=READONLY,
        **kwargs,
    )


class TestStateCapture:
    def test_snapshot_and_apply_roundtrip_plain_object(self):
        source = OrderIntake()
        source.submit("sku-1", 2, 10)
        target = OrderIntake()
        written = apply_state(target, snapshot_state(source))
        assert written >= 2
        assert target.accepted_count() == 1
        assert target.revenue() == 20

    def test_snapshot_skips_private_attributes(self):
        source = OrderIntake()
        source._scratch = "not replicable"
        assert "_scratch" not in snapshot_state(source)


class TestReplicaGroups:
    def test_eager_writes_reach_the_backup(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"))
        invoker.invoke(group.primary_ref, "submit", ("sku-1", 2, 10))
        backup = group.backups["b"].impl
        assert backup.accepted_count() == 1
        assert backup.revenue() == 20
        assert group.writes_propagated == 1

    def test_readonly_members_are_not_propagated(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"))
        invoker.invoke(group.primary_ref, "submit", ("sku-1", 1, 10))
        before = group.writes_propagated
        assert invoker.invoke(group.primary_ref, "accepted_count") == 1
        assert group.writes_propagated == before

    def test_replication_traffic_is_charged_to_the_network(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        before = cluster.metrics.messages_between("a", "b")
        FaultTolerantInvoker(cluster.space("client")).invoke(
            group.primary_ref, "submit", ("sku-1", 1, 10)
        )
        assert cluster.metrics.messages_between("a", "b") > before

    def test_interval_sync_ships_snapshots_from_the_event_queue(self, cluster):
        manager = _manager(cluster, sync="interval", sync_interval=0.01)
        group = _replicated_intake(manager)
        FaultTolerantInvoker(cluster.space("client")).invoke(
            group.primary_ref, "submit", ("sku-1", 3, 10)
        )
        backup = group.backups["b"].impl
        assert backup.accepted_count() == 0  # not synced yet
        assert group.dirty
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert backup.accepted_count() == 1
        assert not group.dirty
        manager.stop()

    def test_dropped_forward_demotes_then_reseeds_the_backup(self, cluster):
        """A lost replication forward must not silently strip failover
        protection forever: the copy is demoted (stale copies are never
        promoted) and then re-seeded with a snapshot while its host is up."""
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"))
        # Drop exactly the next message: the apply_op forward to the backup.
        original = cluster.network.failures.should_drop
        drops = {"left": 1}

        def drop_next(source, destination):
            if drops["left"] > 0 and (source, destination) == ("a", "b"):
                drops["left"] -= 1
                return True
            return original(source, destination)

        cluster.network.failures.should_drop = drop_next
        invoker.invoke(group.primary_ref, "submit", ("sku-1", 1, 10))
        assert not group.backups["b"].healthy  # stale: not promotable
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        record = group.backups["b"]
        assert record.healthy  # re-seeded with a fresh snapshot
        assert record.impl.accepted_count() == 1  # the dropped write is back
        # And the failover path is protected again.
        cluster.network.failures.crash_node("a")
        failover_aware = FaultTolerantInvoker(
            cluster.space("client"), replica_manager=manager
        )
        assert failover_aware.invoke(group.primary_ref, "submit", ("sku-2", 1, 10)) == 1

    def test_failover_and_reenlist_do_not_leak_exports(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        baseline = {
            node: cluster.space(node).object_count() for node in ("a", "b")
        }
        for _ in range(2):  # two full crash → failover → recover cycles
            primary = group.primary_node
            cluster.network.failures.crash_node(primary)
            invoker.invoke(group.primary_ref, "submit", ("sku", 1, 10))
            cluster.network.failures.recover_node(primary)
            cluster.network.events.run_until(cluster.clock.now + 0.05)
        # One primary export and one backup endpoint, whichever side hosts
        # them: the totals must not grow with the number of cycles.
        assert sum(
            cluster.space(node).object_count() for node in ("a", "b")
        ) == sum(baseline.values())

    def test_replicate_validates_topology(self, cluster):
        manager = _manager(cluster)
        with pytest.raises(ReplicationError):
            manager.replicate(
                OrderIntake(), name="x", primary_node="a", backup_nodes=[]
            )
        with pytest.raises(ReplicationError):
            manager.replicate(
                OrderIntake(), name="x", primary_node="a", backup_nodes=["a"]
            )
        with pytest.raises(ReplicationError):
            manager.replicate(
                OrderIntake(), name="x", primary_node="a", backup_nodes=["b", "b"]
            )

    def test_duplicate_group_name_rejected(self, cluster):
        manager = _manager(cluster)
        _replicated_intake(manager)
        with pytest.raises(ReplicationError):
            _replicated_intake(manager)

    def test_name_is_bound_at_creation(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        assert cluster.naming.lookup("orders") == group.primary_ref


class TestFailover:
    def test_promotes_backup_rebinds_name_and_redirects(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        old_ref = group.primary_ref
        FaultTolerantInvoker(cluster.space("client")).invoke(
            old_ref, "submit", ("sku-1", 2, 10)
        )
        cluster.network.failures.crash_node("a")
        record = manager.failover(group)
        assert record.from_node == "a" and record.to_node == "b"
        assert group.primary_node == "b"
        assert group.epoch == 1
        assert manager.current_ref(old_ref) == group.primary_ref
        assert cluster.naming.lookup("orders") == group.primary_ref
        # The promoted copy carries every acknowledged write.
        assert group.primary_impl.accepted_count() == 1

    def test_failover_without_backup_raises(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        group.backups["b"].healthy = False
        with pytest.raises(ReplicationError):
            manager.failover(group)

    def test_detector_declaration_triggers_failover(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        cluster.network.failures.crash_node("a")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert len(manager.failovers) == 1
        assert group.primary_node == "b"

    def test_recovered_node_is_reenlisted_and_failback_works(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        invoker.invoke(group.primary_ref, "submit", ("sku-1", 1, 10))
        cluster.network.failures.crash_node("a")
        invoker.invoke(group.primary_ref, "submit", ("sku-2", 1, 10))
        assert group.primary_node == "b"
        cluster.network.failures.recover_node("a")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert group.backups["a"].healthy
        cluster.network.failures.crash_node("b")
        invoker.invoke(group.primary_ref, "submit", ("sku-3", 1, 10))
        assert group.primary_node == "a"
        assert group.epoch == 2
        assert group.primary_impl.accepted_count() == 3

    def test_primary_and_backup_both_dead_does_not_crash_the_event_pump(self, cluster):
        """A detector declaration for a group with no live backup host must
        be a no-op, not a ReplicationError escaping through the heartbeat
        listener into whoever pumps the event queue."""
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        cluster.network.failures.crash_node("a")
        cluster.network.failures.crash_node("b")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert manager.failovers == []
        assert group.primary_node == "a"  # nothing promotable: group stays put
        # Both nodes return: the next crash can fail over again.
        cluster.network.failures.recover_node("a")
        cluster.network.failures.recover_node("b")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        cluster.network.failures.crash_node("a")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert len(manager.failovers) == 1
        assert group.primary_node == "b"

    def test_backup_recovering_before_the_primary_is_still_reenlisted(self, cluster):
        """Backup B recovers while primary A is still down: the immediate
        re-seed cannot work (no live primary to snapshot), but redundancy
        must be restored once A returns — not silently lost forever."""
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        cluster.network.failures.crash_node("a")
        cluster.network.failures.crash_node("b")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        cluster.network.failures.recover_node("b")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert not group.backups["b"].healthy  # primary still dead: stale
        cluster.network.failures.recover_node("a")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert group.backups["b"].healthy  # redundancy restored
        # And the group can fail over again.
        cluster.network.failures.crash_node("a")
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        assert invoker.invoke(group.primary_ref, "submit", ("sku", 1, 10)) == 0
        assert group.primary_node == "b"

    def test_chained_redirects_resolve_to_latest_primary(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager, backups=("b", "c"))
        first = group.primary_ref
        cluster.network.failures.crash_node("a")
        manager.failover(group)
        second = group.primary_ref
        cluster.network.failures.crash_node(group.primary_node)
        manager.failover(group)
        assert manager.current_ref(first) == group.primary_ref
        assert manager.current_ref(second) == group.primary_ref
        assert group.epoch == 2


class TestInvokerFailover:
    def test_fatal_error_retries_against_promoted_replica(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        cluster.network.failures.crash_node("a")
        assert invoker.invoke(group.primary_ref, "submit", ("sku-1", 1, 10)) == 0
        assert group.primary_node == "b"
        assert invoker.log.total_failures >= 1
        assert all(record.recovered for record in invoker.log.records)

    def test_unreplicated_reference_still_fails_fatally(self, cluster):
        manager = _manager(cluster)
        plain = OrderIntake()
        reference = cluster.space("a").export(plain)
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        cluster.network.failures.crash_node("a")
        with pytest.raises(NodeUnreachableError):
            invoker.invoke(reference, "submit", ("sku-1", 1, 10))

    def test_no_promotable_backup_surfaces_the_error(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        group.backups["b"].healthy = False
        invoker = FaultTolerantInvoker(
            cluster.space("client"), replica_manager=manager, failover_wait=0.02
        )
        cluster.network.failures.crash_node("a")
        with pytest.raises(NodeUnreachableError):
            invoker.invoke(group.primary_ref, "submit", ("sku-1", 1, 10))

    def test_batch_path_redirects_after_failover(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        cluster.network.failures.crash_node("a")
        results = invoker.invoke_many(
            [
                (group.primary_ref, "submit", (f"sku-{i}", 1, 10), {})
                for i in range(4)
            ]
        )
        assert [result.unwrap() for result in results] == [0, 1, 2, 3]
        assert group.primary_node == "b"

    def test_batch_split_across_promotions(self, cluster):
        manager = _manager(cluster)
        group_one = _replicated_intake(manager)
        group_two = manager.replicate(
            OrderIntake(),
            name="orders-2",
            primary_node="a",
            backup_nodes=["c"],
            readonly=READONLY,
        )
        invoker = FaultTolerantInvoker(cluster.space("client"), replica_manager=manager)
        cluster.network.failures.crash_node("a")
        results = invoker.invoke_many(
            [
                (group_one.primary_ref, "submit", ("sku-1", 1, 10), {}),
                (group_two.primary_ref, "submit", ("sku-2", 1, 10), {}),
            ]
        )
        # One failed batch, two groups promoted to different nodes: the retry
        # splits per destination and merges results in submission order.
        assert [result.unwrap() for result in results] == [0, 0]
        assert group_one.primary_node == "b"
        assert group_two.primary_node == "c"


class TestSchedulerFailover:
    def test_in_flight_batches_survive_a_shard_kill(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        scheduler = PipelineScheduler(
            cluster.space("client"),
            max_batch=4,
            window=2,
            replica_manager=manager,
        )
        futures = [
            scheduler.submit(group.primary_ref, "submit", f"sku-{i}", 1, 10)
            for i in range(8)
        ]
        cluster.network.failures.crash_node("a")
        futures += [
            scheduler.submit(group.primary_ref, "submit", f"sku-{8 + i}", 1, 10)
            for i in range(8)
        ]
        scheduler.drain()
        assert sorted(future.result() for future in futures) == list(range(16))
        assert all(future.ok for future in futures)
        assert scheduler.calls_redirected > 0
        assert group.primary_node == "b"
        assert group.primary_impl.accepted_count() == 16

    def test_without_manager_fatal_errors_still_fail(self, cluster):
        plain = OrderIntake()
        reference = cluster.space("a").export(plain)
        scheduler = PipelineScheduler(cluster.space("client"), max_batch=4, window=2)
        cluster.network.failures.crash_node("a")
        future = scheduler.submit(reference, "submit", "sku", 1, 10)
        scheduler.drain()
        assert not future.ok
        assert isinstance(future.exception(), NodeUnreachableError)

    def test_transient_retry_policy_still_composes(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        scheduler = PipelineScheduler(
            cluster.space("client"),
            max_batch=4,
            window=2,
            retry_policy=RetryPolicy(max_attempts=3),
            replica_manager=manager,
        )
        futures = [
            scheduler.submit(group.primary_ref, "submit", f"sku-{i}", 1, 10)
            for i in range(4)
        ]
        scheduler.drain()
        assert [future.result() for future in futures] == [0, 1, 2, 3]


class TestBatchedEagerForwards:
    """Eager replication amortises its forwards per dispatched batch.

    A batch of N writes executing on the primary used to fan out as N
    ``apply_op`` messages per backup; the batch-dispatch scope now defers
    them and ships ONE ``apply_ops`` message per backup, committed before
    the batch response leaves the primary.
    """

    def test_one_forward_message_per_batch_per_backup(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        backup = group.backups["b"]
        before = cluster.metrics.total_messages
        results = cluster.space("client").invoke_remote_many(
            [
                (group.primary_ref, "submit", (f"sku-{i}", 1, 10), {})
                for i in range(16)
            ],
            transport="rmi",
        )
        assert all(result.ok for result in results)
        # The batch was acknowledged only after the backup observed every
        # write (the commit hook runs before the response is framed).
        endpoint = cluster.space("b").lookup_local_object(
            backup.endpoint_ref.object_id
        )
        assert endpoint.ops_applied == 16
        assert group.writes_propagated == 16
        # One batch request + response, one apply_ops request + response:
        # 4 messages instead of 2 + 2*16 with per-write forwarding.
        assert cluster.metrics.total_messages - before == 4
        assert group.forward_messages == 1

    def test_per_write_forwarding_outside_a_batch_is_unchanged(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        before = cluster.metrics.total_messages
        for i in range(4):
            cluster.space("client").invoke_remote(
                group.primary_ref, "submit", (f"sku-{i}", 1, 10), transport="rmi"
            )
        # Each write: 1 request + 1 response + 1 forward + 1 forward response.
        assert cluster.metrics.total_messages - before == 16
        assert group.forward_messages == 4

    def test_batched_forwards_cut_messages_versus_per_write(self, cluster):
        """The reduction claim, measured: batched << per-write amplification."""
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        calls = [
            (group.primary_ref, "submit", (f"sku-{i}", 1, 10), {}) for i in range(32)
        ]
        before = cluster.metrics.total_messages
        cluster.space("client").invoke_remote_many(calls, transport="rmi")
        batched_messages = cluster.metrics.total_messages - before
        per_write_messages = 2 + 2 * 32  # what PR 3's per-write forwarding cost
        assert batched_messages == 4
        assert batched_messages < per_write_messages / 10

    def test_multi_backup_batch_ships_one_message_each(self, cluster):
        manager = _manager(cluster)
        group = _replicated_intake(manager, backups=("b", "c"))
        before = cluster.metrics.total_messages
        cluster.space("client").invoke_remote_many(
            [(group.primary_ref, "submit", (f"sku-{i}", 1, 10), {}) for i in range(8)],
            transport="rmi",
        )
        # Batch round trip + one apply_ops round trip per backup.
        assert cluster.metrics.total_messages - before == 6
        assert group.forward_messages == 2
        for node in ("b", "c"):
            endpoint = cluster.space(node).lookup_local_object(
                group.backups[node].endpoint_ref.object_id
            )
            assert endpoint.ops_applied == 8

    def test_forwarding_survives_a_raising_commit_hook(self, cluster):
        """One failing commit hook must neither fail the executed batch nor
        wedge the deferral machinery for later batches."""
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        primary_space = cluster.space("a")
        fired = []

        def bad_hook():
            fired.append("bad")
            raise RuntimeError("observer bug")

        # A batch whose commit hook raises: the failure is isolated.
        primary_space._enter_batch_scope()
        primary_space.on_batch_commit(bad_hook)
        primary_space._exit_batch_scope()
        assert fired == ["bad"]
        assert primary_space.batch_commit_hook_failures == 1
        # Later batches still forward normally: the group is not wedged.
        results = cluster.space("client").invoke_remote_many(
            [(group.primary_ref, "submit", (f"sku-{i}", 1, 10), {}) for i in range(4)],
            transport="rmi",
        )
        assert all(result.ok for result in results)
        assert group.writes_propagated == 4
        assert group.forward_messages == 1
        assert not group.pending_ops and not group.commit_armed

    def test_promoted_backup_observed_the_batched_writes(self, cluster):
        """A failover right after an acknowledged batch loses none of it."""
        manager = _manager(cluster)
        group = _replicated_intake(manager)
        cluster.space("client").invoke_remote_many(
            [(group.primary_ref, "submit", (f"sku-{i}", 1, 10), {}) for i in range(12)],
            transport="rmi",
        )
        cluster.network.failures.crash_node("a")
        cluster.network.events.run_until(cluster.clock.now + 0.05)
        assert manager.failovers, "the crash must have promoted the backup"
        assert group.primary_impl.accepted_count() == 12


class TestKillAShardWorkload:
    def test_zero_client_visible_failures_with_backup(self):
        cluster = Cluster(("client", "shard-0", "shard-1"))
        outcome = run_replicated_order_scenario(
            cluster, orders=64, kill="shard-0"
        )
        assert outcome["client_visible_failures"] == 0
        assert outcome["accepted"] == 64
        assert outcome["failovers"] == 1
        assert outcome["recovered_calls"] > 0
        assert len(outcome["values"]) == 64

    def test_unreplicated_baseline_loses_calls(self):
        cluster = Cluster(("client", "shard-0", "shard-1"))
        outcome = run_replicated_order_scenario(
            cluster, orders=64, kill="shard-0", replicate=False
        )
        assert outcome["client_visible_failures"] > 0
        assert outcome["failovers"] == 0

    def test_kill_after_one_still_kills_the_shard(self):
        """kill_after=1.0 crashes after the last submission, not never."""
        cluster = Cluster(("client", "shard-0", "shard-1"))
        outcome = run_replicated_order_scenario(
            cluster, orders=64, kill="shard-0", kill_after=1.0
        )
        assert outcome["failovers"] == 1
        assert outcome["failover_delay_seconds"] > 0.0
        assert outcome["client_visible_failures"] == 0
        assert outcome["accepted"] == 64

    def test_steady_state_has_no_failovers(self):
        cluster = Cluster(("client", "shard-0", "shard-1"))
        outcome = run_replicated_order_scenario(cluster, orders=32)
        assert outcome["client_visible_failures"] == 0
        assert outcome["failovers"] == 0
        assert outcome["writes_propagated"] == 32
