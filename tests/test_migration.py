"""Unit tests for object migration between address spaces."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import MigrationError
from repro.policy.policy import all_local_policy, local
from repro.runtime.cluster import Cluster
from repro.runtime.migration import ObjectMigrator, capture_state, restore_state
from repro.workloads.figure1 import A, B, C

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


@pytest.fixture
def dynamic_app():
    policy = all_local_policy(dynamic=True)
    app = ApplicationTransformer(policy).transform(CLASSES)
    cluster = Cluster(("client", "server", "backup"))
    app.deploy(cluster, default_node="client")
    return app, cluster


class TestStateCaptureAndRestore:
    def test_capture_reads_every_field(self, dynamic_app):
        app, _ = dynamic_app
        y = app.new_local("Y", 9)
        assert capture_state(app, "Y", y) == {"base": 9}

    def test_restore_writes_every_field(self, dynamic_app):
        app, _ = dynamic_app
        source = app.new_local("Y", 9)
        target = app.local_class("Y")()
        written = restore_state(app, "Y", target, capture_state(app, "Y", source))
        assert written == 1
        assert target.get_base() == 9

    def test_round_trip_preserves_behaviour(self, dynamic_app):
        app, _ = dynamic_app
        original = app.new_local("X", app.new_local("Y", 3))
        clone = app.local_class("X")()
        restore_state(app, "X", clone, capture_state(app, "X", original))
        assert clone.m(4) == original.m(4) == 7


class TestObjectMigrator:
    def test_migrate_moves_state_to_the_target_node(self, dynamic_app):
        app, cluster = dynamic_app
        migrator = ObjectMigrator(app, cluster)
        y = app.new("Y", 5)  # dynamic handle, local on client
        record = migrator.migrate(y, "server")
        assert record.target_node == "server"
        assert record.fields_copied == 1
        assert cluster.space("server").object_count() == 1

    def test_handle_keeps_working_after_migration(self, dynamic_app):
        app, cluster = dynamic_app
        migrator = ObjectMigrator(app, cluster)
        y = app.new("Y", 5)
        before = y.n(1)
        migrator.migrate(y, "server")
        assert y.n(1) == before
        assert y.meta.is_remote and y.meta.node_id == "server"
        assert cluster.metrics.total_messages > 0

    def test_migrating_twice_moves_between_nodes(self, dynamic_app):
        app, cluster = dynamic_app
        migrator = ObjectMigrator(app, cluster)
        y = app.new("Y", 5)
        migrator.migrate(y, "server")
        record = migrator.migrate(y, "backup")
        assert record.source_node == "server"
        assert record.target_node == "backup"
        assert y.n(2) == 7
        # The old export was retired.
        assert cluster.space("server").object_count() == 0

    def test_migrating_to_the_current_node_is_rejected(self, dynamic_app):
        app, cluster = dynamic_app
        migrator = ObjectMigrator(app, cluster)
        y = app.new("Y", 5)
        migrator.migrate(y, "server")
        with pytest.raises(MigrationError):
            migrator.migrate(y, "server")

    def test_plain_objects_cannot_be_migrated(self, dynamic_app):
        app, cluster = dynamic_app
        migrator = ObjectMigrator(app, cluster)
        with pytest.raises(MigrationError):
            migrator.migrate(object(), "server")

    def test_naming_service_follows_the_move(self, dynamic_app):
        app, cluster = dynamic_app
        migrator = ObjectMigrator(app, cluster)
        y = app.new("Y", 5)
        # Publish the object under a well-known name before migrating it.
        reference = cluster.space("client").export(y.meta.target)
        cluster.naming.bind("the-y", reference)
        migrator.migrate(y, "server")
        assert cluster.naming.lookup("the-y").node_id == "server"

    def test_shared_object_migration_preserves_figure1_behaviour(self):
        policy = all_local_policy()
        policy.set_class("C", instances=local(dynamic=True))
        app = ApplicationTransformer(policy).transform([A, B, C])
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        migrator = ObjectMigrator(app, cluster)

        shared = app.new("C", "shared")
        holder_a = app.new("A", shared)
        holder_b = app.new("B", shared)
        holder_a.record(4)
        migrator.migrate(shared, "server")
        holder_b.record(5)
        # 4 (from A) + 10 (B doubles) observed through the migrated object.
        assert shared.get_total() == 14
        assert shared.get_entries() == 2
