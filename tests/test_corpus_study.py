"""Experiment E5: the JDK 1.4.1 transformability study (§2.4).

The paper's quantitative claims:

* "About 40 % of the 8,200 classes and interfaces in JDK 1.4.1 cannot be
  transformed."
* "This percentage would increase if the user code contains native methods
  which refer to a JDK class."

The corpus is synthetic (we have no JDK class files), so the tests check the
calibrated reproduction of the headline figure, the structural properties of
the corpus, and the direction and monotonicity of the user-code sensitivity.
"""

from __future__ import annotations

import pytest

from repro.corpus.analysis import (
    reasons_in_direct_seed,
    run_jdk_study,
    run_study,
    user_code_sensitivity,
)
from repro.corpus.generator import Corpus, generate_corpus, generate_user_code
from repro.corpus.jdk_model import (
    JDK_1_4_1_PROFILES,
    PackageProfile,
    total_profile_classes,
)
from repro.errors import CorpusError


@pytest.fixture(scope="module")
def corpus() -> Corpus:
    return generate_corpus()


@pytest.fixture(scope="module")
def study(corpus):
    return run_study(corpus)


class TestCorpusStructure:
    def test_corpus_has_8200_classes_like_jdk_141(self, corpus):
        assert total_profile_classes(JDK_1_4_1_PROFILES) == 8200
        assert len(corpus) == 8200

    def test_generation_is_deterministic_per_seed(self):
        first = generate_corpus(seed=5)
        second = generate_corpus(seed=5)
        assert first.names() == second.names()
        assert first.native_class_count() == second.native_class_count()

    def test_different_seeds_differ(self):
        assert generate_corpus(seed=1).native_class_count() != pytest.approx(
            generate_corpus(seed=2).native_class_count(), abs=0
        ) or generate_corpus(seed=1).names() == generate_corpus(seed=2).names()

    def test_native_prevalence_is_realistic(self, corpus):
        # Roughly 15 % of JDK classes are native-backed in the profile.
        fraction = corpus.native_class_count() / len(corpus)
        assert 0.10 <= fraction <= 0.20

    def test_awt_is_more_native_than_swing(self, corpus):
        packages = corpus.by_package()
        awt_native = sum(1 for d in packages["java.awt"] if d.has_native_methods)
        swing_native = sum(1 for d in packages["javax.swing"] if d.has_native_methods)
        assert awt_native / len(packages["java.awt"]) > swing_native / len(packages["javax.swing"])

    def test_descriptors_convert_to_class_models(self, corpus):
        descriptor = corpus.descriptors[0]
        model = descriptor.to_class_model()
        assert model.name == descriptor.name
        assert model.has_native_methods == descriptor.has_native_methods

    def test_empty_profile_list_rejected(self):
        with pytest.raises(CorpusError):
            generate_corpus(profiles=())


class TestHeadlineResult:
    def test_about_40_percent_cannot_be_transformed(self, study):
        """Paper: about 40 % of 8,200 classes cannot be transformed."""
        assert study.corpus_size == 8200
        assert 34.0 <= study.percent_non_transformable <= 47.0

    def test_result_is_stable_across_seeds(self):
        for seed in (7, 99):
            result = run_jdk_study(seed=seed)
            assert 34.0 <= result.percent_non_transformable <= 47.0

    def test_native_heavy_packages_are_hit_hardest(self, study):
        by_package = {b.package: b.fraction for b in study.packages}
        assert by_package["java.awt"] > by_package["javax.swing"]
        assert by_package["java.lang"] > by_package["javax.xml"]

    def test_reason_breakdown_includes_both_direct_and_propagated(self, study):
        reasons = study.reasons()
        assert any("native" in reason for reason in reasons)
        assert any("referenced by" in reason for reason in reasons)
        direct = reasons_in_direct_seed(study)
        assert sum(direct.values()) > 0

    def test_summary_is_reportable(self, study):
        summary = study.summary()
        assert summary["classes"] == 8200
        assert isinstance(summary["per_package"], dict)
        assert 0 < summary["percent_non_transformable"] < 100


class TestUserCodeSensitivity:
    def test_user_native_code_increases_the_percentage(self, corpus):
        """Paper: the percentage increases when user native code references the JDK."""
        points = user_code_sensitivity(
            corpus, user_classes=300, native_fractions=(0.0, 0.25, 0.5), seed=11
        )
        baseline, quarter, half = points
        assert baseline.percent_increase_over_baseline == pytest.approx(0.0, abs=0.2)
        assert quarter.percent_increase_over_baseline > 0.0
        assert half.percent_increase_over_baseline >= quarter.percent_increase_over_baseline

    def test_pure_python_user_code_is_harmless(self, corpus):
        user_code = generate_user_code(corpus, class_count=100, native_fraction=0.0)
        with_user = run_study(corpus, extra_descriptors=user_code)
        without_user = run_study(corpus)
        assert with_user.percent_non_transformable == pytest.approx(
            without_user.percent_non_transformable, abs=0.2
        )

    def test_user_classes_reference_the_corpus(self, corpus):
        user_code = generate_user_code(corpus, class_count=50, native_fraction=0.2, seed=3)
        jdk_names = corpus.names()
        assert any(set(descriptor.references) & jdk_names for descriptor in user_code)


class TestCustomProfiles:
    def test_pure_java_corpus_is_fully_transformable_modulo_throwables(self):
        profiles = (
            PackageProfile("pure.lib", 200, native_fraction=0.0, throwable_fraction=0.0),
        )
        result = run_study(generate_corpus(profiles=profiles, seed=1))
        assert result.percent_non_transformable == 0.0

    def test_fully_native_corpus_is_fully_non_transformable(self):
        profiles = (
            PackageProfile("native.lib", 100, native_fraction=1.0, interface_fraction=0.0),
        )
        result = run_study(generate_corpus(profiles=profiles, seed=1))
        assert result.percent_non_transformable == 100.0

    def test_more_native_means_less_transformable(self):
        fractions = []
        for native in (0.0, 0.2, 0.6):
            profiles = (
                PackageProfile(
                    "lib", 300, native_fraction=native, throwable_fraction=0.0,
                    interface_fraction=0.1, internal_references=2.0,
                ),
            )
            fractions.append(
                run_study(generate_corpus(profiles=profiles, seed=4)).fraction_non_transformable
            )
        assert fractions == sorted(fractions)
