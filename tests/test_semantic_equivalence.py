"""Experiment E10: the transformed application is semantically equivalent.

Property-based testing of the paper's central correctness claim: for random
interaction sequences, the original program, the transformed-but-local
program, and the transformed-and-distributed program all compute the same
observable results (modulo network failure, which is excluded here by using a
reliable simulated network).
"""

from __future__ import annotations

import sample_app
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster
from repro.workloads.shared_cache import Cache

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]

_SMALL_INTS = st.integers(min_value=-1000, max_value=1000)


def _fresh_local_app():
    return ApplicationTransformer(all_local_policy()).transform(CLASSES)


def _fresh_remote_app():
    app = ApplicationTransformer(place_classes_on({"Y": "server", "Z": "server"})).transform(
        CLASSES
    )
    app.deploy(Cluster(("client", "server")), default_node="client")
    return app


class TestSampleProgramEquivalence:
    @given(base=_SMALL_INTS, j=_SMALL_INTS, i=_SMALL_INTS)
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_local_transformation_matches_original(self, base, j, i):
        expected = sample_app.run_original(base, j, i)
        app = _fresh_local_app()
        y = app.new("Y", base)
        x = app.new("X", y)
        observed = (x.m(j), app.statics("X").p(i), app.statics("Y").get_K())
        assert observed == expected

    @given(base=_SMALL_INTS, j=_SMALL_INTS, i=_SMALL_INTS)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_distributed_transformation_matches_original(self, base, j, i):
        expected = sample_app.run_original(base, j, i)
        app = _fresh_remote_app()
        y = app.new("Y", base)
        x = app.new("X", y)
        observed = (x.m(j), app.statics("X").p(i), app.statics("Y").get_K())
        assert observed == expected


# Operations for the stateful cache equivalence test.
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 20), _SMALL_INTS),
        st.tuples(st.just("get"), st.integers(0, 20)),
        st.tuples(st.just("size")),
        st.tuples(st.just("hit_rate")),
    ),
    min_size=1,
    max_size=40,
)


def _run_cache_ops(cache, operations):
    observations = []
    for operation in operations:
        if operation[0] == "put":
            observations.append(cache.put(f"k{operation[1]}", operation[2]))
        elif operation[0] == "get":
            observations.append(cache.get(f"k{operation[1]}"))
        elif operation[0] == "size":
            observations.append(cache.size())
        else:
            observations.append(round(cache.hit_rate(), 9))
    return observations


class TestStatefulCacheEquivalence:
    @given(operations=_ops)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_transformed_cache_matches_original_for_any_operation_sequence(self, operations):
        original = Cache(8)
        expected = _run_cache_ops(original, operations)

        app = ApplicationTransformer(all_local_policy()).transform([Cache])
        observed = _run_cache_ops(app.new("Cache", 8), operations)
        assert observed == expected

    @given(operations=_ops)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_remote_cache_matches_original_for_any_operation_sequence(self, operations):
        original = Cache(8)
        expected = _run_cache_ops(original, operations)

        app = ApplicationTransformer(place_classes_on({"Cache": "server"})).transform([Cache])
        app.deploy(Cluster(("client", "server")), default_node="client")
        observed = _run_cache_ops(app.new("Cache", 8), operations)
        assert observed == expected
