"""The old hand-wired constructors are deprecation shims for the façade.

``BatchingProxy`` and ``PipelineScheduler`` keep working exactly as before —
their full test suites still run against them unchanged — but constructing
them *directly* now emits a ``DeprecationWarning`` pointing at
``repro.api``.  The façade's own internal engines are subclasses exempt from
the warning, so policy-driven composition stays silent.
"""

from __future__ import annotations

import warnings

import pytest

from repro.api import ServicePolicy, Session
from repro.runtime.batching import BatchingProxy
from repro.runtime.cluster import Cluster
from repro.runtime.pipelining import PipelineScheduler
from repro.workloads.bulk_orders import OrderIntake


@pytest.fixture
def cluster():
    return Cluster(("client", "server"))


class TestDeprecationWarnings:
    def test_batching_proxy_direct_construction_warns(self, cluster):
        reference = cluster.space("server").export(OrderIntake())
        with pytest.warns(DeprecationWarning, match="BatchingProxy.*ServicePolicy"):
            BatchingProxy(reference, space=cluster.space("client"), max_batch=8)

    def test_pipeline_scheduler_direct_construction_warns(self, cluster):
        with pytest.warns(DeprecationWarning, match="PipelineScheduler.*ServicePolicy"):
            PipelineScheduler(cluster.space("client"), max_batch=8, window=2)

    def test_deprecated_batching_proxy_still_works(self, cluster):
        """The shim is thin: behaviour is unchanged besides the warning."""
        intake = OrderIntake()
        reference = cluster.space("server").export(intake)
        with pytest.warns(DeprecationWarning):
            proxy = BatchingProxy(
                reference, space=cluster.space("client"), max_batch=8, transport="rmi"
            )
        pending = [proxy.submit(f"sku-{i}", 1, 10) for i in range(8)]
        assert [p.result() for p in pending] == list(range(8))
        assert intake.accepted_count() == 8

    def test_deprecated_scheduler_still_works(self, cluster):
        intake = OrderIntake()
        reference = cluster.space("server").export(intake)
        with pytest.warns(DeprecationWarning):
            scheduler = PipelineScheduler(
                cluster.space("client"), max_batch=4, window=2, transport="rmi"
            )
        futures = [scheduler.submit(reference, "submit", f"sku-{i}", 1, 10) for i in range(8)]
        scheduler.drain()
        assert [f.result() for f in futures] == list(range(8))

    def test_facade_composition_is_warning_free(self, cluster):
        """Internal engines (subclasses) must not trigger the shim warning."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            with Session(cluster, node="client") as session:
                svc = session.service(
                    "orders",
                    ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2),
                    impl=OrderIntake(),
                    node="server",
                )
                futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(8)]
                session.drain()
                assert all(f.ok for f in futures)
