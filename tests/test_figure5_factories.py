"""Experiment E4: reproduce Figure 5 — the factories generated for X.

Figure 5 lists ``X_O_Factory`` (``make`` choosing the implementation per
policy, ``init(that, y)`` carrying the original constructor body) and
``X_C_Factory`` (``discover`` returning the static singleton, ``clinit``
replaying the static initialiser ``z = new Z(Y.K)`` through the factories of
the classes it mentions).
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster


@pytest.fixture(scope="module")
def app():
    return ApplicationTransformer(all_local_policy()).transform(
        [sample_app.X, sample_app.Y, sample_app.Z]
    )


@pytest.fixture(scope="module")
def sources(app):
    return app.emit_sources("X", transports=("soap", "rmi"))


class TestObjectFactory:
    def test_emitted_factory_matches_listing(self, sources):
        source = sources["X_O_Factory"]
        assert "class X_O_Factory:" in source
        assert "def make(cls):" in source
        assert "def init(that, y" in source
        assert "that.set_y(y)" in source

    def test_make_is_the_policy_point(self, sources):
        assert "policy" in sources["X_O_Factory"]

    def test_factory_has_one_init_per_constructor(self, app):
        factory = app.factory("X")
        assert callable(factory.init)
        assert callable(factory.make)
        assert callable(factory.create)

    def test_init_initialises_an_existing_instance(self, app):
        y = app.new_local("Y", 2)
        x = app.factory("X").make()
        app.factory("X").init(x, y)
        assert x.get_y() is y

    def test_creation_sites_use_create(self, app):
        """Rewritten constructor calls route through the factory composition."""
        y = app.factory("Y").create(9)
        assert y.get_base() == 9


class TestClassFactory:
    def test_emitted_class_factory_matches_listing(self, sources):
        source = sources["X_C_Factory"]
        assert "class X_C_Factory:" in source
        assert "def discover(cls):" in source
        assert "def clinit(that):" in source
        # The static initialiser of Figure 2/5: t = Z_O_Factory.make();
        # Z_O_Factory.init(t, Y_C_Factory.discover().get_K()); that.set_z(t)
        assert "t = Z_O_Factory.make()" in source
        assert "Z_O_Factory.init(t, Y_C_Factory.discover().get_K())" in source
        assert "that.set_z(t)" in source

    def test_discover_initialises_exactly_once(self, app):
        singleton = app.class_factory("X").discover()
        z_first = singleton.get_z()
        again = app.class_factory("X").discover()
        assert again.get_z() is z_first

    def test_clinit_uses_the_discovered_constant(self, app):
        """The Z built by clinit is seeded with Y.K (42)."""
        singleton = app.class_factory("X").discover()
        assert singleton.get_z().q(1) == 42

    def test_clinit_can_be_replayed_on_a_fresh_implementation(self, app):
        fresh = app.artifacts("X").class_local_cls()
        app.class_factory("X").clinit(fresh)
        assert fresh.p(2) == 84

    def test_y_class_factory_carries_the_constant(self, app):
        assert app.statics("Y").get_K() == 42


class TestFactoriesAreTheOnlyImplementationAwarePoints:
    def test_rewritten_code_contains_no_implementation_names(self, app):
        """Generated method bodies mention interfaces and factories only."""
        for class_name in ("X", "Y", "Z"):
            for member, source in app.artifacts(class_name).rewritten_sources.items():
                assert "_O_Local" not in source
                assert "_O_Proxy_" not in source

    def test_policy_switch_changes_only_factory_behaviour(self):
        """The same transformed code yields local or remote objects per policy."""
        classes = [sample_app.X, sample_app.Y, sample_app.Z]

        local_app = ApplicationTransformer(all_local_policy()).transform(classes)
        local_y = local_app.new("Y", 3)
        assert type(local_y).__name__ == "Y_O_Local"

        remote_app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(classes)
        remote_app.deploy(Cluster(("client", "server")), default_node="client")
        remote_y = remote_app.new("Y", 3)
        assert type(remote_y).__name__ == "Y_O_Proxy_RMI"

        # Both satisfy the same extracted interface and behave identically.
        assert local_y.n(4) == remote_y.n(4) == 7
