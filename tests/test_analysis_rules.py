"""Tests for the distribution-safety static analyzer (``repro.analysis``).

The per-rule cases are fixture-driven: each module under
``tests/lint_fixtures/`` marks its violating lines with ``# expect: DS1xx``
comments, and the tests here assert the engine reports *exactly* the marked
(rule, line) pairs — so a rule that over-fires on the fixture's clean
negatives fails the same test as one that under-fires on its positives.

The deploy-time half covers the acceptance scenario from the issue: a
service whose write method calls ``random.random()`` must be refused by
``with_replication(3, quorum="majority").with_static_checks()`` with a
:class:`PolicyError` naming DS101 and the offending ``path:line``.
"""

from __future__ import annotations

import re
import warnings
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st
from lint_fixtures.deploy_targets import (
    FlakyLedger,
    ImpureCatalog,
    InPlaceCatalog,
    SoundLedger,
)

from repro.analysis import (
    PARSE_ERROR_RULE,
    Finding,
    RuleEngine,
    SuppressionIndex,
    all_rules,
    default_engine,
    parse_suppression,
    policy_severity_overrides,
    verify_deployment,
)
from repro.api import ServicePolicy, Session
from repro.api.errors import PolicyError
from repro.runtime.cluster import Cluster

FIXTURE_DIR = Path(__file__).resolve().parent / "lint_fixtures"
EXPECT_MARKER = re.compile(r"#\s*expect:\s*(DS\d+)")

RULE_FIXTURES = {
    "DS101": "ds101_nondeterminism.py",
    "DS102": "ds102_cacheable_mutation.py",
    "DS103": "ds103_unserializable_signature.py",
    "DS104": "ds104_mutable_class_state.py",
    "DS105": "ds105_interceptor_hooks.py",
    "DS106": "ds106_deprecated_api.py",
    "DS107": "ds107_span_leaks.py",
}


def expected_markers(path: Path) -> set:
    hits = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for rule in EXPECT_MARKER.findall(line):
            hits.add((rule, lineno))
    return hits


class TestRuleFixtures:
    """Every fixture reports exactly its marked (rule, line) pairs."""

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_reports_exactly_the_marked_lines(self, rule_id):
        path = FIXTURE_DIR / RULE_FIXTURES[rule_id]
        expected = expected_markers(path)
        assert expected, f"fixture {path.name} has no # expect: markers"
        findings, checked = default_engine().run_paths([path])
        got = {(f.rule, f.line) for f in findings}
        assert got == expected
        assert checked == 1

    @pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
    def test_fixture_findings_all_carry_the_fixture_rule(self, rule_id):
        """A fixture exercises its own rule — no cross-rule bycatch."""
        path = FIXTURE_DIR / RULE_FIXTURES[rule_id]
        findings, _ = default_engine().run_paths([path])
        assert {f.rule for f in findings} == {rule_id}

    def test_findings_carry_locations_and_messages(self):
        path = FIXTURE_DIR / RULE_FIXTURES["DS101"]
        findings, _ = default_engine().run_paths([path])
        for finding in findings:
            assert finding.location == f"{path}:{finding.line}"
            assert finding.message
            assert finding.severity in ("warning", "error")

    def test_ds106_findings_suggest_the_replacement(self):
        path = FIXTURE_DIR / RULE_FIXTURES["DS106"]
        findings, _ = default_engine().run_paths([path])
        suggestions = [f.suggestion for f in findings if f.suggestion]
        assert any("repro.api.errors" in s for s in suggestions)
        assert any('quorum="majority"' in s for s in suggestions)


class TestEngineBehavior:
    def test_rule_ids_cover_the_documented_set(self):
        assert default_engine().rule_ids() == sorted(RULE_FIXTURES)

    def test_select_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            default_engine().select(["DS999"])

    def test_select_restricts_to_the_named_rules(self):
        path = FIXTURE_DIR / RULE_FIXTURES["DS101"]
        engine = default_engine().select(["DS102"])
        findings, _ = engine.run_paths([path])
        assert findings == []

    def test_parse_error_surfaces_as_ds000(self):
        findings = default_engine().run_source("def broken(:\n", path="bad.py")
        assert [f.rule for f in findings] == [PARSE_ERROR_RULE]
        assert findings[0].severity == "error"

    def test_missing_path_raises_not_skips(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            default_engine().run_paths([tmp_path / "nope.py"])

    def test_assume_service_lints_undecorated_classes(self):
        source = (
            "import time\n"
            "class Plain:\n"
            "    def write(self, v):\n"
            "        self.v = time.time()\n"
        )
        quiet = default_engine().run_source(source, path="p.py")
        assert quiet == []
        forced = default_engine().run_source(
            source, path="p.py", assume_service=True
        )
        assert [f.rule for f in forced] == ["DS101"]

    def test_every_rule_explains_itself(self):
        for rule in all_rules():
            text = rule.explain()
            assert rule.id in (rule.id,) and text.strip()

    def test_engine_accepts_an_explicit_rule_list(self):
        engine = RuleEngine(all_rules())
        path = FIXTURE_DIR / RULE_FIXTURES["DS104"]
        findings, _ = engine.run_paths([path])
        assert {f.rule for f in findings} == {"DS104"}


class TestSuppressions:
    def test_bare_ignore_silences_every_rule(self):
        source = (
            "import time\n"
            "from repro.core.interfaces import cacheable\n"
            "class Svc:\n"
            "    @cacheable\n"
            "    def reads(self):\n"
            "        return 1\n"
            "    def write(self):\n"
            "        self.t = time.time()  # repro: ignore\n"
        )
        assert default_engine().run_source(source, path="s.py") == []

    def test_ignore_on_its_own_line_extends_to_the_next(self):
        source = (
            "import time\n"
            "from repro.core.interfaces import cacheable\n"
            "class Svc:\n"
            "    @cacheable\n"
            "    def reads(self):\n"
            "        return 1\n"
            "    def write(self):\n"
            "        # repro: ignore[DS101]\n"
            "        self.t = time.time()\n"
        )
        assert default_engine().run_source(source, path="s.py") == []

    def test_mismatched_rule_id_does_not_suppress(self):
        source = (
            "import time\n"
            "from repro.core.interfaces import cacheable\n"
            "class Svc:\n"
            "    @cacheable\n"
            "    def reads(self):\n"
            "        return 1\n"
            "    def write(self):\n"
            "        self.t = time.time()  # repro: ignore[DS104]\n"
        )
        findings = default_engine().run_source(source, path="s.py")
        assert [f.rule for f in findings] == ["DS101"]

    @given(st.text(max_size=200))
    def test_parse_suppression_never_raises(self, line):
        parse_suppression(line)

    @given(st.text(max_size=500))
    def test_suppression_index_never_raises(self, source):
        index = SuppressionIndex(source)
        index.is_suppressed(1, "DS101")


class TestPolicyEscalation:
    def test_quorum_policies_escalate_ds101_to_error(self):
        policy = ServicePolicy().with_replication(3, quorum="majority")
        overrides = policy_severity_overrides(policy)
        assert overrides.get("DS101") == "error"

    def test_plain_replication_escalates_ds104(self):
        policy = ServicePolicy().with_replication(2, quorum=1)
        overrides = policy_severity_overrides(policy)
        assert overrides.get("DS104") == "error"
        assert "DS101" not in overrides

    def test_unreplicated_policy_adds_no_overrides(self):
        assert policy_severity_overrides(ServicePolicy()) == {}

    def test_verify_deployment_only_trips_on_errors(self):
        # Unreplicated: DS101 stays a warning, so the gate passes.
        assert verify_deployment(FlakyLedger, ServicePolicy()) == []
        # Quorum-replicated: the same finding is now an error.
        quorum = ServicePolicy().with_replication(3, quorum="majority")
        findings = verify_deployment(FlakyLedger, quorum)
        assert [f.rule for f in findings] == ["DS101"]
        assert findings[0].severity == "error"
        assert findings[0].path.endswith("deploy_targets.py")

    def test_verify_deployment_reports_real_source_lines(self):
        source_path = Path(__file__).parent / "lint_fixtures" / "deploy_targets.py"
        lines = source_path.read_text().splitlines()
        expected_line = next(
            i for i, text in enumerate(lines, start=1) if "random.random()" in text
        )
        quorum = ServicePolicy().with_replication(3, quorum="majority")
        (finding,) = verify_deployment(FlakyLedger, quorum)
        assert finding.line == expected_line


class TestDeployTimeGate:
    """The acceptance scenario: deploys are refused, not just warned about."""

    @pytest.fixture
    def cluster(self):
        return Cluster(("client", "p0", "p1", "p2"))

    def test_quorum_deploy_of_flaky_writer_is_refused(self, cluster):
        policy = (
            ServicePolicy(transport="rmi")
            .with_replication(3, quorum="majority")
            .with_static_checks()
        )
        with Session(cluster, node="client") as session:
            with pytest.raises(PolicyError) as excinfo:
                session.service("flaky", policy, impl=FlakyLedger(), node="p0")
        message = str(excinfo.value)
        assert "DS101" in message
        assert "FlakyLedger" in message
        line = next(
            i
            for i, text in enumerate(
                (FIXTURE_DIR / "deploy_targets.py").read_text().splitlines(), 1
            )
            if "random.random()" in text
        )
        assert f"deploy_targets.py:{line}" in message
        # Refused means refused: nothing was bound in the naming service.
        assert "flaky" not in cluster.naming

    def test_clean_service_deploys_under_the_same_policy(self, cluster):
        policy = (
            ServicePolicy(transport="rmi")
            .with_replication(3, quorum="majority")
            .with_static_checks()
        )
        with Session(cluster, node="client") as session:
            svc = session.service("sound", policy, impl=SoundLedger(), node="p0")
            assert svc.credit(5.0) == 5.0

    def test_flaky_writer_passes_unreplicated_with_checks_on(self, cluster):
        """DS101 is only a warning without a quorum policy, so the gate
        (which refuses on *errors*) lets the deploy through."""
        policy = ServicePolicy(transport="rmi").with_static_checks()
        with Session(cluster, node="client") as session:
            svc = session.service("flaky", policy, impl=FlakyLedger(), node="p0")
            assert svc.total() == 0.0

    def test_static_checks_require_a_deploying_session(self, cluster):
        policy = ServicePolicy().with_static_checks()
        with Session(cluster, node="client") as session:
            with pytest.raises(PolicyError, match="static_checks"):
                session.service("absent", policy)


class TestRuntimeCacheableComplement:
    """The runtime half of DS102: dispatched @cacheable calls that rebind
    state are counted and warned about once per (class, member)."""

    @pytest.fixture
    def cluster(self):
        return Cluster(("client", "server"))

    def _deploy(self, cluster, session, impl, name):
        return session.service(
            name, ServicePolicy(transport="rmi"), impl=impl, node="server"
        )

    def test_rebinding_cacheable_member_counts_and_warns_once(self, cluster):
        with Session(cluster, node="client") as session:
            svc = self._deploy(cluster, session, ImpureCatalog(), "catalog")
            svc.put_item("a", 1)
            space = cluster.space("server")
            assert space.cacheable_violations == 0
            with pytest.warns(RuntimeWarning, match="DS102"):
                svc.get_item("a")
            assert space.cacheable_violations == 1
            # Second offence is counted but not re-warned.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                svc.get_item("a")
            assert space.cacheable_violations == 2

    def test_in_place_mutation_is_the_documented_blind_spot(self, cluster):
        """The shallow identity snapshot cannot see list.append — the static
        rule (DS102) exists precisely to cover this case."""
        with Session(cluster, node="client") as session:
            svc = self._deploy(cluster, session, InPlaceCatalog(), "inplace")
            svc.put_item("a", 1)
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert svc.get_item("a") == 1
            assert cluster.space("server").cacheable_violations == 0

    def test_pure_cacheable_members_stay_clean(self, cluster):
        with Session(cluster, node="client") as session:
            svc = self._deploy(cluster, session, SoundLedger(), "ledger")
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                assert svc.total() == 0.0
            assert cluster.space("server").cacheable_violations == 0


class TestFindingModel:
    def test_to_dict_round_trips_the_row_shape(self):
        finding = Finding(
            rule="DS101",
            severity="warning",
            path="x.py",
            line=3,
            col=4,
            message="m",
            suggestion="s",
        )
        assert finding.to_dict() == {
            "rule": "DS101",
            "severity": "warning",
            "path": "x.py",
            "line": 3,
            "col": 4,
            "message": "m",
            "suggestion": "s",
        }
