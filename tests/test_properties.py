"""Property-based tests (hypothesis) for core invariants.

Covers the wire codecs (round-trip for arbitrary wire values), the
marshaller, the transformability analysis (monotonicity and partition
invariants), the policy loader (round-trip) and the simulated clock
(monotonicity).
"""

from __future__ import annotations

import sample_app
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.analyzer import TransformabilityAnalyzer
from repro.core.introspect import class_model_from_descriptor
from repro.core.transformer import ApplicationTransformer
from repro.network.clock import SimClock
from repro.policy.loader import policy_from_dict, policy_to_dict
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster
from repro.transports.corba import CorbaTransport
from repro.transports.inproc import InProcTransport
from repro.transports.rmi import RmiTransport
from repro.transports.soap import SoapTransport

# ---------------------------------------------------------------------------
# Wire values: what the marshaller may hand to a transport.
# ---------------------------------------------------------------------------

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

_wire_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(min_size=1, max_size=10), children, max_size=5),
    ),
    max_leaves=15,
)

_requests = st.fixed_dictionaries(
    {
        "target": st.text(min_size=1, max_size=20),
        "interface": st.text(min_size=1, max_size=20),
        "member": st.text(min_size=1, max_size=20),
        "args": st.lists(_wire_values, max_size=4),
        "kwargs": st.dictionaries(st.text(min_size=1, max_size=8), _wire_values, max_size=3),
    }
)

_TRANSPORTS = [SoapTransport(), RmiTransport(), CorbaTransport(), InProcTransport()]


class TestTransportRoundTripProperties:
    @given(request=_requests)
    @settings(max_examples=60, deadline=None)
    def test_every_transport_round_trips_any_request(self, request):
        for transport in _TRANSPORTS:
            decoded = transport.decode_request(transport.encode_request(request))
            assert decoded["member"] == request["member"]
            assert list(decoded["args"]) == list(request["args"])
            assert decoded["kwargs"] == request["kwargs"]

    @given(result=_wire_values)
    @settings(max_examples=60, deadline=None)
    def test_every_transport_round_trips_any_result(self, result):
        for transport in _TRANSPORTS:
            decoded = transport.decode_response(transport.encode_response({"result": result}))
            assert decoded["result"] == result

    @given(request=_requests)
    @settings(max_examples=30, deadline=None)
    def test_soap_is_never_smaller_than_rmi(self, request):
        soap = len(SoapTransport().encode_request(request))
        rmi = len(RmiTransport().encode_request(request))
        assert soap >= rmi


# ---------------------------------------------------------------------------
# Marshalling of application values through a deployed application.
# ---------------------------------------------------------------------------

_marshal_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**31), max_value=2**31),
        st.text(max_size=30),
        st.binary(max_size=30),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(min_size=1, max_size=6), children, max_size=4),
    ),
    max_leaves=10,
)


class TestMarshallerProperties:
    @given(value=_marshal_values)
    @settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_marshalling_round_trips_plain_values(self, value):
        cluster = Cluster(("a", "b"))
        marshaller = cluster.space("a").marshaller
        assert marshaller.from_wire(marshaller.to_wire(value)) == value

    @given(base=st.integers(min_value=-100, max_value=100))
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_remote_calls_preserve_argument_values(self, base):
        app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        app.deploy(Cluster(("client", "server")), default_node="client")
        y = app.new("Y", base)
        assert y.n(base) == base + base


# ---------------------------------------------------------------------------
# Analysis invariants over random synthetic universes.
# ---------------------------------------------------------------------------

@st.composite
def _universes(draw):
    count = draw(st.integers(min_value=2, max_value=25))
    names = [f"C{i}" for i in range(count)]
    models = []
    for index, name in enumerate(names):
        has_native = draw(st.booleans()) and draw(st.integers(0, 3)) == 0
        references = draw(
            st.lists(st.sampled_from(names), max_size=3).map(
                lambda refs: [r for r in refs if r != name]
            )
        )
        superclass = None
        if index > 0 and draw(st.booleans()):
            superclass = draw(st.sampled_from(names[:index]))
        models.append(
            class_model_from_descriptor(
                name,
                superclass=superclass,
                native_methods=["jni"] if has_native else [],
                references=references,
            )
        )
    return models


class TestAnalysisProperties:
    @given(models=_universes())
    @settings(max_examples=40, deadline=None)
    def test_transformable_and_non_transformable_partition_the_universe(self, models):
        result = TransformabilityAnalyzer(models).analyse()
        names = {model.name for model in models}
        non_transformable_in_universe = set(result.non_transformable) & names
        assert result.transformable | non_transformable_in_universe == names
        assert result.transformable.isdisjoint(non_transformable_in_universe)

    @given(models=_universes())
    @settings(max_examples=40, deadline=None)
    def test_native_classes_are_never_transformable(self, models):
        result = TransformabilityAnalyzer(models).analyse()
        for model in models:
            if model.has_native_methods:
                assert not result.is_transformable(model.name)

    @given(models=_universes())
    @settings(max_examples=40, deadline=None)
    def test_closure_is_consistent(self, models):
        """Every class referenced by a non-transformable class is non-transformable."""
        result = TransformabilityAnalyzer(models).analyse()
        index = {model.name: model for model in models}
        for name in set(result.non_transformable) & set(index):
            for referenced in index[name].referenced_class_names():
                assert not result.is_transformable(referenced)

    @given(models=_universes())
    @settings(max_examples=30, deadline=None)
    def test_excluding_classes_never_increases_the_transformable_set(self, models):
        baseline = TransformabilityAnalyzer(models).analyse()
        excluded = {models[0].name}
        restricted = TransformabilityAnalyzer(models, excluded=excluded).analyse()
        assert restricted.transformable <= baseline.transformable


# ---------------------------------------------------------------------------
# Policy round-trips and clock monotonicity.
# ---------------------------------------------------------------------------

_node_names = st.text(alphabet="abcdefgh", min_size=1, max_size=6)


class TestPolicyProperties:
    @given(
        placements=st.dictionaries(
            st.text(alphabet="ABCDEFG", min_size=1, max_size=5), _node_names, max_size=5
        ),
        transport=st.sampled_from(["soap", "rmi", "corba"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_policy_round_trips_through_dict_form(self, placements, transport):
        policy = place_classes_on(placements, transport=transport)
        rebuilt = policy_from_dict(policy_to_dict(policy))
        for class_name in placements:
            assert rebuilt.instance_decision(class_name) == policy.instance_decision(class_name)

    @given(class_name=st.text(min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None)
    def test_default_policy_is_total(self, class_name):
        policy = all_local_policy()
        assert policy.for_class(class_name) is not None
        assert not policy.instance_decision(class_name).is_remote


class TestClockProperties:
    @given(steps=st.lists(st.floats(min_value=-1.0, max_value=1.0, allow_nan=False), max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_clock_never_goes_backwards(self, steps):
        clock = SimClock()
        previous = clock.now
        for step in steps:
            clock.advance(step)
            assert clock.now >= previous
            previous = clock.now
