"""Unit tests for rule-based policies and policy (de)serialisation."""

from __future__ import annotations

import json

import pytest

from repro.errors import PolicyError
from repro.policy.loader import (
    policy_from_dict,
    policy_from_file,
    policy_from_json,
    policy_to_dict,
)
from repro.policy.policy import PlacementDecision, local, remote
from repro.policy.rules import (
    Rule,
    RuleBasedPolicy,
    always,
    name_in,
    name_is,
    name_matches,
    name_regex,
)


class TestPredicates:
    def test_name_is(self):
        assert name_is("Cache")("Cache")
        assert not name_is("Cache")("CacheClient")

    def test_name_in(self):
        predicate = name_in(["A", "B"])
        assert predicate("A") and predicate("B") and not predicate("C")

    def test_name_matches_glob(self):
        assert name_matches("*Service")("OrderService")
        assert not name_matches("*Service")("ServiceOrder")

    def test_name_regex(self):
        assert name_regex(r"^Order")("OrderStore")
        assert not name_regex(r"^Order")("StoreOrder")

    def test_always(self):
        assert always()("anything")


class TestRuleBasedPolicy:
    def _policy(self) -> RuleBasedPolicy:
        policy = RuleBasedPolicy()
        policy.place_matching("*Service", remote("server"), description="services on server")
        policy.exclude_matching("Legacy*")
        return policy

    def test_first_matching_rule_wins(self):
        policy = RuleBasedPolicy(
            rules=[
                Rule(name_matches("Cache*"), remote("fast")),
                Rule(always(), remote("slow")),
            ]
        )
        assert policy.instance_decision("CacheIndex").node_id == "fast"
        assert policy.instance_decision("Other").node_id == "slow"

    def test_rules_supply_decisions(self):
        policy = self._policy()
        assert policy.instance_decision("OrderService").is_remote
        assert not policy.is_substitutable("LegacyAdapter")
        assert not policy.instance_decision("Unmatched").is_remote

    def test_statics_default_to_instance_decision(self):
        policy = RuleBasedPolicy([Rule(always(), remote("server"))])
        assert policy.static_decision("Anything").node_id == "server"

    def test_explicit_entries_override_rules(self):
        policy = self._policy()
        policy.set_class("OrderService", instances=local())
        assert not policy.instance_decision("OrderService").is_remote

    def test_matching_rule_and_explain(self):
        policy = self._policy()
        assert policy.matching_rule("OrderService").description == "services on server"
        assert "rule" in policy.explain("OrderService")
        assert "default" in policy.explain("Unmatched")
        policy.set_class("Explicit", instances=local())
        assert "explicit" in policy.explain("Explicit")

    def test_rules_listing(self):
        assert len(self._policy().rules()) == 2


class TestPolicyLoader:
    CONFIG = {
        "default": {"placement": "local", "dynamic": False},
        "classes": {
            "Cache": {
                "placement": "remote",
                "node": "server",
                "transport": "soap",
                "dynamic": True,
            },
            "OrderStore": {
                "placement": "remote",
                "node": "warehouse",
                "statics": {"placement": "local"},
            },
            "SessionState": {"substitutable": False},
        },
    }

    def test_policy_from_dict(self):
        policy = policy_from_dict(self.CONFIG)
        cache = policy.for_class("Cache")
        assert cache.instances == PlacementDecision("remote", "server", "soap", True)
        assert policy.static_decision("OrderStore").kind == "local"
        assert not policy.is_substitutable("SessionState")
        assert not policy.instance_decision("Unlisted").is_remote

    def test_policy_from_json_and_file(self, tmp_path):
        text = json.dumps(self.CONFIG)
        assert policy_from_json(text).instance_decision("Cache").node_id == "server"
        path = tmp_path / "policy.json"
        path.write_text(text, encoding="utf-8")
        assert policy_from_file(path).instance_decision("Cache").node_id == "server"

    def test_round_trip_through_dict_form(self):
        policy = policy_from_dict(self.CONFIG)
        rebuilt = policy_from_dict(policy_to_dict(policy))
        assert rebuilt.instance_decision("Cache") == policy.instance_decision("Cache")
        assert rebuilt.static_decision("OrderStore") == policy.static_decision("OrderStore")
        assert rebuilt.is_substitutable("SessionState") == policy.is_substitutable("SessionState")

    def test_remote_without_node_is_invalid(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"classes": {"Cache": {"placement": "remote"}}})

    def test_unknown_placement_is_invalid(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"classes": {"Cache": {"placement": "everywhere"}}})

    def test_malformed_documents_are_rejected(self):
        with pytest.raises(PolicyError):
            policy_from_json("not json at all {{")
        with pytest.raises(PolicyError):
            policy_from_dict({"classes": ["not", "a", "mapping"]})
        with pytest.raises(PolicyError):
            policy_from_dict("nope")  # type: ignore[arg-type]

    def test_missing_file_is_reported(self, tmp_path):
        with pytest.raises(PolicyError):
            policy_from_file(tmp_path / "missing.json")
