"""Property: span accounting is conserved, whatever faults a run injects.

Hypothesis drives the façade through randomized combinations of batching,
pipelining, sampling, dropped messages, a crashed primary mid-stream and
throttled retries.  However the run ends — every call served, some
shed, some failed terminally — the tracer's books must balance:

* every span opened was closed exactly once (no leaks, no double ends);
* every child span lies inside its parent's interval;
* every settled trace's critical-path phases sum *exactly* (integer
  nanoseconds) to its root span's duration.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ServicePolicy, Session
from repro.api.middleware import RateLimitInterceptor
from repro.observability import critical_path
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import RetryPolicy
from repro.workloads.bulk_orders import OrderIntake


def _drop_first(failures, count: int) -> None:
    """Deterministically drop the first ``count`` messages, then heal."""
    remaining = {"n": count}

    def should_drop(source, destination):
        if remaining["n"] > 0:
            remaining["n"] -= 1
            return True
        return False

    failures.should_drop = should_drop


@given(
    n_calls=st.integers(min_value=8, max_value=20),
    batch_window=st.sampled_from([1, 2, 4]),
    pipeline_depth=st.sampled_from([1, 2]),
    sample_rate=st.sampled_from([0.5, 1.0]),
    drops=st.integers(min_value=0, max_value=3),
    kill_primary=st.booleans(),
    throttle=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_span_accounting_survives_fault_injection(
    n_calls, batch_window, pipeline_depth, sample_rate, drops, kill_primary, throttle
):
    cluster = Cluster(("client", "server", "spare"))
    if drops:
        _drop_first(cluster.network.failures, drops)
    with Session(cluster, node="client") as session:
        policy = (
            ServicePolicy(
                transport="rmi",
                batch_window=batch_window,
                pipeline_depth=pipeline_depth,
            )
            .with_retry(RetryPolicy(max_attempts=8, initial_backoff=0.005))
            .with_tracing(sample_rate)
        )
        if throttle:
            policy = policy.with_middleware(
                RateLimitInterceptor(rate=500.0, burst=4, retryable=True)
            )
        backup_nodes = None
        if kill_primary:
            policy = policy.with_replication(2, readonly=("accepted_count",))
            backup_nodes = ["spare"]
        svc = session.service(
            "orders", policy, impl=OrderIntake(), node="server",
            backup_nodes=backup_nodes,
        )
        for i in range(n_calls):
            if kill_primary and i == n_calls // 2:
                cluster.network.failures.crash_node("server")
            try:
                svc.future.submit(f"sku-{i}", 1, 10.0)
            except Exception:  # noqa: BLE001 - terminal failures are a valid outcome
                pass
        # A sync batch flush re-raises terminal errors through drain (after
        # failing that window's futures) — a valid outcome here, so keep
        # draining until the session has nothing left in flight.
        for _ in range(n_calls):
            try:
                session.drain()
                break
            except Exception:  # noqa: BLE001 - the next drain picks up the rest
                continue
        tracer = session.tracer()
        collector = tracer.collector

    # Conservation: opened == ended == collected, and nothing is left open.
    assert tracer.open_count == 0
    assert tracer.spans_started == tracer.spans_ended == len(collector)
    assert collector.open_spans() == []

    for trace_id in collector.trace_ids():
        spans = collector.spans(trace_id)
        root = collector.root(trace_id)
        assert root is not None and root.closed

        # Structure: children never escape their parent's interval.
        for span in spans:
            assert span.closed
            assert span.start <= span.end
            if span.parent_id is None:
                continue
            parent = collector.find(trace_id, span.parent_id)
            assert parent is not None
            assert parent.start <= span.start
            assert span.end <= parent.end

        # Attribution: the phase decomposition is exact, always.
        path = critical_path(spans, root)
        assert sum(path.phases_ns.values()) == path.duration_ns
        assert path.duration_ns >= 0
