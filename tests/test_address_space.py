"""Unit tests for address spaces, marshalling and the cluster bundle."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import (
    RemoteInvocationError,
    SerializationError,
    UnknownObjectError,
)
from repro.policy.policy import place_classes_on
from repro.runtime.cluster import Cluster, default_transport_registry, lan_cluster, single_node_cluster
from repro.runtime.remote_ref import RemoteRef

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


@pytest.fixture
def deployed():
    app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(CLASSES)
    cluster = Cluster(("client", "server"))
    app.deploy(cluster, default_node="client")
    return app, cluster


class TestExportAndLookup:
    def test_export_assigns_reference_and_registers_object(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        implementation = app.new_local("Y", 1)
        reference = server.export(implementation)
        assert reference.node_id == "server"
        assert reference.interface_name == "Y_O_Int"
        assert server.lookup_local_object(reference.object_id) is implementation

    def test_export_is_idempotent_per_object(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        implementation = app.new_local("Y", 1)
        assert server.export(implementation) == server.export(implementation)
        assert server.object_count() == 1

    def test_export_plain_object_uses_type_name(self, deployed):
        _, cluster = deployed
        reference = cluster.space("server").export(["plain"], interface_name=None)
        assert reference.interface_name == "list"

    def test_unexport_removes_object(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        implementation = app.new_local("Y", 1)
        reference = server.export(implementation)
        server.unexport(reference)
        with pytest.raises(UnknownObjectError):
            server.lookup_local_object(reference.object_id)
        assert not server.is_exported(implementation)

    def test_reference_for_exported_object(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        implementation = app.new_local("Y", 1)
        reference = server.export(implementation)
        assert server.reference_for(implementation) == reference
        assert server.reference_for(object()) is None


class TestRemoteInvocation:
    def test_invoke_remote_round_trip(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        client = cluster.space("client")
        implementation = app.new_local("Y", 10)
        reference = server.export(implementation)
        assert client.invoke_remote(reference, "n", (5,)) == 15
        assert server.invocations_served == 1
        assert client.invocations_sent == 1

    def test_local_reference_short_circuits(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        implementation = app.new_local("Y", 10)
        reference = server.export(implementation)
        before = cluster.metrics.total_messages
        assert server.invoke_remote(reference, "n", (1,)) == 11
        assert cluster.metrics.total_messages == before

    def test_application_errors_travel_back(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        client = cluster.space("client")
        implementation = app.new_local("Y", None)  # base None makes n() fail
        reference = server.export(implementation)
        with pytest.raises(RemoteInvocationError) as excinfo:
            client.invoke_remote(reference, "n", (1,))
        assert excinfo.value.remote_type == "TypeError"

    def test_unknown_member_is_reported(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        client = cluster.space("client")
        reference = server.export(app.new_local("Y", 1))
        with pytest.raises(RemoteInvocationError):
            client.invoke_remote(reference, "no_such_member", ())

    def test_unknown_object_is_reported(self, deployed):
        _, cluster = deployed
        client = cluster.space("client")
        bogus = RemoteRef("server:999", "server", "Y_O_Int")
        with pytest.raises(RemoteInvocationError):
            client.invoke_remote(bogus, "n", (1,))

    def test_each_transport_can_carry_the_call(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        client = cluster.space("client")
        reference = server.export(app.new_local("Y", 3))
        for transport in ("soap", "rmi", "corba", "inproc"):
            assert client.invoke_remote(reference, "n", (4,), transport=transport) == 7


class TestMarshalling:
    def test_primitives_and_containers_round_trip(self, deployed):
        _, cluster = deployed
        marshaller = cluster.space("client").marshaller
        for value in (None, 1, 2.5, True, "text", [1, [2, 3]], (4, 5), {"k": "v"}, {1, 2}, b"raw"):
            assert marshaller.from_wire(marshaller.to_wire(value)) == value

    def test_transformed_objects_pass_by_reference(self, deployed):
        app, cluster = deployed
        client = cluster.space("client")
        implementation = app.new_local("Y", 6)
        wire = client.marshaller.to_wire(implementation)
        assert wire["__kind__"] == "ref"
        assert wire["node_id"] == "client"
        # Unmarshalling on the same node returns the very same object.
        assert client.marshaller.from_wire(wire) is implementation

    def test_unmarshalling_foreign_reference_builds_a_proxy(self, deployed):
        app, cluster = deployed
        server = cluster.space("server")
        client = cluster.space("client")
        reference = server.export(app.new_local("Y", 6))
        resolved = client.marshaller.from_wire(reference.to_wire())
        assert type(resolved).__name__ == "Y_O_Proxy_RMI"
        assert resolved.n(1) == 7

    def test_proxy_arguments_reuse_their_reference(self, deployed):
        app, cluster = deployed
        client = cluster.space("client")
        remote_y = app.new("Y", 2)  # proxy to server
        wire = client.marshaller.to_wire(remote_y)
        assert wire["node_id"] == "server"

    def test_unmarshallable_values_are_rejected(self, deployed):
        _, cluster = deployed
        marshaller = cluster.space("client").marshaller
        with pytest.raises(SerializationError):
            marshaller.to_wire(object())
        with pytest.raises(SerializationError):
            marshaller.to_wire({1: "non-string key"})

    def test_unknown_wire_kind_rejected(self, deployed):
        _, cluster = deployed
        marshaller = cluster.space("client").marshaller
        with pytest.raises(SerializationError):
            marshaller.from_wire({"__kind__": "alien"})


class TestCluster:
    def test_cluster_creates_connected_spaces(self):
        cluster = Cluster(("a", "b", "c"))
        assert set(cluster.node_ids()) == {"a", "b", "c"}
        assert len(cluster) == 3
        assert "a" in cluster
        assert cluster.default_node_id == "a"

    def test_single_node_and_lan_helpers(self):
        assert single_node_cluster().node_ids() == ["local"]
        assert len(lan_cluster(4)) == 4

    def test_unknown_node_lookup(self):
        with pytest.raises(KeyError):
            Cluster(("a",)).space("z")

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            Cluster(())

    def test_add_and_remove_node(self):
        cluster = Cluster(("a",))
        cluster.add_node("b")
        assert "b" in cluster
        with pytest.raises(ValueError):
            cluster.add_node("b")
        cluster.remove_node("b")
        assert "b" not in cluster

    def test_default_registry_contains_all_transports(self):
        assert default_transport_registry().names() == {"soap", "rmi", "corba", "inproc"}

    def test_shutdown_detaches_spaces(self):
        cluster = Cluster(("a", "b"))
        cluster.shutdown()
        assert len(cluster) == 0
