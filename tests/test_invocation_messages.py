"""Regression tests for the invocation message types.

Covers the error-response asymmetry fix — ``InvocationResponse.from_dict``
must tolerate missing ``"error"`` keys and reject malformed payloads with a
typed :class:`~repro.errors.TransportError` instead of ``KeyError`` /
``AttributeError`` — plus the dictionary forms of the batch messages.
"""

from __future__ import annotations

import pytest

from repro.errors import TransportError
from repro.runtime.invocation import (
    InvocationBatch,
    InvocationBatchResponse,
    InvocationRequest,
    InvocationResponse,
)


class TestResponseFromDict:
    def test_success_payload(self):
        response = InvocationResponse.from_dict({"result": 5})
        assert not response.is_error
        assert response.result == 5

    def test_missing_error_and_result_keys_is_a_none_result(self):
        response = InvocationResponse.from_dict({})
        assert not response.is_error
        assert response.result is None

    def test_error_none_means_success(self):
        response = InvocationResponse.from_dict({"error": None, "result": 3})
        assert not response.is_error
        assert response.result == 3

    def test_error_payload(self):
        response = InvocationResponse.from_dict(
            {"error": {"type": "KeyError", "message": "missing"}}
        )
        assert response.is_error
        assert response.error_type == "KeyError"
        assert response.error_message == "missing"

    def test_error_with_missing_fields_gets_defaults(self):
        response = InvocationResponse.from_dict({"error": {}})
        assert response.is_error
        assert response.error_type == "Exception"
        assert response.error_message == ""

    @pytest.mark.parametrize("payload", [None, [], "oops", 7, {"result": 1, "x": 2}.keys()])
    def test_non_dict_payload_raises_typed_error(self, payload):
        with pytest.raises(TransportError):
            InvocationResponse.from_dict(payload)

    @pytest.mark.parametrize("error", ["boom", 13, ["type", "message"], True])
    def test_non_dict_error_raises_typed_error(self, error):
        with pytest.raises(TransportError):
            InvocationResponse.from_dict({"error": error})

    def test_round_trip_through_dict_form(self):
        for response in (
            InvocationResponse.for_result([1, 2]),
            InvocationResponse.for_exception(ValueError("bad")),
        ):
            again = InvocationResponse.from_dict(response.to_dict())
            assert again.is_error == response.is_error
            assert again.result == response.result
            assert again.error_type == response.error_type


class TestBatchMessages:
    def _requests(self, count=3):
        return [
            InvocationRequest(f"server:{i}", "I", "m", [i], {"k": i})
            for i in range(count)
        ]

    def test_batch_dict_round_trip(self):
        batch = InvocationBatch(self._requests())
        again = InvocationBatch.from_dicts(batch.to_dicts())
        assert len(again) == 3
        assert [r.target_id for r in again] == ["server:0", "server:1", "server:2"]
        assert [r.args for r in again] == [[0], [1], [2]]

    def test_batch_response_dict_round_trip_and_error_count(self):
        responses = InvocationBatchResponse(
            [
                InvocationResponse.for_result(1),
                InvocationResponse.for_exception(KeyError("x")),
            ]
        )
        again = InvocationBatchResponse.from_dicts(responses.to_dicts())
        assert len(again) == 2
        assert again.error_count == 1
        assert not again.responses[0].is_error
        assert again.responses[1].error_type == "KeyError"

    @pytest.mark.parametrize("payload", [None, {}, "not-a-list", 4])
    def test_batch_from_non_list_raises_typed_error(self, payload):
        with pytest.raises(TransportError):
            InvocationBatch.from_dicts(payload)
        with pytest.raises(TransportError):
            InvocationBatchResponse.from_dicts(payload)

    def test_batch_response_with_malformed_item_raises_typed_error(self):
        with pytest.raises(TransportError):
            InvocationBatchResponse.from_dicts([{"error": "not-a-dict"}])
