"""The capacity-accurate load model: pools, percentiles, saturation.

Four claims are pinned here:

* **Bounded service pools behave like real servers** — ``workers`` requests
  serve concurrently, the next ``queue_limit`` wait, the rest are refused
  with a typed :class:`~repro.errors.AdmissionError` that the retry
  machinery treats as transient.
* **The open-loop saturation matrix** — offered load below, at and above
  capacity yields goodput that tracks the offered load, then plateaus at
  capacity while p99 latency grows monotonically; rejected-then-retried
  calls still execute exactly once.
* **A destination dying while a request waits in its admission queue fails
  the request** instead of executing it on a dead node (the queued sibling
  of the in-flight-death rule).
* **Capacity modelling is free when uncontended** — the existing benchmark
  scenarios (batching, pipelining, replication, caching) keep their gated
  speedups with FIFO link queueing enabled at default settings, and a
  purely synchronous run is bit-identical with queueing on or off.
"""

from __future__ import annotations

import pytest

from repro.errors import AdmissionError, NodeUnreachableError
from repro.network.failures import FailureModel
from repro.network.metrics import LatencyHistogram
from repro.network.simnet import ServicePool, SimulatedNetwork
from repro.policy.adaptive import AdaptiveDistributionManager
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import NO_RETRY, RetryPolicy, TRANSIENT_FAILURES
from repro.workloads.open_loop import (
    KeyValueCatalog,
    detect_knee,
    run_open_loop_scenario,
    zipf_weights,
)

#: The saturation matrix's server bound: 1 worker x 5 ms = 200 req/s.
WORKERS = 1
SERVICE_TIME = 0.005
CAPACITY = WORKERS / SERVICE_TIME


def _scenario(cluster: Cluster, offered: float, **overrides) -> dict:
    defaults = dict(
        offered_load=offered,
        duration=1.0,
        workers=WORKERS,
        queue_limit=16,
        service_time=SERVICE_TIME,
    )
    defaults.update(overrides)
    return run_open_loop_scenario(cluster, **defaults)


class TestServicePool:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServicePool(workers=0)
        with pytest.raises(ValueError):
            ServicePool(queue_limit=-1)
        with pytest.raises(ValueError):
            ServicePool(service_time=-0.1)

    def test_capacity_is_workers_over_service_time(self):
        assert ServicePool(workers=4, service_time=0.002).capacity == 2000.0
        assert ServicePool(workers=1, service_time=0.0).capacity == float("inf")

    def test_free_worker_starts_immediately(self):
        pool = ServicePool(workers=2, queue_limit=0, service_time=1.0)
        assert pool.admit(5.0) == 5.0
        assert pool.admit(5.0) == 5.0
        assert pool.queue_depth == 0

    def test_busy_workers_queue_fifo(self):
        pool = ServicePool(workers=1, queue_limit=2, service_time=1.0)
        assert pool.admit(0.0) == 0.0
        assert pool.admit(0.0) == 1.0  # waits for the first to finish
        assert pool.admit(0.0) == 2.0  # waits for the second
        assert pool.queue_depth == 2
        assert pool.max_queue_depth == 2
        assert pool.total_queue_delay == pytest.approx(3.0)

    def test_full_queue_rejects_with_admission_error(self):
        pool = ServicePool(workers=1, queue_limit=1, service_time=1.0)
        pool.admit(0.0)
        pool.admit(0.0)
        with pytest.raises(AdmissionError):
            pool.admit(0.0)
        assert pool.rejected == 1
        assert pool.admitted == 2

    def test_begin_service_releases_queue_slot(self):
        pool = ServicePool(workers=1, queue_limit=1, service_time=1.0)
        pool.admit(0.0)
        pool.admit(0.0)
        pool.begin_service(queued=False)
        pool.begin_service(queued=True)
        assert pool.queue_depth == 0
        assert pool.served == 2

    def test_snapshot_is_plain_data(self):
        pool = ServicePool(workers=2, queue_limit=4, service_time=0.5)
        pool.admit(0.0)
        snapshot = pool.snapshot()
        assert snapshot["workers"] == 2
        assert snapshot["admitted"] == 1
        assert snapshot["rejected"] == 0


class TestLatencyHistogram:
    def test_percentiles_track_known_distribution(self):
        histogram = LatencyHistogram()
        for millisecond in range(1, 1001):
            histogram.record(millisecond / 1000.0)
        assert histogram.count == 1000
        assert histogram.percentile(0.50) == pytest.approx(0.5, rel=0.05)
        assert histogram.percentile(0.99) == pytest.approx(0.99, rel=0.05)
        assert histogram.percentile(0.999) == pytest.approx(1.0, rel=0.05)
        assert histogram.mean == pytest.approx(0.5005)

    def test_percentile_clamped_to_observed_extremes(self):
        histogram = LatencyHistogram()
        histogram.record(0.25)
        assert histogram.percentile(0.5) == 0.25
        assert histogram.percentile(1.0) == 0.25
        assert histogram.max_value == 0.25

    def test_empty_and_invalid(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(0.99) == 0.0
        assert histogram.summary()["count"] == 0
        with pytest.raises(ValueError):
            histogram.percentile(0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(resolution=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    def test_negative_samples_clamp_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.min_value == 0.0
        assert histogram.percentile(0.5) == 0.0


class TestSaturationMatrix:
    @pytest.fixture(scope="class")
    def matrix(self):
        points = []
        for factor in (0.5, 1.0, 2.5):
            cluster = Cluster(("client", "server"))
            points.append(_scenario(cluster, factor * CAPACITY))
        return points

    def test_below_capacity_goodput_tracks_offered_load(self, matrix):
        below = matrix[0]
        assert below["goodput"] >= 0.95 * below["measured_offered"]
        assert below["rejected"] == 0

    def test_above_capacity_goodput_plateaus(self, matrix):
        above = matrix[-1]
        assert above["goodput"] <= CAPACITY * 1.05
        assert above["rejected"] > 0

    def test_p99_grows_monotonically_with_offered_load(self, matrix):
        p99s = [point["latency"]["p99"] for point in matrix]
        assert p99s == sorted(p99s)
        assert p99s[-1] > p99s[0]

    def test_retried_calls_complete_exactly_once(self, matrix):
        # Every completed call executed on the server exactly once — admission
        # rejections never executed, retried-then-admitted calls only once.
        for point in matrix:
            assert point["server_executions"] == point["completed"]
        assert matrix[-1]["calls_retried"] > 0

    def test_knee_sits_between_half_and_saturated(self, matrix):
        knee = detect_knee(matrix)
        assert knee is not None
        assert knee["offered_load"] > matrix[0]["offered_load"]
        assert knee["efficiency"] < 0.95

    def test_queueing_visible_in_pool_and_histogram(self, matrix):
        saturated = matrix[-1]
        assert saturated["pool"]["max_queue_depth"] > 0
        latency = saturated["latency"]
        assert latency["p999"] >= latency["p99"] >= latency["p50"] > 0.0


class TestOpenLoopGenerator:
    def test_zipf_weights_skew_and_validate(self):
        weights = zipf_weights(4, 1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]
        assert zipf_weights(3, 0.0) == [1.0, 1.0, 1.0]
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(4, -1.0)

    def test_catalog_counts_lookups(self):
        catalog = KeyValueCatalog(keys=2)
        assert catalog.lookup("key-1") == 1
        assert catalog.lookup("ghost") == -1
        assert catalog.lookups == 2
        with pytest.raises(ValueError):
            KeyValueCatalog(keys=0)

    def test_scenario_validates_inputs(self):
        cluster = Cluster(("client", "server"))
        with pytest.raises(ValueError):
            run_open_loop_scenario(cluster, offered_load=0.0)
        with pytest.raises(ValueError):
            run_open_loop_scenario(cluster, duration=0.0)
        with pytest.raises(ValueError):
            run_open_loop_scenario(cluster, diurnal_amplitude=1.5)

    def test_diurnal_ramp_changes_the_arrival_pattern(self):
        flat = _scenario(Cluster(("client", "server")), 100.0, duration=0.5)
        ramped = _scenario(
            Cluster(("client", "server")), 100.0, duration=0.5, diurnal_amplitude=0.9
        )
        assert ramped["arrivals"] > 0
        assert ramped["arrivals"] != flat["arrivals"]

    def test_without_retries_rejections_are_shed(self):
        outcome = _scenario(
            Cluster(("client", "server")),
            3.0 * CAPACITY,
            duration=0.5,
            retry_policy=NO_RETRY,
        )
        assert outcome["calls_retried"] == 0
        assert outcome["rejected"] > 0
        assert outcome["server_executions"] == outcome["completed"]

    def test_clients_are_multiplexed_over_one_session(self):
        outcome = _scenario(
            Cluster(("client", "server")), 0.5 * CAPACITY, clients=1_000_000
        )
        assert 1 < outcome["distinct_clients"] <= outcome["arrivals"]


class TestAdmissionControl:
    def test_admission_error_is_transient(self):
        assert AdmissionError in TRANSIENT_FAILURES
        policy = RetryPolicy(max_attempts=3, initial_backoff=0.001)
        assert policy.should_retry(AdmissionError("full"), attempt=1)
        assert not NO_RETRY.should_retry(AdmissionError("full"), attempt=1)

    def test_saturated_pool_rejects_posted_messages(self):
        network = SimulatedNetwork()
        network.register("client", lambda source, payload: b"")
        network.register("server", lambda source, payload: b"pong")
        network.set_service_pool(
            "server", ServicePool(workers=1, queue_limit=1, service_time=0.1)
        )
        outcomes: list = []
        for _ in range(3):
            network.post(
                "client",
                "server",
                b"ping",
                on_response=lambda response: outcomes.append("ok"),
                on_error=lambda error: outcomes.append(error),
            )
        network.events.run_until_idle()
        rejections = [item for item in outcomes if isinstance(item, AdmissionError)]
        assert outcomes.count("ok") == 2
        assert len(rejections) == 1

    def test_saturated_pool_rejects_synchronous_sends(self):
        network = SimulatedNetwork()
        network.register("client", lambda source, payload: b"")
        network.register("server", lambda source, payload: b"pong")
        pool = ServicePool(workers=1, queue_limit=0, service_time=10.0)
        network.set_service_pool("server", pool)
        pool.admit(network.clock.now)  # occupy the only worker
        with pytest.raises(AdmissionError):
            network.send_request("client", "server", b"ping")

    def test_pool_installs_through_the_address_space(self):
        cluster = Cluster(("client", "server"))
        pool = cluster.set_service_pool("server", workers=3, service_time=0.001)
        space = cluster.space("server")
        assert space.service_pool is pool
        space.install_service_pool(None)
        assert space.service_pool is None
        with pytest.raises(KeyError):
            cluster.set_service_pool("ghost")


class TestQueuedDeath:
    def test_destination_dying_while_queued_fails_the_message(self):
        failures = FailureModel()
        network = SimulatedNetwork(failures=failures)
        executed: list = []
        network.register("client", lambda source, payload: b"")
        network.register(
            "server", lambda source, payload: executed.append(payload) or b"pong"
        )
        network.set_service_pool(
            "server", ServicePool(workers=1, queue_limit=4, service_time=0.01)
        )
        results: list = []
        for name in (b"first", b"second"):
            network.post(
                "client",
                "server",
                name,
                on_response=lambda response: results.append(response),
                on_error=lambda error: results.append(error),
            )
        # The first request is in service when the crash lands; the second is
        # still waiting in the admission queue and must fail, not execute.
        network.events.schedule_at(0.002, lambda: failures.crash_node("server"))
        network.events.run_until_idle()

        assert executed == [b"first"]
        errors = [item for item in results if isinstance(item, NodeUnreachableError)]
        assert len(errors) == 1
        assert "queued" in str(errors[0])


class TestAdaptiveCongestion:
    def _manager(self) -> AdaptiveDistributionManager:
        return AdaptiveDistributionManager(object(), object())

    def test_disconnected_factor_is_neutral(self):
        assert self._manager().effective_congestion_factor() == 1.0

    def test_idle_network_factor_is_neutral(self):
        manager = self._manager()
        network = SimulatedNetwork()
        network.register("a", lambda source, payload: b"")
        network.register("b", lambda source, payload: b"pong")
        network.send_request("a", "b", b"ping")
        manager.connect_network(network)
        assert manager.effective_congestion_factor() == 1.0

    def test_measured_queueing_raises_the_factor(self):
        class Metrics:
            total_latency = 2.0
            total_queue_delay = 1.0

        manager = self._manager()
        manager.connect_network(Metrics())
        assert manager.effective_congestion_factor() == pytest.approx(1.5)

    def test_factor_is_capped_at_two(self):
        class Metrics:
            total_latency = 1.0
            total_queue_delay = 5.0

        manager = self._manager()
        manager.connect_network(Metrics())
        assert manager.effective_congestion_factor() == 2.0

    def test_congestion_weighs_the_amortised_window(self):
        class Metrics:
            total_latency = 2.0
            total_queue_delay = 1.0

        class Monitor:
            total_calls = 10

        manager = self._manager()
        assert manager.amortised_call_count(Monitor()) == 10.0
        manager.connect_network(Metrics())
        assert manager.amortised_call_count(Monitor()) == pytest.approx(15.0)

    def test_congested_traffic_on_a_real_cluster_is_weighted(self):
        cluster = Cluster(("client", "server"))
        outcome = _scenario(cluster, 2.0 * CAPACITY, duration=0.5)
        assert outcome["link_queue_delay"] >= 0.0
        manager = self._manager()
        manager.connect_network(cluster.network)
        assert manager.effective_congestion_factor() >= 1.0


class TestIdleNetworkRegression:
    """Capacity modelling must not tax the uncontended benchmarks."""

    def test_synchronous_run_is_bit_identical_with_queueing(self):
        from repro.workloads.bulk_orders import run_bulk_order_scenario

        results = []
        for queueing in (True, False):
            cluster = Cluster(
                ("client", "server"), network=SimulatedNetwork(queueing=queueing)
            )
            results.append(
                run_bulk_order_scenario(
                    cluster, transport="rmi", orders=64, batch_size=8
                )
            )
        with_queueing, without = results
        assert with_queueing["per_call_seconds"] == without["per_call_seconds"]
        assert with_queueing["messages"] == without["messages"]
        assert with_queueing["bytes_on_wire"] == without["bytes_on_wire"]

    def test_batching_gate_holds_with_capacity_modelling(self):
        from repro.workloads.bulk_orders import run_bulk_order_scenario

        unbatched = run_bulk_order_scenario(
            Cluster(("client", "server")), transport="rmi", orders=128, batch_size=1
        )
        batched = run_bulk_order_scenario(
            Cluster(("client", "server")), transport="rmi", orders=128, batch_size=16
        )
        speedup = unbatched["per_call_seconds"] / batched["per_call_seconds"]
        assert speedup >= 3.0

    def test_pipelining_gate_holds_with_capacity_modelling(self):
        from repro.workloads.pipelined_orders import run_sharded_order_scenario

        sequential = run_sharded_order_scenario(
            Cluster(("client", "server-0", "server-1")),
            transport="rmi",
            orders=128,
            batch_size=16,
            window=4,
            pipelined=False,
        )
        pipelined = run_sharded_order_scenario(
            Cluster(("client", "server-0", "server-1")),
            transport="rmi",
            orders=128,
            batch_size=16,
            window=4,
            pipelined=True,
        )
        speedup = sequential["per_call_seconds"] / pipelined["per_call_seconds"]
        assert speedup >= 2.0

    def test_replication_gate_holds_with_capacity_modelling(self):
        from repro.workloads.replicated_orders import run_replicated_order_scenario

        outcome = run_replicated_order_scenario(
            Cluster(("client", "shard-0", "shard-1", "backup-0", "backup-1")),
            transport="rmi",
            orders=64,
            shards=("shard-0", "shard-1"),
            kill="shard-0",
        )
        assert outcome["accepted"] == 64
        assert outcome["client_visible_failures"] == 0
        assert outcome["failovers"] >= 1

    def test_caching_gate_holds_with_capacity_modelling(self):
        from repro.workloads.cached_catalog import run_cached_catalog_scenario

        uncached = run_cached_catalog_scenario(
            Cluster(("client", "writer", "server-0", "server-1")),
            transport="rmi",
            rounds=10,
            cached=False,
        )
        cached = run_cached_catalog_scenario(
            Cluster(("client", "writer", "server-0", "server-1")),
            transport="rmi",
            rounds=10,
            cached=True,
        )
        speedup = uncached["per_call_seconds"] / cached["per_call_seconds"]
        assert speedup >= 5.0
        assert cached["stale_reads"] == 0
