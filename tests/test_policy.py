"""Unit tests for static distribution policies."""

from __future__ import annotations

import pytest

from repro.errors import PolicyError
from repro.policy.policy import (
    ClassPolicy,
    DistributionPolicy,
    PlacementDecision,
    all_local_policy,
    local,
    place_classes_on,
    remote,
)


class TestPlacementDecision:
    def test_defaults_to_local(self):
        decision = PlacementDecision()
        assert not decision.is_remote
        assert decision.node_id is None
        assert not decision.dynamic

    def test_remote_requires_a_node(self):
        with pytest.raises(PolicyError):
            PlacementDecision(kind="remote")

    def test_unknown_kind_rejected(self):
        with pytest.raises(PolicyError):
            PlacementDecision(kind="orbital")

    def test_convenience_constructors(self):
        assert remote("server").is_remote
        assert remote("server", transport="soap").transport == "soap"
        assert local(dynamic=True).dynamic

    def test_with_node_converts_to_remote(self):
        moved = local().with_node("server")
        assert moved.is_remote and moved.node_id == "server"


class TestDistributionPolicy:
    def test_default_applies_to_unknown_classes(self):
        policy = DistributionPolicy()
        assert policy.is_substitutable("Anything")
        assert not policy.instance_decision("Anything").is_remote

    def test_per_class_entries_override_default(self):
        policy = DistributionPolicy()
        policy.set_class("Cache", instances=remote("server"))
        assert policy.instance_decision("Cache").is_remote
        assert not policy.instance_decision("Other").is_remote

    def test_statics_can_differ_from_instances(self):
        policy = DistributionPolicy()
        policy.set_class("Cache", instances=remote("server"), statics=local())
        assert policy.instance_decision("Cache").is_remote
        assert not policy.static_decision("Cache").is_remote

    def test_place_instances_and_statics_incrementally(self):
        policy = all_local_policy()
        policy.place_instances("Cache", remote("server"))
        policy.place_statics("Cache", remote("backup"))
        assert policy.instance_decision("Cache").node_id == "server"
        assert policy.static_decision("Cache").node_id == "backup"

    def test_exclude_marks_class_not_substitutable(self):
        policy = all_local_policy()
        policy.exclude("Legacy")
        assert not policy.is_substitutable("Legacy")
        assert "Legacy" in policy.excluded_classes()

    def test_configured_and_remote_class_listings(self):
        policy = all_local_policy()
        policy.set_class("A", instances=remote("n1"))
        policy.set_class("B")
        assert policy.configured_classes() == {"A", "B"}
        assert policy.remote_classes() == {"A"}

    def test_copy_is_independent(self):
        policy = all_local_policy()
        policy.set_class("A", instances=remote("n1"))
        clone = policy.copy()
        clone.place_instances("A", local())
        assert policy.instance_decision("A").is_remote
        assert not clone.instance_decision("A").is_remote

    def test_merged_with_prefers_other(self):
        base = all_local_policy()
        base.set_class("A", instances=remote("n1"))
        override = DistributionPolicy()
        override.set_class("A", instances=remote("n2"))
        merged = base.merged_with(override)
        assert merged.instance_decision("A").node_id == "n2"

    def test_set_default(self):
        policy = DistributionPolicy()
        policy.set_default(ClassPolicy(substitutable=False))
        assert not policy.is_substitutable("Whatever")


class TestPolicyFactories:
    def test_all_local_policy(self):
        policy = all_local_policy()
        assert not policy.instance_decision("X").is_remote
        assert not policy.instance_decision("X").dynamic

    def test_all_local_dynamic_policy(self):
        policy = all_local_policy(dynamic=True)
        assert policy.instance_decision("X").dynamic

    def test_place_classes_on(self):
        policy = place_classes_on({"Cache": "server", "Store": "backup"}, transport="soap")
        assert policy.instance_decision("Cache").node_id == "server"
        assert policy.static_decision("Store").node_id == "backup"
        assert policy.instance_decision("Cache").transport == "soap"
        assert not policy.instance_decision("Unrelated").is_remote
