"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.api import errors
from repro.core.analyzer import NonTransformableReason


class TestHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        error_classes = [
            value
            for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
        ]
        assert len(error_classes) > 15
        for error_class in error_classes:
            assert issubclass(error_class, errors.ReproError)

    def test_subsystem_groupings(self):
        assert issubclass(errors.NotTransformableError, errors.TransformationError)
        assert issubclass(errors.MigrationError, errors.RuntimeLayerError)
        assert issubclass(errors.PartitionError, errors.NetworkError)
        assert issubclass(errors.UnknownTransportError, errors.TransportError)

    def test_catching_the_base_class_catches_everything(self):
        with pytest.raises(errors.ReproError):
            raise errors.MessageDroppedError("gone")


class TestErrorPayloads:
    def test_not_transformable_error_reports_reasons(self):
        error = errors.NotTransformableError(
            "NativeIO", [NonTransformableReason.NATIVE_METHODS]
        )
        assert error.class_name == "NativeIO"
        assert "native" in str(error)

    def test_not_transformable_error_without_reasons(self):
        assert "unknown reason" in str(errors.NotTransformableError("Thing"))

    def test_remote_invocation_error_carries_remote_details(self):
        error = errors.RemoteInvocationError("KeyError", "missing key")
        assert error.remote_type == "KeyError"
        assert "missing key" in str(error)

    def test_unknown_transport_error_lists_available(self):
        error = errors.UnknownTransportError("iiop", ["rmi", "soap"])
        assert "rmi" in str(error) and "soap" in str(error)

    def test_unknown_transport_error_with_no_alternatives(self):
        assert "none" in str(errors.UnknownTransportError("iiop"))

    def test_unknown_class_error(self):
        error = errors.UnknownClassError("Ghost")
        assert error.class_name == "Ghost"
        assert "Ghost" in str(error)
