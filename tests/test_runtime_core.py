"""Unit tests for remote references, invocation messages and the naming service."""

from __future__ import annotations

import pytest

from repro.errors import NamingError
from repro.runtime.invocation import InvocationRequest, InvocationResponse
from repro.runtime.naming import NamingService
from repro.runtime.remote_ref import ObjectIdAllocator, RemoteRef, reference_of


class TestObjectIdAllocator:
    def test_ids_are_unique_and_deterministic(self):
        allocator = ObjectIdAllocator("node-1")
        first, second = allocator.allocate(), allocator.allocate()
        assert first == "node-1:1"
        assert second == "node-1:2"

    def test_different_nodes_never_collide(self):
        a = ObjectIdAllocator("a").allocate()
        b = ObjectIdAllocator("b").allocate()
        assert a != b


class TestRemoteRef:
    def _ref(self) -> RemoteRef:
        return RemoteRef("server:7", "server", "Cache_O_Int")

    def test_wire_round_trip(self):
        ref = self._ref()
        assert RemoteRef.from_wire(ref.to_wire()) == ref

    def test_wire_form_is_tagged(self):
        wire = self._ref().to_wire()
        assert RemoteRef.is_wire_ref(wire)
        assert not RemoteRef.is_wire_ref({"object_id": "x"})
        assert not RemoteRef.is_wire_ref("server:7")

    def test_located_on(self):
        ref = self._ref()
        assert ref.located_on("server")
        assert not ref.located_on("client")

    def test_with_node_rewrites_location(self):
        moved = self._ref().with_node("backup")
        assert moved.node_id == "backup"
        assert moved.object_id == "server:7"

    def test_refs_are_hashable_value_objects(self):
        assert self._ref() == self._ref()
        assert len({self._ref(), self._ref()}) == 1

    def test_reference_of_plain_object_is_none(self):
        assert reference_of(object()) is None


class TestInvocationMessages:
    def test_request_dict_round_trip(self):
        request = InvocationRequest("server:1", "Y_O_Int", "n", [3], {"named": True})
        assert InvocationRequest.from_dict(request.to_dict()) == request

    def test_request_defaults(self):
        request = InvocationRequest.from_dict({"target": "t", "interface": "I", "member": "m"})
        assert request.args == [] and request.kwargs == {}

    def test_successful_response_round_trip(self):
        response = InvocationResponse.for_result(41)
        decoded = InvocationResponse.from_dict(response.to_dict())
        assert not decoded.is_error
        assert decoded.result == 41

    def test_error_response_round_trip(self):
        response = InvocationResponse.for_exception(KeyError("missing"))
        decoded = InvocationResponse.from_dict(response.to_dict())
        assert decoded.is_error
        assert decoded.error_type == "KeyError"
        assert "missing" in decoded.error_message

    def test_none_result_is_not_an_error(self):
        decoded = InvocationResponse.from_dict(InvocationResponse.for_result(None).to_dict())
        assert not decoded.is_error
        assert decoded.result is None


class TestNamingService:
    def _ref(self, name: str = "obj") -> RemoteRef:
        return RemoteRef(f"server:{name}", "server", "Cache_O_Int")

    def test_bind_and_lookup(self):
        naming = NamingService()
        naming.bind("cache", self._ref())
        assert naming.lookup("cache") == self._ref()
        assert "cache" in naming
        assert len(naming) == 1

    def test_double_bind_is_rejected(self):
        naming = NamingService()
        naming.bind("cache", self._ref())
        with pytest.raises(NamingError):
            naming.bind("cache", self._ref("other"))

    def test_rebind_replaces(self):
        naming = NamingService()
        naming.bind("cache", self._ref())
        naming.rebind("cache", self._ref("other"))
        assert naming.lookup("cache").object_id == "server:other"

    def test_lookup_unknown_name_raises(self):
        with pytest.raises(NamingError):
            NamingService().lookup("ghost")

    def test_maybe_lookup_returns_none(self):
        assert NamingService().maybe_lookup("ghost") is None

    def test_unbind(self):
        naming = NamingService()
        naming.bind("cache", self._ref())
        naming.unbind("cache")
        assert "cache" not in naming
        with pytest.raises(NamingError):
            naming.unbind("cache")

    def test_names_listing(self):
        naming = NamingService()
        naming.bind("a", self._ref("a"))
        naming.bind("b", self._ref("b"))
        assert naming.names() == {"a", "b"}
