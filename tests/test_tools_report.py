"""Unit tests for the application and traffic reports."""

from __future__ import annotations


import sample_app
import sample_unsupported
from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster
from repro.tools.report import application_report, traffic_report

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


class TestApplicationReport:
    def test_report_for_an_unbound_application(self):
        app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        report = application_report(app)
        assert "RAFDA transformed application" in report
        assert "not bound (single address space)" in report
        for class_name in ("X", "Y", "Z"):
            assert class_name in report
        assert "X_O_Int" in report

    def test_report_shows_policy_decisions(self):
        app = ApplicationTransformer(
            place_classes_on({"Y": "server"}, transport="soap")
        ).transform(CLASSES)
        app.deploy(Cluster(("client", "server")), default_node="client")
        report = application_report(app)
        assert "instances on 'server' via soap" in report
        assert "bound to nodes" in report

    def test_report_lists_non_transformable_classes_with_reasons(self):
        app = ApplicationTransformer(all_local_policy()).transform(
            CLASSES + [sample_unsupported.NativeIO]
        )
        report = application_report(app)
        assert "NativeIO" in report
        assert "native" in report

    def test_report_includes_handles_and_their_boundaries(self):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(CLASSES)
        app.deploy(Cluster(("client", "server")), default_node="client")
        y = app.new("Y", 1)
        y.n(1)
        report = application_report(app)
        assert "rebindable handles" in report
        assert "local" in report

    def test_include_sources_flag_lists_rewritten_members(self):
        app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        report = application_report(app, include_sources=True)
        assert "rewritten members" in report


class TestTrafficReport:
    def test_traffic_report_for_an_idle_cluster(self):
        cluster = Cluster(("a", "b"))
        report = traffic_report(cluster)
        assert "messages       : 0" in report

    def test_traffic_report_after_remote_calls(self):
        app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        y = app.new("Y", 1)
        for value in range(5):
            y.n(value)
        report = traffic_report(cluster, title="after 5 calls")
        assert "after 5 calls" in report
        assert "client" in report and "server" in report
        assert "per-link:" in report

    def test_traffic_report_counts_match_metrics(self):
        app = ApplicationTransformer(place_classes_on({"Y": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        app.new("Y", 1).n(1)
        report = traffic_report(cluster)
        assert f"messages       : {cluster.metrics.total_messages}" in report
