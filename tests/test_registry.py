"""Unit tests for the transformation registry."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.registry import TransformationRegistry
from repro.core.transformer import ApplicationTransformer
from repro.errors import UnknownClassError
from repro.policy.policy import all_local_policy


@pytest.fixture(scope="module")
def app():
    return ApplicationTransformer(all_local_policy()).transform(
        [sample_app.X, sample_app.Y, sample_app.Z]
    )


class TestLookups:
    def test_lookup_by_class_name(self, app):
        artifacts = app.registry.artifacts("X")
        assert artifacts.class_name == "X"
        assert app.registry.get("X") is artifacts
        assert app.registry.get("Ghost") is None

    def test_unknown_class_raises(self, app):
        with pytest.raises(UnknownClassError):
            app.registry.artifacts("Ghost")

    def test_lookup_by_interface_name(self, app):
        assert app.registry.class_for_interface("X_O_Int") == "X"
        assert app.registry.class_for_interface("X_C_Int") == "X"
        assert app.registry.artifacts_for_interface("Y_O_Int").class_name == "Y"
        with pytest.raises(UnknownClassError):
            app.registry.class_for_interface("Ghost_O_Int")

    def test_interface_kind(self, app):
        assert app.registry.interface_kind("X_O_Int") == "instance"
        assert app.registry.interface_kind("X_C_Int") == "class"

    def test_membership_and_iteration(self, app):
        registry = app.registry
        assert "X" in registry and "Ghost" not in registry
        assert len(registry) == 3
        assert {artifacts.class_name for artifacts in registry} == {"X", "Y", "Z"}
        assert registry.class_names() == {"X", "Y", "Z"}
        assert {"X_O_Int", "X_C_Int", "Y_O_Int"} <= registry.interface_names()


class TestNamespace:
    def test_namespace_holds_every_generated_name(self, app):
        namespace = app.registry.namespace
        for class_name in ("X", "Y", "Z"):
            for suffix in ("_O_Int", "_O_Local", "_O_Factory", "_C_Int", "_C_Local", "_C_Factory"):
                assert f"{class_name}{suffix}" in namespace

    def test_fresh_registry_is_empty(self):
        registry = TransformationRegistry()
        assert len(registry) == 0
        assert registry.class_names() == set()
        assert registry.namespace == {}

    def test_registration_indexes_both_interfaces(self, app):
        fresh = TransformationRegistry()
        fresh.register(app.registry.artifacts("Y"))
        assert fresh.class_for_interface("Y_O_Int") == "Y"
        assert fresh.class_for_interface("Y_C_Int") == "Y"
