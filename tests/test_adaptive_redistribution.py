"""Experiment E8: the application adapts by altering its distribution boundaries.

The access pattern of the order-processing workload shifts between nodes; the
adaptive distribution manager observes per-node call counts on the rebindable
handles and moves each hot object towards the node that uses it most.  The
tests check the decision logic (monitoring, thresholds, suggestions) and that
applying the adaptation actually reduces remote traffic for the new phase.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import RedistributionError
from repro.policy.adaptive import AdaptiveDistributionManager
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.redistribution import DistributionController
from repro.workloads.orders import Catalog, CustomerSession, OrderStore, seed_catalog

SAMPLE = [sample_app.X, sample_app.Y, sample_app.Z]
ORDERS = [Catalog, OrderStore, CustomerSession]


@pytest.fixture
def adaptive_setup():
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(SAMPLE)
    cluster = Cluster(("front", "back"))
    app.deploy(cluster, default_node="front")
    controller = DistributionController(app, cluster)
    manager = AdaptiveDistributionManager(app, controller, threshold=0.6, min_calls=5)
    return app, cluster, controller, manager


class TestAccessMonitoring:
    def test_monitor_attributes_calls_to_the_executing_node(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        y.n(1)
        with app.executing_on("back"):
            y.n(2)
            y.n(3)
        monitor = manager._monitors[id(y)]
        assert monitor.total_calls == 3
        assert monitor.calls_per_node["front"] == 1
        assert monitor.calls_per_node["back"] == 2
        assert monitor.dominant_node()[0] == "back"

    def test_attach_requires_a_dynamic_handle(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        with pytest.raises(RedistributionError):
            manager.attach(app.new_local("Y", 1))

    def test_attach_is_idempotent_and_attach_all_covers_handles(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        first = manager.attach(y)
        assert manager.attach(y) is first
        app.new("Y", 2)
        assert manager.attach_all() == 2
        assert len(manager.monitored_handles()) == 2

    def test_monitor_reset_clears_the_window(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        y.n(1)
        monitor.reset()
        assert monitor.total_calls == 0
        assert monitor.dominant_node() is None

    def test_invalid_threshold_rejected(self, adaptive_setup):
        app, _, controller, _ = adaptive_setup
        with pytest.raises(RedistributionError):
            AdaptiveDistributionManager(app, controller, threshold=0.0)


class TestSuggestions:
    def test_no_suggestion_below_min_calls(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        y.n(1)
        assert manager.evaluate() == []

    def test_no_suggestion_when_calls_come_from_home(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        for _ in range(10):
            y.n(1)
        assert manager.evaluate() == []

    def test_suggestion_when_a_foreign_node_dominates(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        with app.executing_on("back"):
            for _ in range(10):
                y.n(1)
        suggestions = manager.evaluate()
        assert len(suggestions) == 1
        assert suggestions[0].target_node == "back"
        assert suggestions[0].caller_share == 1.0
        assert "Y" in suggestions[0].describe()

    def test_no_suggestion_below_threshold_share(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        for _ in range(5):
            y.n(1)
        with app.executing_on("back"):
            for _ in range(5):
                y.n(1)
        assert manager.evaluate() == []  # 50 % share < 60 % threshold


class TestAdaptation:
    def test_adapt_moves_the_object_to_its_dominant_caller(self, adaptive_setup):
        app, cluster, controller, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        with app.executing_on("back"):
            for _ in range(10):
                y.n(1)
        record = manager.adapt()
        assert record.moved == 1
        assert controller.boundary_of(y) == ("remote", "back")
        assert manager.history[-1] is record

    def test_adaptation_reduces_traffic_for_the_new_phase(self, adaptive_setup):
        app, cluster, controller, manager = adaptive_setup
        y = app.new("Y", 1)
        manager.attach(y)
        controller.make_remote(y, "back")

        # Phase: the front node hammers an object living on the back node.
        cluster.network.reset_metrics()
        for _ in range(20):
            y.n(1)
        remote_phase_messages = cluster.metrics.total_messages
        assert remote_phase_messages > 0

        # The manager notices and brings the object home.
        record = manager.adapt()
        assert record.moved == 1
        assert controller.boundary_of(y)[0] == "local"

        cluster.network.reset_metrics()
        for _ in range(20):
            y.n(1)
        assert cluster.metrics.total_messages == 0

    def test_adaptation_window_resets_after_a_move(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        with app.executing_on("back"):
            for _ in range(10):
                y.n(1)
        manager.adapt()
        assert monitor.total_calls == 0

    def test_reset_window_clears_all_monitors(self, adaptive_setup):
        app, _, _, manager = adaptive_setup
        y = app.new("Y", 1)
        monitor = manager.attach(y)
        y.n(1)
        manager.reset_window()
        assert monitor.total_calls == 0


class TestShiftingOrderWorkload:
    def test_orders_move_to_the_warehouse_during_fulfilment(self):
        """The order store follows the workload from the front node to the warehouse."""
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(ORDERS)
        cluster = Cluster(("front", "warehouse"))
        app.deploy(cluster, default_node="front")
        controller = DistributionController(app, cluster)
        manager = AdaptiveDistributionManager(app, controller, threshold=0.6, min_calls=5)

        catalog = app.new("Catalog")
        orders = app.new("OrderStore")
        seed_catalog(catalog, 10)
        manager.attach(catalog)
        manager.attach(orders)

        # Browse phase on the front node: place a few orders.
        session = app.new("CustomerSession", "alice", catalog, orders)
        for index in range(10):
            session.browse([f"sku-{index % 10}"])
            session.buy(f"sku-{index % 10}", 1)
        manager.adapt()

        # Fulfilment phase on the warehouse node.
        with app.executing_on("warehouse"):
            for order_id in list(orders.pending()):
                orders.fulfil(order_id)
            for _ in range(10):
                orders.order_count()
        record = manager.adapt()

        moved_classes = {suggestion.class_name for suggestion in record.applied}
        assert "OrderStore" in moved_classes
        assert controller.boundary_of(orders) == ("remote", "warehouse")
        # The orders placed during the browse phase are visible after the move.
        assert orders.revenue() > 0
