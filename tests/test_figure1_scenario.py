"""Experiment E1: the Figure 1 re-distribution scenario.

Objects of class A and class B hold references to a shared instance of class
C.  The application is transformed so that the instance of C is remote to its
reference holders: the local instance is replaced by a proxy Cp to the remote
implementation C'.  The tests check that the scenario produces identical
results (a) untransformed, (b) transformed but all-local, (c) transformed
with C remote, and (d) after dynamically moving C at run time.
"""

from __future__ import annotations

import pytest

from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, local, place_classes_on
from repro.runtime.cluster import Cluster
from repro.runtime.redistribution import DistributionController
from repro.workloads.figure1 import A, B, C, run_figure1_plain, run_figure1_scenario

CLASSES = [A, B, C]
VALUES = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def oracle():
    return run_figure1_plain(VALUES)


class TestLocalEquivalence:
    def test_transformed_local_run_matches_original(self, oracle):
        app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        result = run_figure1_scenario(app, VALUES)
        assert result.as_tuple() == oracle.as_tuple()

    def test_expected_totals(self, oracle):
        # a adds each value once, b adds it doubled: total = 3 * sum(values).
        assert oracle.total == 3 * sum(VALUES)
        assert oracle.a_recorded == len(VALUES)
        assert oracle.b_recorded == len(VALUES)


class TestRemoteSharedObject:
    def _remote_app(self):
        app = ApplicationTransformer(place_classes_on({"C": "server"})).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        return app, cluster

    def test_remote_run_matches_original(self, oracle):
        app, _cluster = self._remote_app()
        result = run_figure1_scenario(app, VALUES)
        assert result.as_tuple() == oracle.as_tuple()

    def test_shared_instance_is_a_proxy(self):
        app, _cluster = self._remote_app()
        shared = app.new("C", "shared")
        assert type(shared).__name__ == "C_O_Proxy_RMI"

    def test_a_and_b_share_the_same_remote_instance(self, oracle):
        """Both holders observe each other's updates through the shared C'."""
        app, cluster = self._remote_app()
        shared = app.new("C", "probe")
        a = app.new("A", shared)
        b = app.new("B", shared)
        a.record(10)
        assert b.running_average() == pytest.approx(10.0)
        b.record(5)
        assert shared.get_total() == 20
        assert cluster.metrics.total_messages > 0

    def test_remote_run_generates_network_traffic(self):
        app, cluster = self._remote_app()
        run_figure1_scenario(app, VALUES)
        assert cluster.metrics.total_messages > 0
        assert cluster.clock.now > 0.0

    def test_local_run_generates_no_network_traffic(self):
        app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        run_figure1_scenario(app, VALUES)
        assert cluster.metrics.total_messages == 0


class TestDynamicRedistributionOfC:
    def test_moving_c_mid_run_preserves_results(self, oracle):
        """C starts local, is moved to the server half-way, results unchanged."""
        policy = all_local_policy()
        policy.set_class("C", instances=local(dynamic=True))
        app = ApplicationTransformer(policy).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        controller = DistributionController(app, cluster)

        shared = app.new("C", "shared")
        a = app.new("A", shared)
        b = app.new("B", shared)

        midpoint = len(VALUES) // 2
        for value in VALUES[:midpoint]:
            a.record(value)
            b.record(value)

        before_messages = cluster.metrics.total_messages
        controller.make_remote(shared, "server")

        for value in VALUES[midpoint:]:
            a.record(value)
            b.record(value)

        assert shared.get_total() == oracle.total
        assert shared.describe() == oracle.description
        # The second half of the run really went over the network.
        assert cluster.metrics.total_messages > before_messages

    def test_boundary_can_move_back(self, oracle):
        policy = all_local_policy()
        policy.set_class("C", instances=local(dynamic=True))
        app = ApplicationTransformer(policy).transform(CLASSES)
        cluster = Cluster(("client", "server"))
        app.deploy(cluster, default_node="client")
        controller = DistributionController(app, cluster)

        shared = app.new("C", "shared")
        a = app.new("A", shared)
        controller.make_remote(shared, "server")
        a.record(2)
        controller.make_local(shared)
        a.record(3)
        assert shared.get_total() == 5
        kind, node = controller.boundary_of(shared)
        assert kind == "local"
