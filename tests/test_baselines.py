"""Unit tests for the three baseline approaches from the paper's related work."""

from __future__ import annotations

import pytest

from repro.baselines.javaparty import (
    GenericRemoteProxy,
    JavaPartyRuntime,
    is_remote_class,
    remote_class,
)
from repro.baselines.proactive import ActiveObject, ProActiveRuntime
from repro.baselines.wrapper import ObjectWrapper, WrapperRuntime, wrap
from repro.errors import InvocationError, PolicyError
from repro.runtime.cluster import Cluster
from repro.workloads.shared_cache import Cache


class _Counter:
    def __init__(self, start=0):
        self.value = start

    def increment(self, by=1):
        self.value += by
        return self.value

    def read(self):
        return self.value


class TestObjectWrapper:
    def test_method_calls_are_forwarded(self):
        wrapper = wrap(_Counter(5))
        assert wrapper.increment(3) == 8
        assert wrapper.read() == 8

    def test_attribute_reads_and_writes_are_forwarded(self):
        wrapper = wrap(_Counter(5))
        assert wrapper.value == 5
        wrapper.value = 11
        assert wrapper.read() == 11

    def test_every_access_is_intercepted(self):
        wrapper = wrap(_Counter())
        wrapper.increment()
        wrapper.value
        wrapper.value = 3
        assert wrapper.interception_count >= 3

    def test_wrapping_is_idempotent(self):
        wrapper = wrap(_Counter())
        assert wrap(wrapper) is wrapper

    def test_wrapper_arguments_are_unwrapped_for_the_target(self):
        class Adder:
            def total(self, counter):
                return counter.value + 1

        counter = wrap(_Counter(4))
        adder = wrap(Adder())
        assert adder.total(counter) == 5

    def test_wrapper_runtime_tracks_instances(self):
        runtime = WrapperRuntime()
        first = runtime.new(_Counter, 1)
        runtime.new(_Counter, 2)
        assert isinstance(first, ObjectWrapper)
        assert runtime.wrapper_count() == 2
        first.increment()
        assert runtime.total_interceptions() >= 1
        assert runtime.wrapper_for(first.wrapped) is first

    def test_wrapper_behaviour_matches_transformed_cache(self):
        """The wrapper baseline computes the same results, just more slowly."""
        plain = Cache(4)
        wrapped = WrapperRuntime().new(Cache, 4)
        for key in range(6):
            plain.put(f"k{key}", key)
            wrapped.put(f"k{key}", key)
        assert wrapped.size() == plain.size()
        assert wrapped.get("k5") == plain.get("k5")
        assert wrapped.hit_rate() == plain.hit_rate()


class TestJavaPartyBaseline:
    def _runtime(self):
        cluster = Cluster(("home", "server"))

        @remote_class
        class RemoteCounter(_Counter):
            pass

        runtime = JavaPartyRuntime(
            cluster, home_node="home", placement={"RemoteCounter": "server"}
        )
        return cluster, runtime, RemoteCounter

    def test_remote_keyword_marks_classes(self):
        _, _, RemoteCounter = self._runtime()
        assert is_remote_class(RemoteCounter)
        assert not is_remote_class(_Counter)

    def test_annotated_classes_become_remote_proxies(self):
        cluster, runtime, RemoteCounter = self._runtime()
        counter = runtime.new(RemoteCounter, 10)
        assert isinstance(counter, GenericRemoteProxy)
        assert counter.increment(5) == 15
        assert cluster.metrics.total_messages > 0
        assert runtime.created_remote == 1

    def test_unannotated_classes_stay_local(self):
        _, runtime, _ = self._runtime()
        counter = runtime.new(_Counter, 1)
        assert isinstance(counter, _Counter)
        assert runtime.created_local == 1

    def test_placement_is_mandatory_for_remote_classes(self):
        cluster = Cluster(("home", "server"))

        @remote_class
        class Orphan(_Counter):
            pass

        runtime = JavaPartyRuntime(cluster, placement={})
        with pytest.raises(PolicyError):
            runtime.new(Orphan)

    def test_no_runtime_redistribution(self):
        _, runtime, RemoteCounter = self._runtime()
        counter = runtime.new(RemoteCounter, 0)
        with pytest.raises(PolicyError):
            runtime.redistribute(counter, "home")


class TestProActiveBaseline:
    def test_calls_are_asynchronous_futures(self):
        active = ActiveObject(_Counter(0), node_id="n1")
        future = active.increment(4)
        assert not future.is_resolved
        assert active.pending == 1
        assert future.get() == 4
        assert active.pending == 0
        assert active.requests_served == 1

    def test_requests_are_served_in_fifo_order(self):
        active = ActiveObject(_Counter(0), node_id="n1")
        first = active.increment(1)
        second = active.increment(10)
        active.serve_all()
        assert first.get() == 1
        assert second.get() == 11

    def test_future_carries_exceptions(self):
        class Fragile:
            def explode(self):
                raise RuntimeError("bang")

        active = ActiveObject(Fragile(), node_id="n1")
        future = active.explode()
        with pytest.raises(RuntimeError):
            future.get()

    def test_future_without_request_cannot_resolve(self):
        active = ActiveObject(_Counter(0), node_id="n1")
        future = active.increment(1)
        active.serve_all()
        orphan = type(future)(active)
        with pytest.raises(InvocationError):
            orphan.get()

    def test_runtime_places_active_objects_on_nodes(self):
        cluster = Cluster(("a", "b"))
        runtime = ProActiveRuntime(cluster)
        active = runtime.new_active(_Counter, (7,), node="b")
        assert active.node_id == "b"
        future = active.read()
        assert runtime.serve_everything() == 1
        assert future.get() == 7

    def test_unknown_node_rejected(self):
        runtime = ProActiveRuntime(Cluster(("a",)))
        with pytest.raises(InvocationError):
            runtime.new_active(_Counter, (), node="z")

    def test_programmer_directed_migration_charges_the_network(self):
        cluster = Cluster(("a", "b"))
        runtime = ProActiveRuntime(cluster)
        active = runtime.new_active(_Counter, (3,), node="a")
        before = cluster.clock.now
        active.migrate_to("b")
        assert active.node_id == "b"
        assert cluster.clock.now > before
        # State survives the migration.
        future = active.read()
        active.serve_all()
        assert future.get() == 3
