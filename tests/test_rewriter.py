"""Unit tests for the AST rewriter that adapts method bodies."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.introspect import class_model_from_python
from repro.core.rewriter import (
    rewrite_constructor_to_init,
    rewrite_expression,
    rewrite_method,
)
from repro.errors import RewriteError


def _universe():
    models = {
        cls.__name__: class_model_from_python(cls)
        for cls in (sample_app.X, sample_app.Y, sample_app.Z)
    }
    return models


TRANSFORMED = {"X", "Y", "Z"}


class TestFieldAccessRewriting:
    def test_field_read_becomes_getter_call(self):
        models = _universe()
        rewritten = rewrite_method(models["X"].get_method("m"), models["X"], TRANSFORMED, models)
        assert "self.get_y().n(j)" in rewritten
        assert "self.y" not in rewritten

    def test_field_write_becomes_setter_call(self):
        class Tank:
            def __init__(self):
                self.level = 0

            def fill(self, amount):
                self.level = amount
                return self.level

        model = class_model_from_python(Tank)
        rewritten = rewrite_method(model.get_method("fill"), model, {"Tank"}, {"Tank": model})
        assert "self.set_level(amount)" in rewritten
        assert "return self.get_level()" in rewritten

    def test_augmented_assignment_is_expanded(self):
        class Meter:
            def __init__(self):
                self.reading = 0

            def tick(self, step):
                self.reading += step

        model = class_model_from_python(Meter)
        rewritten = rewrite_method(model.get_method("tick"), model, {"Meter"}, {"Meter": model})
        assert "self.set_reading(self.get_reading() + step)" in rewritten

    def test_non_field_attributes_are_untouched(self):
        class Formatter:
            def __init__(self):
                self.width = 10

            def pad(self, text):
                return text.ljust(self.width)

        model = class_model_from_python(Formatter)
        rewritten = rewrite_method(model.get_method("pad"), model, {"Formatter"}, {"Formatter": model})
        assert "text.ljust(self.get_width())" in rewritten

    def test_chained_access_through_field(self):
        models = _universe()
        rewritten = rewrite_method(models["X"].get_method("m"), models["X"], TRANSFORMED, models)
        # self.y.n(j)  ->  self.get_y().n(j): the call on the fetched value stays.
        assert ".n(j)" in rewritten


class TestConstructorAndStaticRewriting:
    def test_constructor_call_goes_through_factory(self):
        class Builder:
            def __init__(self):
                self.product = None

            def build(self, base):
                self.product = Y(base)  # noqa: F821 - resolved at run time
                return self.product

        model = class_model_from_python(Builder)
        models = _universe()
        models["Builder"] = model
        rewritten = rewrite_method(model.get_method("build"), model, TRANSFORMED | {"Builder"}, models)
        assert "Y_O_Factory.create(base)" in rewritten

    def test_static_field_access_goes_through_class_factory(self):
        class Reader:
            def __init__(self):
                self.last = 0

            def read(self):
                self.last = Y.K  # noqa: F821
                return self.last

        model = class_model_from_python(Reader)
        models = _universe()
        models["Reader"] = model
        rewritten = rewrite_method(model.get_method("read"), model, TRANSFORMED | {"Reader"}, models)
        assert "Y_C_Factory.discover().get_K()" in rewritten

    def test_static_method_call_goes_through_class_factory(self):
        class Caller:
            def use(self, i):
                return X.p(i)  # noqa: F821

        model = class_model_from_python(Caller)
        models = _universe()
        models["Caller"] = model
        rewritten = rewrite_method(model.get_method("use"), model, TRANSFORMED | {"Caller"}, models)
        assert "X_C_Factory.discover().p(i)" in rewritten

    def test_untransformed_class_calls_are_untouched(self):
        class Wrapper:
            def wrap(self, items):
                return list(items)

        model = class_model_from_python(Wrapper)
        rewritten = rewrite_method(model.get_method("wrap"), model, {"Wrapper"}, {"Wrapper": model})
        assert "list(items)" in rewritten

    def test_own_static_method_rewritten_to_receiver(self):
        """Figure 4: inside X_C_Local, p uses get_z() on the receiver."""
        models = _universe()
        rewritten = rewrite_method(
            models["X"].get_method("p"), models["X"], TRANSFORMED, models, force_instance=True
        )
        assert "def p(self, i" in rewritten
        assert "self.get_z().q(i)" in rewritten

    def test_instance_method_reading_own_static_field(self):
        class Counter:
            shared_total = 0

            def __init__(self):
                self.local = 0

            def snapshot(self):
                return self.shared_total

        model = class_model_from_python(Counter)
        rewritten = rewrite_method(
            model.get_method("snapshot"), model, {"Counter"}, {"Counter": model}
        )
        assert "Counter_C_Factory.discover().get_shared_total()" in rewritten


class TestConstructorToInit:
    def test_init_takes_that_parameter_and_uses_setters(self):
        """Figure 5: init(that, y) performs that.set_y(y)."""
        models = _universe()
        model = models["X"]
        rewritten = rewrite_constructor_to_init(
            model.constructors[0], model, TRANSFORMED, models
        )
        assert rewritten.startswith("def init(that, y")
        assert "that.set_y(y)" in rewritten
        assert "self" not in rewritten

    def test_constructor_computing_values(self):
        class Rectangle:
            def __init__(self, width, height):
                self.width = width
                self.height = height
                self.area = width * height

        model = class_model_from_python(Rectangle)
        rewritten = rewrite_constructor_to_init(
            model.constructors[0], model, {"Rectangle"}, {"Rectangle": model}
        )
        assert "that.set_width(width)" in rewritten
        assert "that.set_area(width * height)" in rewritten

    def test_missing_source_raises(self):
        models = _universe()
        model = models["X"]
        constructor = model.constructors[0]
        constructor.source = None
        with pytest.raises(RewriteError):
            rewrite_constructor_to_init(constructor, model, TRANSFORMED, models)


class TestExpressionRewriting:
    def test_static_initializer_expression(self):
        """Figure 5: Z(Y.K) becomes factory creation with a discovered constant."""
        models = _universe()
        rewritten = rewrite_expression("Z(Y.K)", models["X"], TRANSFORMED, models)
        assert rewritten == "Z_O_Factory.create(Y_C_Factory.discover().get_K())"

    def test_plain_literal_expression_is_untouched(self):
        models = _universe()
        assert rewrite_expression("42", models["Y"], TRANSFORMED, models) == "42"

    def test_invalid_expression_raises(self):
        models = _universe()
        with pytest.raises(RewriteError):
            rewrite_expression("not valid python ((", models["X"], TRANSFORMED, models)


class TestAnnotationsAndErrors:
    def test_annotations_are_adapted_to_interfaces(self):
        class Service:
            def __init__(self):
                self.backend = None

            def attach(self, backend: "Y") -> "Y":  # noqa: F821
                self.backend = backend
                return backend

        model = class_model_from_python(Service)
        models = _universe()
        models["Service"] = model
        rewritten = rewrite_method(
            model.get_method("attach"), model, TRANSFORMED | {"Service"}, models
        )
        assert "Y_O_Int" in rewritten

    def test_method_without_source_raises(self):
        models = _universe()
        method = models["X"].get_method("m")
        method.source = None
        with pytest.raises(RewriteError):
            rewrite_method(method, models["X"], TRANSFORMED, models)

    def test_rewritten_source_is_valid_python(self):
        models = _universe()
        rewritten = rewrite_method(models["X"].get_method("m"), models["X"], TRANSFORMED, models)
        compile(rewritten, "<test>", "exec")
