"""Unit tests for the metaobject protocol."""

from __future__ import annotations

import pytest

from repro.core.metaobject import (
    KIND_LOCAL,
    KIND_REMOTE,
    CallStatistics,
    Interceptor,
    Invocation,
    Metaobject,
    Redirector,
    TracingInterceptor,
    collect_statistics,
    is_redirected,
    metaobject_of,
    unwrap,
)


class _Greeter:
    def __init__(self, name):
        self.name = name
        self.calls = 0

    def greet(self, whom):
        self.calls += 1
        return f"{self.name} greets {whom}"

    def fail(self):
        raise ValueError("boom")


class TestMetaobjectDispatch:
    def test_invoke_dispatches_to_target(self):
        meta = Metaobject(_Greeter("alice"))
        assert meta.invoke("greet", "bob") == "alice greets bob"

    def test_invoke_propagates_exceptions(self):
        meta = Metaobject(_Greeter("alice"))
        with pytest.raises(ValueError):
            meta.invoke("fail")

    def test_statistics_are_recorded(self):
        meta = Metaobject(_Greeter("alice"))
        meta.invoke("greet", "bob")
        meta.invoke("greet", "carol")
        assert meta.statistics.total_calls == 2
        assert meta.statistics.calls_per_member["greet"] == 2
        assert meta.statistics.local_calls == 2
        assert meta.statistics.remote_calls == 0

    def test_remote_kind_counts_remote_calls(self):
        meta = Metaobject(_Greeter("alice"), kind=KIND_REMOTE, node_id="server")
        meta.invoke("greet", "bob")
        assert meta.is_remote
        assert meta.statistics.remote_calls == 1
        assert meta.statistics.remote_fraction == 1.0

    def test_statistics_reset(self):
        meta = Metaobject(_Greeter("alice"))
        meta.invoke("greet", "bob")
        meta.statistics.reset()
        assert meta.statistics.total_calls == 0


class TestInterceptors:
    def test_tracing_interceptor_records_calls(self):
        meta = Metaobject(_Greeter("alice"))
        tracer = meta.add_interceptor(TracingInterceptor())
        meta.invoke("greet", "bob")
        assert tracer.trace == [("greet", ("bob",), {})]
        tracer.clear()
        assert tracer.trace == []

    def test_interceptor_can_veto_an_invocation(self):
        class Veto(Interceptor):
            def before(self, invocation: Invocation) -> None:
                if invocation.member == "fail":
                    raise PermissionError("vetoed")

        meta = Metaobject(_Greeter("alice"))
        meta.add_interceptor(Veto())
        with pytest.raises(PermissionError):
            meta.invoke("fail")
        # Other members still go through.
        assert meta.invoke("greet", "bob").endswith("bob")

    def test_after_hook_sees_errors(self):
        seen = {}

        class Watcher(Interceptor):
            def after(self, invocation, result, error):
                seen[invocation.member] = (result, type(error).__name__ if error else None)

        meta = Metaobject(_Greeter("alice"))
        meta.add_interceptor(Watcher())
        meta.invoke("greet", "bob")
        with pytest.raises(ValueError):
            meta.invoke("fail")
        assert seen["greet"][1] is None
        assert seen["fail"] == (None, "ValueError")

    def test_remove_interceptor(self):
        meta = Metaobject(_Greeter("alice"))
        tracer = meta.add_interceptor(TracingInterceptor())
        meta.remove_interceptor(tracer)
        meta.invoke("greet", "bob")
        assert tracer.trace == []
        assert meta.interceptors() == ()


class TestRebinding:
    def test_rebind_swaps_the_target(self):
        meta = Metaobject(_Greeter("alice"))
        meta.rebind(_Greeter("zoe"), KIND_LOCAL)
        assert meta.invoke("greet", "bob") == "zoe greets bob"

    def test_rebind_updates_kind_and_node(self):
        meta = Metaobject(_Greeter("alice"))
        meta.rebind(_Greeter("zoe"), KIND_REMOTE, node_id="server")
        assert meta.kind == KIND_REMOTE
        assert meta.node_id == "server"

    def test_rebind_listeners_are_notified(self):
        events = []
        meta = Metaobject(_Greeter("alice"))
        meta.on_rebind(lambda m: events.append(m.kind))
        meta.rebind(_Greeter("zoe"), KIND_REMOTE, node_id="server")
        assert events == [KIND_REMOTE]


class TestRedirector:
    def test_getattr_fallback_delegates_through_metaobject(self):
        meta = Metaobject(_Greeter("alice"))
        handle = Redirector(meta)
        assert handle.greet("bob") == "alice greets bob"
        assert meta.statistics.total_calls == 1

    def test_redirector_identity_survives_rebinding(self):
        meta = Metaobject(_Greeter("alice"))
        handle = Redirector(meta)
        before = id(handle)
        meta.rebind(_Greeter("zoe"), KIND_LOCAL)
        assert id(handle) == before
        assert handle.greet("bob").startswith("zoe")

    def test_metaobject_of_and_is_redirected(self):
        meta = Metaobject(_Greeter("alice"))
        handle = Redirector(meta)
        assert metaobject_of(handle) is meta
        assert is_redirected(handle)
        assert not is_redirected(_Greeter("alice"))
        assert metaobject_of(object()) is None

    def test_unwrap_follows_to_base_object(self):
        target = _Greeter("alice")
        handle = Redirector(Metaobject(target))
        assert unwrap(handle) is target
        assert unwrap(target) is target

    def test_dunder_attributes_are_not_intercepted(self):
        handle = Redirector(Metaobject(_Greeter("alice")))
        with pytest.raises(AttributeError):
            handle.__missing_dunder__


class TestAggregatedStatistics:
    def test_collect_statistics_merges_handles(self):
        handle_a = Redirector(Metaobject(_Greeter("a")))
        handle_b = Redirector(Metaobject(_Greeter("b"), kind=KIND_REMOTE, node_id="n"))
        handle_a.greet("x")
        handle_b.greet("y")
        handle_b.greet("z")
        merged = collect_statistics([handle_a, handle_b, object()])
        assert merged.total_calls == 3
        assert merged.remote_calls == 2
        assert merged.calls_per_member["greet"] == 3

    def test_empty_statistics(self):
        stats = CallStatistics()
        assert stats.remote_fraction == 0.0
