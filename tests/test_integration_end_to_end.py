"""End-to-end integration tests combining every subsystem.

Each scenario exercises the full pipeline the way a downstream user would:
transformation → policy/deployment descriptor → simulated cluster →
remote execution → dynamic redistribution / fault tolerance / persistence —
and checks that the observable application behaviour stays equal to the
original single-process program throughout.
"""

from __future__ import annotations

from repro.core.transformer import ApplicationTransformer
from repro.network.failures import FailureModel
from repro.network.simnet import SimulatedNetwork, WAN_LINK
from repro.persistence import ObjectGraphSnapshotter, restore_snapshot
from repro.policy.adaptive import AdaptiveDistributionManager
from repro.policy.loader import policy_from_dict
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import RetryPolicy, guard_handle
from repro.runtime.migration import ObjectMigrator
from repro.runtime.redistribution import DistributionController
from repro.tools.deployment import deployment_from_dict
from repro.tools.recommend import profile_and_recommend
from repro.tools.report import application_report, traffic_report
from repro.workloads.pipeline import Buffer, Consumer, Producer, run_pipeline
from repro.workloads.shared_cache import Cache, CacheClient

CACHE_CLASSES = [Cache, CacheClient]
PIPELINE_CLASSES = [Buffer, Producer, Consumer]


def _oracle_cache_run():
    cache = Cache(32)
    clients = [CacheClient(f"c{i}", cache) for i in range(2)]
    for client in clients:
        client.warm(10)
    found = sum(client.read_back(10) for client in clients)
    return found, cache.hits, cache.size()


class TestPolicyFileDrivenDeployment:
    def test_policy_loaded_from_configuration_controls_the_run(self):
        expected = _oracle_cache_run()
        policy = policy_from_dict(
            {
                "default": {"placement": "local"},
                "classes": {
                    "Cache": {
                        "placement": "remote",
                        "node": "cache-server",
                        "transport": "corba",
                        "dynamic": True,
                    }
                },
            }
        )
        app = ApplicationTransformer(policy).transform(CACHE_CLASSES)
        cluster = Cluster(("web", "cache-server"))
        app.deploy(cluster, default_node="web")

        cache = app.new("Cache", 32)
        clients = [app.new("CacheClient", f"c{i}", cache) for i in range(2)]
        for client in clients:
            client.warm(10)
        found = sum(client.read_back(10) for client in clients)
        observed = (found, cache.get_hits(), cache.size())
        assert observed == expected
        assert cluster.metrics.total_messages > 0
        # The report reflects the configured deployment.
        report = application_report(app)
        assert "cache-server" in report
        assert "corba" in report


class TestDescriptorDrivenWanDeployment:
    def test_wan_descriptor_is_slower_but_equivalent(self):
        expected = run_pipeline(
            ApplicationTransformer(all_local_policy()).transform(PIPELINE_CLASSES),
            rounds=3, batch=5,
        )
        descriptor = deployment_from_dict(
            {
                "nodes": [{"id": "producer-site"}, {"id": "consumer-site"}],
                "default_node": "producer-site",
                "default_link": {"latency": WAN_LINK.latency, "bandwidth": WAN_LINK.bandwidth},
                "policy": {
                    "classes": {
                        "Buffer": {"placement": "remote", "node": "consumer-site"}
                    }
                },
            }
        )
        app = ApplicationTransformer(all_local_policy()).transform(PIPELINE_CLASSES)
        cluster = descriptor.apply(app)
        observed = run_pipeline(app, rounds=3, batch=5)
        assert observed == expected
        assert cluster.clock.now > 0.1  # WAN latency is clearly visible
        assert "producer-site" in traffic_report(cluster)


class TestProfileThenRedeploy:
    def test_recommendation_reduces_traffic_on_redeployment(self):
        # Profiling deployment: everything dynamic and local to "front".
        profile_app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
            CACHE_CLASSES
        )
        profile_cluster = Cluster(("front", "compute"))
        profile_app.deploy(profile_cluster, default_node="front")
        cache = profile_app.new("Cache", 32)

        def workload():
            with profile_app.executing_on("compute"):
                worker = profile_app.new("CacheClient", "w", cache)
                worker.warm(15)
                worker.read_back(15)

        recommendation = profile_and_recommend(profile_app, workload, min_calls=10)
        assert recommendation.placement.get("Cache") == "compute"
        profiling_messages = profile_cluster.metrics.total_messages
        assert profiling_messages > 0

        # Redeploy under the recommended policy: the compute-side workload is
        # now local to the cache and generates almost no traffic.
        production_policy = recommendation.to_policy(home_node="front")
        production_app = ApplicationTransformer(production_policy).transform(CACHE_CLASSES)
        production_cluster = Cluster(("front", "compute"))
        production_app.deploy(production_cluster, default_node="front")
        production_cache = production_app.new("Cache", 32)
        creation_messages = production_cluster.metrics.total_messages
        with production_app.executing_on("compute"):
            worker = production_app.new("CacheClient", "w", production_cache)
            worker.warm(15)
            worker.read_back(15)
        workload_messages = production_cluster.metrics.total_messages - creation_messages
        assert workload_messages < profiling_messages


class TestAdaptiveWithFaultToleranceUnderLoss:
    def test_lossy_network_with_retries_and_adaptation(self):
        policy = all_local_policy(dynamic=True)
        app = ApplicationTransformer(policy).transform(CACHE_CLASSES)
        network = SimulatedNetwork(failures=FailureModel(drop_probability=0.0, seed=5))
        cluster = Cluster(("front", "compute"), network=network)
        app.deploy(cluster, default_node="front")
        controller = DistributionController(app, cluster)
        manager = AdaptiveDistributionManager(app, controller, threshold=0.6, min_calls=10)

        cache = app.new("Cache", 64)
        manager.attach(cache)
        controller.make_remote(cache, "compute")
        guard_handle(cache, policy=RetryPolicy(max_attempts=6, initial_backoff=0.001))

        network.failures.drop_probability = 0.05
        completed = 0
        for index in range(60):
            cache.put(f"k{index}", index)
            completed += 1
        assert completed == 60
        assert cache.size() == 60

        # The front node dominated the window; adaptation brings the cache home.
        network.failures.drop_probability = 0.0
        record = manager.adapt()
        assert record.moved == 1
        assert controller.boundary_of(cache) == ("local", "front")
        assert cache.get("k10") == 10


class TestCheckpointAcrossRedeployments:
    def test_snapshot_survives_a_change_of_distribution(self):
        source_app = ApplicationTransformer(all_local_policy()).transform(CACHE_CLASSES)
        cache = source_app.new("Cache", 16)
        for index in range(5):
            cache.put(f"k{index}", index * 10)
        snapshot = ObjectGraphSnapshotter(source_app).snapshot({"cache": cache})

        target_policy = policy_from_dict(
            {"classes": {"Cache": {"placement": "remote", "node": "store"}}}
        )
        target_app = ApplicationTransformer(target_policy).transform(CACHE_CLASSES)
        target_app.deploy(Cluster(("app", "store")), default_node="app")
        restored = restore_snapshot(target_app, snapshot)["cache"]
        assert type(restored).__name__ == "Cache_O_Proxy_RMI"
        assert restored.get("k3") == 30
        assert restored.size() == 5


class TestMigrationPreservesBehaviourUnderLoad:
    def test_pipeline_keeps_running_while_its_buffer_moves(self):
        policy = all_local_policy(dynamic=True)
        app = ApplicationTransformer(policy).transform(PIPELINE_CLASSES)
        cluster = Cluster(("stage-1", "stage-2"))
        app.deploy(cluster, default_node="stage-1")
        migrator = ObjectMigrator(app, cluster)

        buffer = app.new("Buffer", 64)
        producer = app.new("Producer", buffer)
        consumer = app.new("Consumer", buffer)

        producer.produce(10)
        migrator.migrate(buffer, "stage-2")
        consumer.drain(10)
        producer.produce(10)
        consumer.drain(10)

        assert consumer.get_consumed() == 20
        assert consumer.get_checksum() == sum(range(20))
        assert buffer.depth() == 0
