"""Property-based tests for the link-capacity (FIFO queueing) model.

With capacity modelling enabled, each directed link is a FIFO resource:
a message's transmission starts only once the wire has finished the
previous one.  Three invariants must hold over the whole domain of message
sizes and link speeds:

* messages posted on one directed link are *delivered* in arrival order —
  the wire never reorders;
* queueing delay is non-negative and additive — message ``i`` is delivered
  exactly when every earlier transmission plus its own has cleared the
  wire, plus propagation;
* links without transmission cost (zero bandwidth — the loopback model)
  never queue, whatever the traffic.

Hypothesis drives the message-size and link-speed generators.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.network.simnet import LOOPBACK_LINK, LinkConfig, SimulatedNetwork

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Payload sizes spanning sub-transmission-quantum to multi-quantum.
sizes = st.lists(st.integers(min_value=1, max_value=50_000), min_size=1, max_size=20)

#: Link speeds from very slow (heavy queueing) to LAN-fast.
bandwidths = st.sampled_from([1_000.0, 125_000.0, 12_500_000.0])


def _network(link: LinkConfig) -> tuple[SimulatedNetwork, list]:
    """A two-node network whose ``sink`` handler logs (payload, sim-time)."""
    network = SimulatedNetwork(default_link=link)
    deliveries: list = []
    network.register("source", lambda src, payload: b"")
    network.register(
        "sink",
        lambda src, payload: deliveries.append((payload, network.clock.now)) or b"ok",
    )
    return network, deliveries


def _post_all(network: SimulatedNetwork, payloads: list) -> None:
    for payload in payloads:
        network.post("source", "sink", payload, lambda _: None, lambda _: None)
    network.events.run_until_idle()


@_SETTINGS
@given(message_sizes=sizes, bandwidth=bandwidths)
def test_directed_link_delivers_in_arrival_order(message_sizes, bandwidth):
    """Concurrent messages on one directed link never overtake each other."""
    link = LinkConfig(latency=0.0005, bandwidth=bandwidth)
    network, deliveries = _network(link)
    payloads = [bytes([index % 256]) * size for index, size in enumerate(message_sizes)]
    _post_all(network, payloads)

    assert [payload for payload, _ in deliveries] == payloads
    times = [at for _, at in deliveries]
    assert times == sorted(times)


@_SETTINGS
@given(message_sizes=sizes, bandwidth=bandwidths)
def test_queueing_delay_is_non_negative_and_additive(message_sizes, bandwidth):
    """Message ``i`` arrives at ``sum(transmissions 0..i) + propagation``.

    Equivalently: its queueing delay equals the not-yet-transmitted residue
    of every earlier message — never negative, accumulating in FIFO order.
    """
    link = LinkConfig(latency=0.0005, bandwidth=bandwidth, jitter=0.0)
    network, deliveries = _network(link)
    payloads = [b"x" * size for size in message_sizes]
    _post_all(network, payloads)

    elapsed_transmission = 0.0
    for size, (_, delivered_at) in zip(message_sizes, deliveries):
        elapsed_transmission += link.transmission_time(size)
        assert delivered_at == pytest.approx(elapsed_transmission + link.latency)
    queue_metrics = network.metrics.link("source", "sink")
    assert queue_metrics.queue_delay_total >= 0.0


@_SETTINGS
@given(message_sizes=sizes)
def test_zero_bandwidth_loopback_never_queues(message_sizes):
    """Links with no transmission cost have nothing to serialize on."""
    network, deliveries = _network(LOOPBACK_LINK)
    _post_all(network, [b"y" * size for size in message_sizes])

    assert len(deliveries) == len(message_sizes)
    assert all(at == 0.0 for _, at in deliveries)
    assert network.metrics.total_queued_messages == 0
    assert network.metrics.total_queue_delay == 0.0


@_SETTINGS
@given(message_sizes=sizes, bandwidth=bandwidths)
def test_disabling_queueing_restores_overlapping_transmissions(message_sizes, bandwidth):
    """``queueing=False`` is the idealised model: no wait, whatever the load."""
    link = LinkConfig(latency=0.0005, bandwidth=bandwidth)
    network = SimulatedNetwork(default_link=link, queueing=False)
    deliveries: list = []
    network.register("source", lambda src, payload: b"")
    network.register(
        "sink",
        lambda src, payload: deliveries.append(network.clock.now) or b"ok",
    )
    _post_all(network, [b"z" * size for size in message_sizes])

    # Transmissions overlap, so small messages overtake large ones: deliveries
    # land at each message's own idle-network delay, in whatever order.
    expected = sorted(
        link.transmission_time(size) + link.latency for size in message_sizes
    )
    assert deliveries == pytest.approx(expected)
    assert network.metrics.total_queued_messages == 0
