"""End-to-end tracing: spans, critical-path attribution, export and CLI.

Covers the observability layer bottom-up: the tracer/span core in
isolation, the integer-nanosecond critical-path decomposition on
synthetic traces, the Chrome/text exporters, then full-stack traces
collected through the façade (interceptors, queues, wire legs, server
dispatch, replication, caching, failover) and the ``repro trace`` CLI.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.api import ServicePolicy, Session, cacheable
from repro.api.middleware import MetricsInterceptor
from repro.cli import main
from repro.observability import (
    PHASES,
    SampleGate,
    Tracer,
    critical_path,
    render_phase_table,
    render_trace_tree,
    slowest_traces,
    to_chrome_trace,
)
from repro.observability.tracing import trace_refs_from_contexts
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import NO_RETRY
from repro.workloads.bulk_orders import OrderIntake
from repro.workloads.open_loop import run_open_loop_scenario


@pytest.fixture
def cluster():
    return Cluster(("client", "server", "spare"))


class _ManualClock:
    """A settable stand-in for the simulation clock in unit tests."""

    def __init__(self) -> None:
        self.now = 0.0


# ---------------------------------------------------------------------------
# tracer / span core
# ---------------------------------------------------------------------------


class TestTracerCore:
    def test_root_and_child_span_lifecycle(self):
        tracer = Tracer()
        root = tracer.start_trace("orders.submit", ts=0.0, service="orders")
        assert root.trace_id == "t1"
        assert root.parent_id is None
        assert root.kind == "client"
        assert not root.closed
        child = tracer.start_span(
            "request-wire",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            kind="wire",
            ts=0.1,
        )
        tracer.end_span(child, ts=0.25)
        tracer.end_span(root, ts=0.3, attempts=1)
        assert child.duration == pytest.approx(0.15)
        assert root.attrs["service"] == "orders"
        assert root.attrs["attempts"] == 1
        collector = tracer.collector
        assert collector.trace_ids() == [root.trace_id]
        assert collector.root(root.trace_id) is root
        assert collector.find(root.trace_id, child.span_id) is child
        assert collector.open_spans() == []
        assert len(collector) == 2

    def test_duration_of_open_span_raises(self):
        tracer = Tracer()
        span = tracer.start_trace("call", ts=1.0)
        with pytest.raises(ValueError, match="still open"):
            span.duration  # noqa: B018 - the property raising is the point

    def test_ending_a_span_twice_raises(self):
        tracer = Tracer()
        span = tracer.start_trace("call", ts=0.0)
        tracer.end_span(span, ts=1.0)
        with pytest.raises(RuntimeError):
            tracer.end_span(span, ts=2.0)

    def test_ending_before_start_raises(self):
        tracer = Tracer()
        span = tracer.start_trace("call", ts=5.0)
        with pytest.raises(ValueError):
            tracer.end_span(span, ts=4.0)

    def test_record_span_is_already_closed(self):
        tracer = Tracer()
        root = tracer.start_trace("call", ts=0.0)
        queued = tracer.record_span(
            "pipeline-queue",
            trace_id=root.trace_id,
            parent_id=root.span_id,
            kind="queue",
            start=0.0,
            end=0.5,
        )
        assert queued.closed
        assert queued.duration == pytest.approx(0.5)
        with pytest.raises(ValueError):
            tracer.record_span("bad", trace_id=root.trace_id, start=2.0, end=1.0)

    def test_span_context_manager_tags_errors(self):
        clock = _ManualClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("call", kind="client"):
                clock.now = 0.5
                raise RuntimeError("boom")
        (root,) = tracer.collector.roots()
        assert root.closed
        assert "boom" in root.attrs["error"]
        assert tracer.open_count == 0

    def test_annotate_unknown_span_is_a_noop(self):
        clock = _ManualClock()
        tracer = Tracer(clock=clock)
        root = tracer.start_trace("call", ts=0.0)
        assert tracer.annotate(root.trace_id, "nope", "event") is False
        assert tracer.annotate("t9", root.span_id, "event") is False
        assert tracer.annotate(root.trace_id, root.span_id, "retry", ts=0.5, why="drop")
        assert root.events == [("retry", 0.5, {"why": "drop"})]

    def test_started_ended_accounting(self):
        tracer = Tracer()
        root = tracer.start_trace("call", ts=0.0)
        child = tracer.start_span("inner", trace_id=root.trace_id, ts=0.1)
        assert (tracer.spans_started, tracer.spans_ended) == (2, 0)
        assert tracer.open_count == 2
        tracer.end_span(child, ts=0.2)
        tracer.end_span(root, ts=0.3)
        assert (tracer.spans_started, tracer.spans_ended) == (2, 2)
        assert tracer.open_count == 0

    def test_instants_are_global_events(self):
        tracer = Tracer()
        tracer.instant("cache-hit", ts=1.5, member="lookup")
        assert tracer.collector.instants == [("cache-hit", 1.5, {"member": "lookup"})]

    def test_trace_refs_skip_untraced_and_dedupe(self):
        contexts = [
            {"i": 1, "x": "t0", "p": "s0"},
            {"i": 2},
            {"i": 3, "x": "t0", "p": "s0"},
            {"i": 4, "x": "t1", "p": "s9"},
            None,
        ]
        assert trace_refs_from_contexts(contexts) == [("t0", "s0"), ("t1", "s9")]


class TestSampleGate:
    def test_rejects_rates_outside_unit_interval(self):
        with pytest.raises(ValueError):
            SampleGate(1.5)
        with pytest.raises(ValueError):
            SampleGate(-0.1)

    def test_deterministic_fractional_sampling(self):
        gate = SampleGate(0.25)
        admitted = [gate.admit() for _ in range(8)]
        assert sum(admitted) == 2
        rerun_gate = SampleGate(0.25)
        assert [rerun_gate.admit() for _ in range(8)] == admitted

    def test_extremes(self):
        assert all(SampleGate(1.0).admit() for _ in range(4))
        gate = SampleGate(0.0)
        assert not any(gate.admit() for _ in range(4))


# ---------------------------------------------------------------------------
# critical-path decomposition
# ---------------------------------------------------------------------------


def _synthetic_trace(tracer, segments):
    """One root [0, 10] with pre-closed child spans from ``segments``."""
    root = tracer.start_trace("orders.submit", ts=0.0)
    for kind, start, end in segments:
        tracer.record_span(
            kind, trace_id=root.trace_id, parent_id=root.span_id,
            kind=kind, start=start, end=end,
        )
    tracer.end_span(root, ts=10.0)
    return root


class TestCriticalPath:
    def test_phases_partition_the_root_exactly(self):
        tracer = Tracer()
        root = _synthetic_trace(
            tracer,
            [("wire", 1.0, 3.0), ("server_queue", 2.0, 5.0), ("service", 5.0, 9.0)],
        )
        path = critical_path(tracer.collector.spans(root.trace_id), root)
        assert path.duration_ns == 10_000_000_000
        assert sum(path.phases_ns.values()) == path.duration_ns
        # server_queue outranks the overlapping wire leg on [2, 3].
        assert path.phases_ns["wire"] == 1_000_000_000
        assert path.phases_ns["server_queue"] == 3_000_000_000
        assert path.phases_ns["service"] == 4_000_000_000
        # Uncovered root time ([0,1] and [9,10]) is client-side overhead.
        assert path.phases_ns["client_queue"] == 2_000_000_000
        assert path.dominant == "service"
        assert path.share("service") == pytest.approx(0.4)

    def test_replication_outranks_service(self):
        tracer = Tracer()
        root = _synthetic_trace(
            tracer, [("service", 3.0, 8.0), ("replication", 4.0, 6.0)]
        )
        path = critical_path(tracer.collector.spans(root.trace_id), root)
        assert path.phases_ns["replication"] == 2_000_000_000
        assert path.phases_ns["service"] == 3_000_000_000
        assert sum(path.phases_ns.values()) == path.duration_ns

    def test_bare_root_is_all_client_queue(self):
        tracer = Tracer()
        root = tracer.start_trace("call", ts=0.0)
        tracer.end_span(root, ts=2.0)
        path = critical_path([root])
        assert path.phases_ns["client_queue"] == path.duration_ns == 2_000_000_000

    def test_child_spans_are_clipped_to_the_root_window(self):
        tracer = Tracer()
        root = _synthetic_trace(tracer, [("wire", -1.0, 12.0)])
        path = critical_path(tracer.collector.spans(root.trace_id), root)
        assert path.phases_ns["wire"] == path.duration_ns
        assert path.phases_ns["client_queue"] == 0

    def test_structural_kinds_own_no_time(self):
        tracer = Tracer()
        root = tracer.start_trace("call", ts=0.0)
        server = tracer.start_span(
            "impl.call", trace_id=root.trace_id, parent_id=root.span_id,
            kind="server", ts=1.0,
        )
        tracer.end_span(server, ts=9.0)
        tracer.end_span(root, ts=10.0)
        path = critical_path(tracer.collector.spans(root.trace_id), root)
        assert path.phases_ns["client_queue"] == path.duration_ns

    def test_open_root_raises(self):
        tracer = Tracer()
        root = tracer.start_trace("call", ts=0.0)
        with pytest.raises(ValueError, match="still open"):
            critical_path([root])
        with pytest.raises(ValueError, match="no root"):
            critical_path([])


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------


class TestExport:
    def _collector(self):
        tracer = Tracer()
        root = tracer.start_trace("orders.submit", ts=0.0, service="orders")
        tracer.annotate(root.trace_id, root.span_id, "retry-requeued", ts=0.4, attempt=2)
        wire = tracer.start_span(
            "request-wire", trace_id=root.trace_id, parent_id=root.span_id,
            kind="wire", ts=0.1,
        )
        tracer.end_span(wire, ts=0.2)
        tracer.end_span(root, ts=1.0)
        tracer.instant("cache-hit", ts=0.05, member="lookup")
        return tracer.collector, root.trace_id

    def test_chrome_trace_structure(self):
        collector, _ = self._collector()
        data = to_chrome_trace(collector)
        events = data["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in complete} == {"orders.submit", "request-wire"}
        wire = next(e for e in complete if e["cat"] == "wire")
        assert wire["ts"] == pytest.approx(100_000)
        assert wire["dur"] == pytest.approx(100_000)
        assert "parent_id" in wire["args"]
        instants = [e for e in events if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"retry-requeued", "cache-hit"}
        assert any(e["ph"] == "M" for e in events)
        json.dumps(data)  # must be serialisable as-is

    def test_tree_renderer_shows_hierarchy_and_events(self):
        collector, trace_id = self._collector()
        tree = render_trace_tree(collector, trace_id)
        lines = tree.splitlines()
        assert lines[0].startswith("[client] orders.submit")
        assert any(line.startswith("  ! retry-requeued") for line in lines)
        assert any(line.startswith("  [wire] request-wire") for line in lines)

    def test_phase_table_names_every_phase(self):
        collector, trace_id = self._collector()
        table = render_phase_table(collector, trace_id)
        assert "dominant:" in table
        for phase in PHASES:
            assert phase in table


# ---------------------------------------------------------------------------
# the full stack, traced through the façade
# ---------------------------------------------------------------------------


class TestTracedFacade:
    def test_direct_call_spans_every_layer(self, cluster):
        with Session(cluster, node="client") as session:
            policy = (
                ServicePolicy(transport="rmi")
                .with_middleware(MetricsInterceptor(), server=[MetricsInterceptor()])
                .with_tracing()
            )
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            assert svc.submit("sku-1", 2, 10.0) == 0
            collector = session.tracer().collector
        (trace_id,) = collector.trace_ids()
        spans = collector.spans(trace_id)
        root = collector.root(trace_id)
        assert root.kind == "client"
        assert root.name == "orders.submit"
        assert root.attrs["attempts"] == 1
        by_kind = {}
        for span in spans:
            by_kind.setdefault(span.kind, []).append(span)
        # Client + server interceptor spans, tagged with their side.
        sides = {span.attrs["side"] for span in by_kind["interceptor"]}
        assert sides == {"client", "server"}
        # Both wire legs hang off the client root span.
        wires = by_kind["wire"]
        assert {w.name for w in wires} == {"request-wire", "response-wire"}
        assert all(w.parent_id == root.span_id for w in wires)
        # The server dispatch span is parented to the client span too.
        (server,) = by_kind["server"]
        assert server.name == "OrderIntake.submit"
        assert server.parent_id == root.span_id
        assert server.attrs["node"] == "server"
        # Everything settles inside the root interval, and nothing leaks.
        assert collector.open_spans() == []
        for span in spans:
            assert root.start <= span.start
            assert span.end <= root.end

    def test_batch_queue_wait_is_recorded(self, cluster):
        with Session(cluster, node="client") as session:
            policy = ServicePolicy(transport="rmi", batch_window=3).with_tracing()
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            svc.future.submit("sku-0", 1, 10.0)
            cluster.clock.advance(0.005)  # the first call waits in the window
            svc.future.submit("sku-1", 1, 10.0)
            svc.future.submit("sku-2", 1, 10.0)  # window full: flush
            session.drain()
            collector = session.tracer().collector
        queued = [
            span
            for trace_id in collector.trace_ids()
            for span in collector.spans(trace_id)
            if span.name == "batch-queue"
        ]
        assert len(queued) == 1  # later arrivals waited zero time: no span
        assert queued[0].kind == "queue"
        assert queued[0].duration == pytest.approx(0.005)
        assert collector.open_spans() == []

    def test_pipeline_queue_wait_is_recorded(self, cluster):
        with Session(cluster, node="client") as session:
            policy = ServicePolicy(
                transport="rmi", batch_window=1, pipeline_depth=2
            ).with_tracing()
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            for i in range(6):  # window 2: later calls wait for an in-flight slot
                svc.future.submit(f"sku-{i}", 1, 10.0)
            session.drain()
            collector = session.tracer().collector
        queued = [
            span
            for trace_id in collector.trace_ids()
            for span in collector.spans(trace_id)
            if span.name == "pipeline-queue"
        ]
        assert queued, "queued calls must carry a pipeline-queue span"
        assert all(span.kind == "queue" for span in queued)
        assert all(span.duration > 0 for span in queued)
        assert collector.open_spans() == []

    def test_eager_replication_forward_is_a_span(self, cluster):
        with Session(cluster, node="client") as session:
            policy = (
                ServicePolicy(transport="rmi")
                .with_replication(2, quorum=1, fencing=False)
                .with_tracing()
            )
            svc = session.service(
                "orders", policy, impl=OrderIntake(), node="server",
                backup_nodes=["spare"],
            )
            svc.submit("sku-1", 1, 10.0)
            collector = session.tracer().collector
        (trace_id,) = collector.trace_ids()
        forwards = [s for s in collector.spans(trace_id) if s.kind == "replication"]
        assert forwards, "an eager write must trace its replication forward"
        assert forwards[0].name == "replicate"
        assert forwards[0].attrs["op"] == "submit"
        root = collector.root(trace_id)
        assert all(s.parent_id == root.span_id for s in forwards)

    def test_failover_reship_annotates_the_client_span(self, cluster):
        with Session(cluster, node="client") as session:
            policy = (
                ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2)
                .with_replication(2, readonly=("accepted_count",))
                .with_tracing()
            )
            svc = session.service(
                "orders", policy, impl=OrderIntake(), node="server",
                backup_nodes=["spare"],
            )
            futures = []
            for i in range(32):
                if i == 16:
                    cluster.network.failures.crash_node("server")
                futures.append(svc.future.submit(f"sku-{i}", 1, 10))
            session.drain()
            assert all(f.ok for f in futures)
            assert len(session.replica_manager.failovers) == 1
            collector = session.tracer().collector
        reshipped = [
            (span, event)
            for trace_id in collector.trace_ids()
            for span in collector.spans(trace_id)
            for event in span.events
            if event[0] == "failover-reship"
        ]
        assert reshipped, "calls re-shipped after the crash must say so"
        for span, (_, ts, attrs) in reshipped:
            assert span.kind == "client"
            assert span.start <= ts <= span.end
            assert "error" in attrs
        assert collector.open_spans() == []

    def test_cache_hits_and_misses_emit_instants(self, cluster):
        class CachedCatalog:
            def __init__(self):
                self.values = {"a": 1, "b": 2}

            @cacheable
            def lookup(self, key):
                return self.values.get(key)

        with Session(cluster, node="client") as session:
            policy = (
                ServicePolicy(transport="rmi").with_caching(lease_ms=1000).with_tracing()
            )
            svc = session.service(
                "catalog", policy, impl=CachedCatalog(), node="server"
            )
            assert svc.lookup("a") == 1  # miss: fills the cache
            assert svc.lookup("a") == 1  # hit: served locally
            collector = session.tracer().collector
        events = [(name, attrs) for name, _, attrs in collector.instants]
        assert ("cache-miss", {"member": "lookup", "object": svc.reference.object_id}) in [
            (name, attrs) for name, attrs in events
        ]
        assert any(name == "cache-hit" for name, _ in events)
        # The cache hit never went to the wire, so only the miss traced a
        # server span.
        server_spans = [
            span
            for trace_id in collector.trace_ids()
            for span in collector.spans(trace_id)
            if span.kind == "server"
        ]
        assert len(server_spans) == 1

    def test_fractional_sampling_traces_a_subset(self, cluster):
        with Session(cluster, node="client") as session:
            policy = ServicePolicy(transport="rmi").with_tracing(0.5)
            svc = session.service("orders", policy, impl=OrderIntake(), node="server")
            for i in range(8):
                svc.submit(f"sku-{i}", 1, 10.0)
            collector = session.tracer().collector
        assert len(collector.trace_ids()) == 4

    def test_rate_zero_is_wire_identical_to_untraced(self):
        def run(policy):
            cluster = Cluster(("client", "server"))
            with Session(cluster, node="client") as session:
                svc = session.service(
                    "orders", policy, impl=OrderIntake(), node="server"
                )
                for i in range(6):
                    svc.submit(f"sku-{i}", 1, 10.0)
            return (
                cluster.metrics.total_messages,
                cluster.metrics.total_bytes,
                cluster.clock.now,
            )

        plain = run(ServicePolicy(transport="rmi"))
        sampled_out = run(ServicePolicy(transport="rmi").with_tracing(0.0))
        assert sampled_out == plain

    def test_session_close_detaches_the_tracer(self, cluster):
        session = Session(cluster, node="client")
        policy = ServicePolicy(transport="rmi").with_tracing()
        svc = session.service("orders", policy, impl=OrderIntake(), node="server")
        svc.submit("sku-1", 1, 10.0)
        assert cluster.network.tracer is not None
        session.close()
        assert cluster.network.tracer is None


# ---------------------------------------------------------------------------
# acceptance: above the knee, the server queue dominates — exactly
# ---------------------------------------------------------------------------


class TestSaturationAttribution:
    def test_server_queue_dominates_above_the_knee(self):
        result = run_open_loop_scenario(
            Cluster(("client", "server")),
            transport="rmi",
            offered_load=1.5 * (2 / 0.002),  # 1.5x the pool's capacity
            duration=0.4,
            queue_limit=64,
            retry_policy=NO_RETRY,
            tracing=1.0,
        )
        collector = result["trace_collector"]
        assert collector is not None
        assert result["completed"] > 100
        assert collector.open_spans() == []
        paths = slowest_traces(collector, len(collector.trace_ids()))
        assert len(paths) == len(collector.trace_ids())
        for path in paths:
            # The invariant: phases partition the root span exactly.
            assert sum(path.phases_ns.values()) == path.duration_ns
        # Above the knee the slowest calls sat in the admission queue.
        for path in slowest_traces(collector, 5):
            assert path.dominant == "server_queue"
            assert path.share("server_queue") > 0.5
        kinds = {
            span.kind
            for trace_id in collector.trace_ids()
            for span in collector.spans(trace_id)
        }
        assert {"client", "wire", "server_queue", "service", "server"} <= kinds

    def test_untraced_run_collects_nothing(self):
        result = run_open_loop_scenario(
            Cluster(("client", "server")),
            offered_load=100.0,
            duration=0.05,
        )
        assert result["trace_collector"] is None


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


class TestTraceCommand:
    def test_open_loop_breakdown(self):
        code, output = run_cli(
            "trace", "--workload", "open_loop", "--duration", "0.2", "--top", "2"
        )
        assert code == 0
        assert "open_loop on rmi" in output
        assert "traces" in output
        assert output.count("dominant:") == 2
        assert "server_queue" in output

    def test_cached_catalog_with_tree_and_export(self, tmp_path):
        export = tmp_path / "trace.json"
        code, output = run_cli(
            "trace", "--workload", "cached_catalog", "--top", "1",
            "--tree", "--export", str(export),
        )
        assert code == 0
        assert "cached_catalog on rmi" in output
        assert "cache events" in output
        assert "[client]" in output  # the tree rendering
        data = json.loads(export.read_text(encoding="utf-8"))
        names = {event["name"] for event in data["traceEvents"]}
        assert "cache-hit" in names

    def test_rejects_bad_arguments(self):
        code, output = run_cli("trace", "--sample-rate", "7")
        assert code == 1
        assert "--sample-rate" in output
        code, output = run_cli("trace", "--transport", "warp")
        assert code == 1
        assert "unknown transport" in output
        code, output = run_cli("trace", "--top", "0")
        assert code == 1
        assert "--top" in output
