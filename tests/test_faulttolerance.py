"""Unit tests for fault tolerance of remote invocations (paper §4 failure concern)."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import (
    MessageDroppedError,
    PartitionError,
    RedistributionError,
)
from repro.network.failures import FailureModel
from repro.network.simnet import SimulatedNetwork
from repro.policy.policy import all_local_policy, remote
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import (
    NO_RETRY,
    FailureLog,
    FailureObservingInterceptor,
    FaultTolerantInvoker,
    RetryPolicy,
    guard_handle,
)
from repro.runtime.redistribution import DistributionController

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


def _deployed(drop_probability=0.0, seed=0):
    policy = all_local_policy()
    policy.set_class("Y", instances=remote("server", dynamic=True))
    app = ApplicationTransformer(policy).transform(CLASSES)
    failures = FailureModel(drop_probability=drop_probability, seed=seed)
    network = SimulatedNetwork(failures=failures)
    cluster = Cluster(("client", "server"), network=network)
    app.deploy(cluster, default_node="client")
    return app, cluster, failures


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(initial_backoff=0.01, backoff_factor=3.0)
        assert policy.backoff_for_attempt(1) == pytest.approx(0.01)
        assert policy.backoff_for_attempt(2) == pytest.approx(0.03)
        assert policy.backoff_for_attempt(0) == 0.0

    def test_transient_failures_are_retried_up_to_the_limit(self):
        policy = RetryPolicy(max_attempts=3)
        error = MessageDroppedError("lost")
        assert policy.should_retry(error, 1)
        assert policy.should_retry(error, 2)
        assert not policy.should_retry(error, 3)

    def test_fatal_failures_are_not_retried_by_default(self):
        policy = RetryPolicy(max_attempts=5)
        assert not policy.should_retry(PartitionError("split"), 1)
        assert RetryPolicy(retry_fatal=True).should_retry(PartitionError("split"), 1)

    def test_no_retry_policy(self):
        assert not NO_RETRY.should_retry(MessageDroppedError("lost"), 1)


class TestFaultTolerantInvoker:
    def test_success_without_failures_is_transparent(self):
        app, cluster, _ = _deployed()
        y = app.new("Y", 5)
        reference = y.meta.target._ref
        invoker = FaultTolerantInvoker(cluster.space("client"))
        assert invoker.invoke(reference, "n", (3,)) == 8
        assert invoker.log.total_failures == 0

    def test_transient_drops_are_retried_and_logged(self):
        app, cluster, failures = _deployed()
        y = app.new("Y", 5)
        reference = y.meta.target._ref
        invoker = FaultTolerantInvoker(
            cluster.space("client"), policy=RetryPolicy(max_attempts=4, initial_backoff=0.001)
        )

        # Force exactly the next message to drop, then heal.
        failures.drop_probability = 1.0
        with pytest.raises(MessageDroppedError):
            cluster.space("client").invoke_remote(reference, "n", (1,))
        failures.drop_probability = 0.0

        # Now interleave: one drop followed by success, handled by the invoker.
        failures.drop_probability = 1.0

        original_should_drop = failures.should_drop
        calls = {"count": 0}

        def drop_once(source, destination):
            calls["count"] += 1
            return calls["count"] == 1

        failures.should_drop = drop_once  # type: ignore[assignment]
        try:
            assert invoker.invoke(reference, "n", (2,)) == 7
        finally:
            failures.should_drop = original_should_drop
            failures.drop_probability = 0.0

        assert invoker.log.total_failures == 1
        assert invoker.log.recovered_failures == 1
        assert invoker.log.failures_for("n")[0].error_type == "MessageDroppedError"

    def test_exhausted_retries_reraise(self):
        app, cluster, failures = _deployed()
        y = app.new("Y", 5)
        failures.drop_probability = 1.0
        reference = y.meta.target._ref
        invoker = FaultTolerantInvoker(
            cluster.space("client"), policy=RetryPolicy(max_attempts=2, initial_backoff=0.001)
        )
        with pytest.raises(MessageDroppedError):
            invoker.invoke(reference, "n", (2,))
        assert invoker.log.total_failures == 2
        assert invoker.log.unrecovered_failures == 1

    def test_partitions_surface_immediately(self):
        app, cluster, failures = _deployed()
        y = app.new("Y", 5)
        reference = y.meta.target._ref
        failures.partition(["client"], ["server"])
        invoker = FaultTolerantInvoker(cluster.space("client"))
        with pytest.raises(PartitionError):
            invoker.invoke(reference, "n", (2,))
        assert invoker.log.total_failures == 1

    def test_backoff_advances_the_simulated_clock(self):
        app, cluster, failures = _deployed()
        y = app.new("Y", 5)
        reference = y.meta.target._ref
        invoker = FaultTolerantInvoker(
            cluster.space("client"),
            policy=RetryPolicy(max_attempts=3, initial_backoff=0.5, backoff_factor=1.0),
        )
        calls = {"count": 0}

        def drop_twice(source, destination):
            calls["count"] += 1
            return calls["count"] <= 2

        failures.should_drop = drop_twice  # type: ignore[assignment]
        before = cluster.clock.now
        assert invoker.invoke(reference, "n", (2,)) == 7
        assert cluster.clock.now - before >= 1.0  # two backoffs of 0.5 s


class TestGuardHandle:
    def test_guarded_handle_retries_transparently(self):
        app, cluster, failures = _deployed()
        y = app.new("Y", 5)
        log = guard_handle(y, policy=RetryPolicy(max_attempts=3, initial_backoff=0.001))

        calls = {"count": 0}

        def drop_once(source, destination):
            calls["count"] += 1
            return calls["count"] == 1

        failures.should_drop = drop_once  # type: ignore[assignment]
        assert y.n(1) == 6
        assert log.total_failures == 1
        assert log.recovered_failures == 1

    def test_guarding_requires_a_remote_handle(self):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(CLASSES)
        app.deploy(Cluster(("client", "server")), default_node="client")
        y = app.new("Y", 5)  # local handle
        with pytest.raises(RedistributionError):
            guard_handle(y)
        with pytest.raises(RedistributionError):
            guard_handle(object())

    def test_guarded_handle_still_supports_redistribution(self):
        app, cluster, _ = _deployed()
        y = app.new("Y", 5)
        guard_handle(y)
        controller = DistributionController(app, cluster)
        controller.make_local(y)
        assert y.n(4) == 9

    def test_failure_observing_interceptor(self):
        app, cluster, failures = _deployed()
        y = app.new("Y", 5)
        failures.drop_probability = 1.0
        observer = FailureObservingInterceptor()
        y.meta.add_interceptor(observer)
        with pytest.raises(MessageDroppedError):
            y.n(1)
        failures.drop_probability = 0.0
        y.set_base(None)
        with pytest.raises(Exception):
            y.n(1)
        assert observer.network_failures == 1
        assert observer.other_failures == 1

    def test_shared_failure_log_across_handles(self):
        app, cluster, failures = _deployed()
        first = app.new("Y", 1)
        second = app.new("Y", 2)
        shared_log = FailureLog()
        guard_handle(first, log=shared_log, policy=RetryPolicy(max_attempts=2))
        guard_handle(second, log=shared_log, policy=RetryPolicy(max_attempts=2))
        failures.drop_probability = 1.0
        with pytest.raises(MessageDroppedError):
            first.n(1)
        with pytest.raises(MessageDroppedError):
            second.n(1)
        assert shared_log.total_failures == 4  # two attempts each
        shared_log.clear()
        assert shared_log.total_failures == 0
