"""Edge cases of the failure model and naming service exercised by failover.

Failover leans on corners the original tests never reached: healing every
partition a single node participates in (a node rejoining after a split),
nodes that crash, recover and crash again (fail-back), rebinding a
well-known name while other nodes are actively looking it up, and the
partition-heal reconciliation of a fenced ex-primary (divergent
unacknowledged ops discarded, the node re-seeded from the quorum's state).
"""

from __future__ import annotations

import pytest

from repro.api.errors import (
    NamingError,
    NodeUnreachableError,
    PartitionError,
    QuorumLostError,
)
from repro.network.failures import FailureModel
from repro.network.heartbeat import HeartbeatDetector
from repro.network.simnet import SimulatedNetwork
from repro.runtime.cluster import Cluster
from repro.runtime.replication import ReplicaManager
from repro.workloads.bulk_orders import OrderIntake


def _network(failures: FailureModel) -> SimulatedNetwork:
    network = SimulatedNetwork(failures=failures)
    for node in ("a", "b", "c"):
        network.register(node, lambda source, payload: b"ok:" + payload)
    return network


class TestHealSingleNode:
    def test_heals_every_partition_the_node_participates_in(self):
        failures = FailureModel()
        failures.partition(["a"], ["b", "c"])
        failures.partition(["b"], ["c"])
        failures.heal("a")
        assert not failures.is_partitioned("a", "b")
        assert not failures.is_partitioned("c", "a")
        # Partitions not involving the healed node are untouched.
        assert failures.is_partitioned("b", "c")

    def test_single_node_heal_restores_traffic_both_directions(self):
        failures = FailureModel()
        network = _network(failures)
        failures.partition(["a"], ["b"])
        with pytest.raises(PartitionError):
            network.send_request("a", "b", b"x")
        failures.heal("b")
        assert network.send_request("a", "b", b"x") == b"ok:x"
        assert network.send_request("b", "a", b"x") == b"ok:x"

    def test_heal_of_uninvolved_node_changes_nothing(self):
        failures = FailureModel()
        failures.partition(["a"], ["b"])
        failures.heal("c")
        assert failures.is_partitioned("a", "b")

    def test_bare_heal_still_clears_everything(self):
        failures = FailureModel()
        failures.partition(["a"], ["b", "c"])
        failures.heal()
        assert not failures.is_partitioned("a", "b")
        assert not failures.is_partitioned("a", "c")


class TestCrashRecoverCycles:
    def test_crash_recover_crash_cycle_tracks_liveness(self):
        failures = FailureModel()
        for _ in range(3):
            failures.crash_node("a")
            assert failures.is_node_down("a")
            failures.recover_node("a")
            assert not failures.is_node_down("a")

    def test_traffic_follows_each_cycle(self):
        failures = FailureModel()
        network = _network(failures)
        for _ in range(2):
            failures.crash_node("b")
            with pytest.raises(NodeUnreachableError):
                network.send_request("a", "b", b"x")
            failures.recover_node("b")
            assert network.send_request("a", "b", b"x") == b"ok:x"

    def test_crash_is_idempotent_and_recovery_of_healthy_node_is_a_noop(self):
        failures = FailureModel()
        failures.crash_node("a")
        failures.crash_node("a")
        assert failures.is_node_down("a")
        failures.recover_node("a")
        failures.recover_node("a")
        assert not failures.is_node_down("a")

    def test_reset_clears_crashes_and_partitions(self):
        failures = FailureModel()
        failures.crash_node("a")
        failures.partition(["b"], ["c"])
        failures.reset()
        assert not failures.is_node_down("a")
        assert not failures.is_partitioned("b", "c")


class TestRebindVisibility:
    def test_rebind_is_visible_from_every_node(self):
        cluster = Cluster(("a", "b", "c"))
        first = cluster.space("a").export(OrderIntake())
        cluster.naming.bind("orders", first)
        second = cluster.space("b").export(OrderIntake())
        cluster.naming.rebind("orders", second)
        # One shared service: a lookup from any space sees the new binding
        # immediately, and invoking through it reaches the new host.
        for node in ("a", "b", "c"):
            resolved = cluster.naming.lookup("orders")
            assert resolved == second
            assert cluster.space(node).invoke_remote(resolved, "accepted_count") == 0

    def test_rebind_fires_listeners_with_old_and_new(self):
        cluster = Cluster(("a", "b"))
        events = []
        cluster.naming.on_rebind(lambda name, old, new: events.append((name, old, new)))
        first = cluster.space("a").export(OrderIntake())
        cluster.naming.rebind("orders", first)
        second = cluster.space("b").export(OrderIntake())
        cluster.naming.rebind("orders", second)
        assert events == [("orders", None, first), ("orders", first, second)]

    def test_rebind_to_same_reference_is_silent(self):
        cluster = Cluster(("a",))
        events = []
        cluster.naming.on_rebind(lambda *args: events.append(args))
        reference = cluster.space("a").export(OrderIntake())
        cluster.naming.rebind("orders", reference)
        cluster.naming.rebind("orders", reference)
        assert len(events) == 1

    def test_bind_still_rejects_duplicates_and_unbind_missing(self):
        cluster = Cluster(("a",))
        reference = cluster.space("a").export(OrderIntake())
        cluster.naming.bind("orders", reference)
        with pytest.raises(NamingError):
            cluster.naming.bind("orders", reference)
        with pytest.raises(NamingError):
            cluster.naming.unbind("nothing")


class TestPartitionHealReconciliation:
    """A fenced ex-primary's heal: divergence discarded, state re-seeded."""

    def _quorum_cluster(self):
        cluster = Cluster(("monitor", "a", "b", "c"))
        detector = HeartbeatDetector(
            cluster.network, "monitor", interval=0.002, miss_threshold=2
        )
        for node in ("a", "b", "c"):
            detector.watch(node)
        manager = ReplicaManager(cluster, detector=detector)
        detector.start()
        group = manager.replicate(
            OrderIntake(),
            name="orders",
            primary_node="a",
            backup_nodes=["b", "c"],
            readonly=("accepted_count", "rejected_count", "total_units", "revenue"),
            quorum=2,
            fencing=True,
        )
        return cluster, manager, group

    def _pump(self, cluster, seconds):
        cluster.network.events.run_until(cluster.network.clock.now + seconds)

    def _isolate_primary_and_promote(self, cluster, manager, group):
        old_wrapper = group.primary_wrapper
        cluster.network.failures.partition(["a"], ["monitor", "b", "c"])
        # Quorum-acked state before the split: one committed order.
        # (Committed *before* the partition: both backups hold it.)
        return old_wrapper

    def test_divergent_unacked_ops_are_discarded_on_reenlist(self):
        cluster, manager, group = self._quorum_cluster()
        group.primary_wrapper.submit("committed", 1, 10)
        old_wrapper = self._isolate_primary_and_promote(cluster, manager, group)
        # Two writes applied locally on the isolated primary, never acked.
        for attempt in range(2):
            with pytest.raises(QuorumLostError):
                old_wrapper.submit(f"divergent-{attempt}", 1, 10)
        assert len(old_wrapper._divergent_ops) == 2
        assert old_wrapper._group.primary_impl.accepted_count() == 3
        self._pump(cluster, 0.02)
        assert group.epoch == 1  # the majority elected a new primary
        cluster.network.failures.heal()
        self._pump(cluster, 0.1)
        # The re-enlisted node was re-seeded from the quorum's state: the
        # committed write survives, the divergent ones are gone everywhere.
        assert old_wrapper._divergent_ops == []
        assert group.ops_discarded == 2
        assert group.backups["a"].healthy
        assert group.backups["a"].impl.accepted_count() == 1
        assert group.primary_impl.accepted_count() == 1

    def test_reconciliation_is_recorded_with_the_superseded_epoch(self):
        cluster, manager, group = self._quorum_cluster()
        old_wrapper = self._isolate_primary_and_promote(cluster, manager, group)
        with pytest.raises(QuorumLostError):
            old_wrapper.submit("divergent", 1, 10)
        self._pump(cluster, 0.02)
        cluster.network.failures.heal()
        self._pump(cluster, 0.1)
        assert len(manager.reconciliations) == 1
        record = manager.reconciliations[0]
        assert record.node_id == "a"
        assert record.epoch == 0  # the epoch the ex-primary was fenced at
        assert record.ops_discarded == 1
        assert group.stale_primaries == []

    def test_heal_without_divergence_still_reconciles_cleanly(self):
        cluster, manager, group = self._quorum_cluster()
        group.primary_wrapper.submit("committed", 1, 10)
        # The monitor only loses the primary; no write ever diverges.
        cluster.network.failures.partition(["monitor"], ["a"])
        self._pump(cluster, 0.02)
        assert group.epoch == 1
        cluster.network.failures.heal()
        self._pump(cluster, 0.1)
        assert group.ops_discarded == 0
        assert group.stale_primaries == []
        assert group.backups["a"].healthy
        assert group.backups["a"].impl.accepted_count() == 1

    def test_acked_writes_survive_the_full_cycle(self):
        cluster, manager, group = self._quorum_cluster()
        group.primary_wrapper.submit("before", 1, 10)
        old_wrapper = self._isolate_primary_and_promote(cluster, manager, group)
        with pytest.raises(QuorumLostError):
            old_wrapper.submit("never-acked", 1, 10)
        self._pump(cluster, 0.02)
        # Post-promotion writes commit against the new primary.
        group.primary_wrapper.submit("after", 1, 10)
        cluster.network.failures.heal()
        self._pump(cluster, 0.1)
        assert group.primary_impl.accepted_count() == 2
        assert group.acked_writes == 2
        for record in group.backups.values():
            assert record.impl.accepted_count() == 2
