"""Edge cases of the failure model and naming service exercised by failover.

Failover leans on corners the original tests never reached: healing every
partition a single node participates in (a node rejoining after a split),
nodes that crash, recover and crash again (fail-back), and rebinding a
well-known name while other nodes are actively looking it up.
"""

from __future__ import annotations

import pytest

from repro.errors import NamingError, NodeUnreachableError, PartitionError
from repro.network.failures import FailureModel
from repro.network.simnet import SimulatedNetwork
from repro.runtime.cluster import Cluster
from repro.workloads.bulk_orders import OrderIntake


def _network(failures: FailureModel) -> SimulatedNetwork:
    network = SimulatedNetwork(failures=failures)
    for node in ("a", "b", "c"):
        network.register(node, lambda source, payload: b"ok:" + payload)
    return network


class TestHealSingleNode:
    def test_heals_every_partition_the_node_participates_in(self):
        failures = FailureModel()
        failures.partition(["a"], ["b", "c"])
        failures.partition(["b"], ["c"])
        failures.heal("a")
        assert not failures.is_partitioned("a", "b")
        assert not failures.is_partitioned("c", "a")
        # Partitions not involving the healed node are untouched.
        assert failures.is_partitioned("b", "c")

    def test_single_node_heal_restores_traffic_both_directions(self):
        failures = FailureModel()
        network = _network(failures)
        failures.partition(["a"], ["b"])
        with pytest.raises(PartitionError):
            network.send_request("a", "b", b"x")
        failures.heal("b")
        assert network.send_request("a", "b", b"x") == b"ok:x"
        assert network.send_request("b", "a", b"x") == b"ok:x"

    def test_heal_of_uninvolved_node_changes_nothing(self):
        failures = FailureModel()
        failures.partition(["a"], ["b"])
        failures.heal("c")
        assert failures.is_partitioned("a", "b")

    def test_bare_heal_still_clears_everything(self):
        failures = FailureModel()
        failures.partition(["a"], ["b", "c"])
        failures.heal()
        assert not failures.is_partitioned("a", "b")
        assert not failures.is_partitioned("a", "c")


class TestCrashRecoverCycles:
    def test_crash_recover_crash_cycle_tracks_liveness(self):
        failures = FailureModel()
        for _ in range(3):
            failures.crash_node("a")
            assert failures.is_node_down("a")
            failures.recover_node("a")
            assert not failures.is_node_down("a")

    def test_traffic_follows_each_cycle(self):
        failures = FailureModel()
        network = _network(failures)
        for _ in range(2):
            failures.crash_node("b")
            with pytest.raises(NodeUnreachableError):
                network.send_request("a", "b", b"x")
            failures.recover_node("b")
            assert network.send_request("a", "b", b"x") == b"ok:x"

    def test_crash_is_idempotent_and_recovery_of_healthy_node_is_a_noop(self):
        failures = FailureModel()
        failures.crash_node("a")
        failures.crash_node("a")
        assert failures.is_node_down("a")
        failures.recover_node("a")
        failures.recover_node("a")
        assert not failures.is_node_down("a")

    def test_reset_clears_crashes_and_partitions(self):
        failures = FailureModel()
        failures.crash_node("a")
        failures.partition(["b"], ["c"])
        failures.reset()
        assert not failures.is_node_down("a")
        assert not failures.is_partitioned("b", "c")


class TestRebindVisibility:
    def test_rebind_is_visible_from_every_node(self):
        cluster = Cluster(("a", "b", "c"))
        first = cluster.space("a").export(OrderIntake())
        cluster.naming.bind("orders", first)
        second = cluster.space("b").export(OrderIntake())
        cluster.naming.rebind("orders", second)
        # One shared service: a lookup from any space sees the new binding
        # immediately, and invoking through it reaches the new host.
        for node in ("a", "b", "c"):
            resolved = cluster.naming.lookup("orders")
            assert resolved == second
            assert cluster.space(node).invoke_remote(resolved, "accepted_count") == 0

    def test_rebind_fires_listeners_with_old_and_new(self):
        cluster = Cluster(("a", "b"))
        events = []
        cluster.naming.on_rebind(lambda name, old, new: events.append((name, old, new)))
        first = cluster.space("a").export(OrderIntake())
        cluster.naming.rebind("orders", first)
        second = cluster.space("b").export(OrderIntake())
        cluster.naming.rebind("orders", second)
        assert events == [("orders", None, first), ("orders", first, second)]

    def test_rebind_to_same_reference_is_silent(self):
        cluster = Cluster(("a",))
        events = []
        cluster.naming.on_rebind(lambda *args: events.append(args))
        reference = cluster.space("a").export(OrderIntake())
        cluster.naming.rebind("orders", reference)
        cluster.naming.rebind("orders", reference)
        assert len(events) == 1

    def test_bind_still_rejects_duplicates_and_unbind_missing(self):
        cluster = Cluster(("a",))
        reference = cluster.space("a").export(OrderIntake())
        cluster.naming.bind("orders", reference)
        with pytest.raises(NamingError):
            cluster.naming.bind("orders", reference)
        with pytest.raises(NamingError):
            cluster.naming.unbind("nothing")
