"""Unit tests for the §2.4 transformability analysis."""

from __future__ import annotations

import pytest

import sample_app
import sample_unsupported
from repro.core.analyzer import (
    NonTransformableReason,
    TransformabilityAnalyzer,
    analyse_classes,
    substitutable_classes,
)
from repro.core.introspect import class_model_from_descriptor, class_model_from_python
from repro.errors import NotTransformableError


def _models(*classes):
    return [class_model_from_python(cls) for cls in classes]


class TestDirectRules:
    def test_native_methods_exclude_a_class(self):
        result = analyse_classes(_models(sample_unsupported.NativeIO))
        assert not result.is_transformable("NativeIO")
        assert NonTransformableReason.NATIVE_METHODS in result.reasons_for("NativeIO")

    def test_exception_classes_are_special(self):
        result = analyse_classes(_models(sample_unsupported.ProtocolError))
        assert not result.is_transformable("ProtocolError")
        assert NonTransformableReason.SPECIAL_CLASS in result.reasons_for("ProtocolError")

    def test_explicitly_excluded_class(self):
        result = TransformabilityAnalyzer(
            _models(sample_unsupported.CleanHelper), excluded={"CleanHelper"}
        ).analyse()
        assert not result.is_transformable("CleanHelper")
        assert NonTransformableReason.EXPLICIT_EXCLUSION in result.reasons_for("CleanHelper")

    def test_extra_special_class_names(self):
        result = TransformabilityAnalyzer(
            _models(sample_unsupported.CleanHelper),
            special_class_names={"CleanHelper"},
        ).analyse()
        assert not result.is_transformable("CleanHelper")

    def test_clean_class_is_transformable(self):
        result = analyse_classes(_models(sample_unsupported.CleanHelper))
        assert result.is_transformable("CleanHelper")

    def test_sample_application_fully_transformable(self):
        result = analyse_classes(_models(sample_app.X, sample_app.Y, sample_app.Z))
        for name in ("X", "Y", "Z"):
            assert result.is_transformable(name)


class TestClosureRules:
    def test_superclass_of_non_transformable_is_poisoned(self):
        result = analyse_classes(
            _models(sample_unsupported.BaseDevice, sample_unsupported.RawDevice)
        )
        assert not result.is_transformable("RawDevice")
        assert not result.is_transformable("BaseDevice")
        assert (
            NonTransformableReason.SUPERCLASS_OF_NON_TRANSFORMABLE
            in result.reasons_for("BaseDevice")
        )

    def test_classes_referenced_by_non_transformable_are_poisoned(self):
        result = analyse_classes(
            _models(sample_unsupported.NativeIO, sample_unsupported.Codec)
        )
        assert not result.is_transformable("Codec")
        assert (
            NonTransformableReason.REFERENCED_BY_NON_TRANSFORMABLE
            in result.reasons_for("Codec")
        )

    def test_references_from_transformable_classes_do_not_poison(self):
        # X references Y and Z; all three are clean, so references are harmless.
        result = analyse_classes(_models(sample_app.X, sample_app.Y, sample_app.Z))
        assert result.fraction_non_transformable == 0.0

    def test_closure_is_transitive(self):
        a = class_model_from_descriptor("A", native_methods=["jni"])
        b = class_model_from_descriptor("B")
        c = class_model_from_descriptor("C")
        a.referenced_types.add("B")
        b.referenced_types.add("C")
        result = analyse_classes([a, b, c])
        assert not result.is_transformable("B")
        assert not result.is_transformable("C")

    def test_inheritance_chain_propagates_upwards(self):
        grandparent = class_model_from_descriptor("GrandParent")
        parent = class_model_from_descriptor("Parent", superclass="GrandParent")
        child = class_model_from_descriptor("Child", superclass="Parent", native_methods=["jni"])
        result = analyse_classes([grandparent, parent, child])
        assert not result.is_transformable("Parent")
        assert not result.is_transformable("GrandParent")

    def test_unknown_references_are_assumed_non_transformable(self):
        model = class_model_from_descriptor("App", references=["MysteryLib"])
        result = analyse_classes([model])
        assert not result.is_transformable("MysteryLib")
        assert NonTransformableReason.UNKNOWN_DEFINITION in result.reasons_for("MysteryLib")
        # The referencing class itself is unaffected (the edge points outwards).
        assert result.is_transformable("App")

    def test_unknown_handling_can_be_disabled(self):
        model = class_model_from_descriptor("App", references=["MysteryLib"])
        result = TransformabilityAnalyzer(
            [model], treat_unknown_as_non_transformable=False
        ).analyse()
        assert "MysteryLib" not in result.non_transformable


class TestAnalysisResult:
    def _result(self):
        return analyse_classes(
            _models(
                sample_unsupported.NativeIO,
                sample_unsupported.Codec,
                sample_unsupported.CleanHelper,
                sample_unsupported.ProtocolError,
            )
        )

    def test_fractions_sum_to_one(self):
        result = self._result()
        assert result.fraction_transformable + result.fraction_non_transformable == pytest.approx(1.0)

    def test_reasons_histogram_counts_classes(self):
        histogram = self._result().reasons_histogram()
        assert histogram[NonTransformableReason.NATIVE_METHODS] >= 1
        assert histogram[NonTransformableReason.SPECIAL_CLASS] >= 1

    def test_direct_versus_propagated_partition(self):
        result = self._result()
        direct = result.direct_non_transformable()
        propagated = result.propagated_non_transformable()
        assert direct.isdisjoint(propagated)
        assert "NativeIO" in direct
        assert "Codec" in propagated

    def test_summary_is_plain_data(self):
        summary = self._result().summary()
        assert summary["total"] == summary["transformable"] + summary["non_transformable"]
        assert isinstance(summary["reasons"], dict)

    def test_require_transformable_raises_with_reasons(self):
        result = self._result()
        with pytest.raises(NotTransformableError) as excinfo:
            result.require_transformable("NativeIO")
        assert "NativeIO" in str(excinfo.value)
        result.require_transformable("CleanHelper")  # should not raise

    def test_empty_universe_fraction_is_zero(self):
        result = analyse_classes([])
        assert result.fraction_non_transformable == 0.0


class TestSubstitutability:
    def test_policy_restricts_substitutable_set(self):
        result = analyse_classes(_models(sample_app.X, sample_app.Y, sample_app.Z))
        assert substitutable_classes(result, requested=["X", "Y"]) == {"X", "Y"}

    def test_non_transformable_class_cannot_be_substitutable(self):
        result = analyse_classes(
            _models(sample_unsupported.NativeIO, sample_unsupported.CleanHelper)
        )
        assert substitutable_classes(result, requested=["NativeIO", "CleanHelper"]) == {
            "CleanHelper"
        }

    def test_default_is_every_transformable_class(self):
        result = analyse_classes(_models(sample_app.X, sample_app.Y))
        assert substitutable_classes(result) == {"X", "Y"}
