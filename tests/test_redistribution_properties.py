"""Property-based tests for dynamic redistribution.

The paper's central promise is that altering distribution boundaries never
changes what the program computes.  These tests drive a shared object through
*random sequences* of boundary changes (make remote, bring home, move between
nodes, swap transports) interleaved with application calls, and require the
observable results to match the untransformed oracle at every step.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.transformer import ApplicationTransformer
from repro.errors import RedistributionError
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.migration import ObjectMigrator
from repro.runtime.redistribution import DistributionController
from repro.workloads.shared_cache import Cache

NODES = ("alpha", "beta", "gamma")

#: One step of a scenario: either an application call or a boundary change.
_steps = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.integers(0, 15), st.integers(-100, 100)),
        st.tuples(st.just("get"), st.integers(0, 15)),
        st.tuples(st.just("make_remote"), st.sampled_from(NODES)),
        st.tuples(st.just("make_local")),
        st.tuples(st.just("move"), st.sampled_from(NODES)),
        st.tuples(st.just("set_transport"), st.sampled_from(["soap", "rmi", "corba"])),
        st.tuples(st.just("migrate"), st.sampled_from(NODES)),
    ),
    min_size=1,
    max_size=30,
)


def _apply_application_step(cache, oracle, step, observations):
    if step[0] == "put":
        observations.append(("put", cache.put(f"k{step[1]}", step[2]), oracle.put(f"k{step[1]}", step[2])))
    elif step[0] == "get":
        observations.append(("get", cache.get(f"k{step[1]}"), oracle.get(f"k{step[1]}")))


class TestBoundaryChangesPreserveSemantics:
    @given(steps=_steps)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_random_boundary_changes_never_change_results(self, steps):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform([Cache])
        cluster = Cluster(NODES)
        app.deploy(cluster, default_node="alpha")
        controller = DistributionController(app, cluster)
        migrator = ObjectMigrator(app, cluster)

        cache = app.new("Cache", 16)
        oracle = Cache(16)
        observations: list = []

        for step in steps:
            kind = step[0]
            if kind in ("put", "get"):
                _apply_application_step(cache, oracle, step, observations)
                continue
            try:
                if kind == "make_remote":
                    controller.make_remote(cache, step[1])
                elif kind == "make_local":
                    controller.make_local(cache)
                elif kind == "move":
                    controller.move(cache, step[1])
                elif kind == "set_transport":
                    controller.set_transport(cache, step[1])
                elif kind == "migrate":
                    migrator.migrate(cache, step[1])
            except RedistributionError:
                # Redundant changes (already local, already on that node, ...)
                # are rejected loudly but must not corrupt the object.
                pass
            except Exception as error:  # pragma: no cover - MigrationError path
                if type(error).__name__ != "MigrationError":
                    raise

        for kind, observed, expected in observations:
            assert observed == expected, f"{kind} diverged"
        # Final state agrees regardless of where the object ended up.
        assert cache.size() == oracle.size()
        assert cache.hit_rate() == oracle.hit_rate()

    @given(
        moves=st.lists(st.sampled_from(NODES), min_size=1, max_size=8),
        values=st.lists(st.integers(-50, 50), min_size=1, max_size=8),
    )
    @settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_repeated_migration_accumulates_state_correctly(self, moves, values):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform([Cache])
        cluster = Cluster(NODES)
        app.deploy(cluster, default_node="alpha")
        migrator = ObjectMigrator(app, cluster)

        cache = app.new("Cache", 64)
        written = 0
        for index, (node, value) in enumerate(zip(moves, values)):
            cache.put(f"k{index}", value)
            written += 1
            try:
                migrator.migrate(cache, node)
            except Exception as error:
                if type(error).__name__ != "MigrationError":
                    raise
        assert cache.size() == written
        for index, value in enumerate(values[: len(moves)]):
            assert cache.get(f"k{index}") == value

    @given(steps=_steps)
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_boundary_changes_are_logged_consistently(self, steps):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform([Cache])
        cluster = Cluster(NODES)
        app.deploy(cluster, default_node="alpha")
        controller = DistributionController(app, cluster)
        cache = app.new("Cache", 16)

        applied = 0
        for step in steps:
            try:
                if step[0] == "make_remote":
                    controller.make_remote(cache, step[1])
                    applied += 1
                elif step[0] == "make_local":
                    controller.make_local(cache)
                    applied += 1
            except RedistributionError:
                continue
        assert len(controller.changes) == applied
        kind, node = controller.boundary_of(cache)
        if controller.changes:
            assert controller.changes[-1].operation in ("make_remote", "make_local")
            if controller.changes[-1].operation == "make_remote":
                assert kind == "remote"
            else:
                assert kind == "local"
