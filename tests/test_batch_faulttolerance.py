"""Batch-aware fault tolerance: retries and failure isolation on the batch path.

The ROADMAP gap this closes: retry policies used to wrap only the single-call
path.  Here the sync batch path (``FaultTolerantInvoker.invoke_many``), the
pipelined path (``PipelineScheduler``) and the batching ergonomics
(``BatchingProxy`` composed with ``guard_handle``) must all honour a
``RetryPolicy``: a sub-batch hitting a transient ``MessageDroppedError`` is
requeued and retried while the rest of the traffic completes, and fatal
failures (``PartitionError``) surface immediately without retry.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import InvocationError, MessageDroppedError, PartitionError
from repro.network.failures import FailureModel
from repro.network.simnet import SimulatedNetwork
from repro.policy.policy import all_local_policy, remote
from repro.runtime.batching import BatchingProxy
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import (
    FailureLog,
    FaultTolerantInvoker,
    RetryPolicy,
    guard_handle,
)
from repro.runtime.pipelining import PipelineScheduler
from repro.workloads.bulk_orders import OrderIntake


class ScriptedDrops(FailureModel):
    """Drops the first N messages of chosen (source, destination) links."""

    def __init__(self, drops):
        super().__init__()
        self._remaining = dict(drops)

    def should_drop(self, source, destination):
        left = self._remaining.get((source, destination), 0)
        if left > 0:
            self._remaining[(source, destination)] = left - 1
            return True
        return False


def _cluster(drops=None, nodes=("client", "shard-0", "shard-1")):
    failures = ScriptedDrops(drops or {})
    network = SimulatedNetwork(failures=failures)
    return Cluster(nodes, network=network), failures


def _intake_calls(reference, count):
    return [
        (reference, "submit", (f"sku-{index}", 1, 10), {}) for index in range(count)
    ]


class TestInvokeMany:
    def test_transparent_success(self):
        cluster, _ = _cluster()
        intake = OrderIntake()
        reference = cluster.space("shard-0").export(intake)
        invoker = FaultTolerantInvoker(cluster.space("client"))
        results = invoker.invoke_many(_intake_calls(reference, 4))
        assert [result.unwrap() for result in results] == [0, 1, 2, 3]
        assert invoker.log.total_failures == 0

    def test_dropped_batch_is_retried_and_logged_per_call(self):
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        intake = OrderIntake()
        reference = cluster.space("shard-0").export(intake)
        invoker = FaultTolerantInvoker(
            cluster.space("client"), policy=RetryPolicy(max_attempts=3)
        )
        results = invoker.invoke_many(_intake_calls(reference, 4))
        assert [result.unwrap() for result in results] == [0, 1, 2, 3]
        # The lost request never reached the server: no duplicate effects.
        assert intake.accepted_count() == 4
        # One network incident touched four logical calls.
        assert invoker.log.total_failures == 4
        assert invoker.log.recovered_failures == 4
        assert {record.error_type for record in invoker.log.records} == {
            "MessageDroppedError"
        }

    def test_exhausted_retries_reraise(self):
        cluster, _ = _cluster(drops={("client", "shard-0"): 5})
        reference = cluster.space("shard-0").export(OrderIntake())
        invoker = FaultTolerantInvoker(
            cluster.space("client"), policy=RetryPolicy(max_attempts=2)
        )
        with pytest.raises(MessageDroppedError):
            invoker.invoke_many(_intake_calls(reference, 3))
        assert invoker.log.total_failures == 6  # 3 calls x 2 attempts
        assert invoker.log.unrecovered_failures == 3

    def test_fatal_partition_surfaces_without_retry(self):
        cluster, failures = _cluster()
        reference = cluster.space("shard-0").export(OrderIntake())
        failures.partition(["client"], ["shard-0"])
        invoker = FaultTolerantInvoker(
            cluster.space("client"), policy=RetryPolicy(max_attempts=5)
        )
        with pytest.raises(PartitionError):
            invoker.invoke_many(_intake_calls(reference, 2))
        assert all(record.attempt == 1 for record in invoker.log.records)
        assert invoker.log.recovered_failures == 0

    def test_backoff_charged_to_simulated_time(self):
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        reference = cluster.space("shard-0").export(OrderIntake())
        policy = RetryPolicy(max_attempts=2, initial_backoff=0.5)
        invoker = FaultTolerantInvoker(cluster.space("client"), policy=policy)
        invoker.invoke_many(_intake_calls(reference, 2))
        assert cluster.clock.now >= 0.5


class TestPipelinePartialBatchFailure:
    def test_dropped_sub_call_retries_while_the_rest_completes(self):
        """One sub-call's message drops; it is retried per policy while the
        other shard's sub-batch completes undisturbed — partial-batch
        failure never poisons unrelated in-flight traffic."""
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        lonely = cluster.space("shard-0").export(OrderIntake())
        busy_intake = OrderIntake()
        busy = cluster.space("shard-1").export(busy_intake)
        scheduler = PipelineScheduler(
            cluster.space("client"),
            max_batch=8,
            window=4,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        dropped = scheduler.submit(lonely, "submit", "sku-lonely", 1, 10)
        others = [scheduler.submit(busy, "submit", f"sku-{i}", 1, 10) for i in range(5)]
        completions = scheduler.drain()

        assert dropped.result() == 0
        assert [future.result() for future in others] == [0, 1, 2, 3, 4]
        # Exactly the one sub-call was hit, retried once, and recovered.
        assert dropped.attempts == 2
        assert all(future.attempts == 1 for future in others)
        assert scheduler.calls_retried == 1
        assert scheduler.failure_log.total_failures == 1
        assert scheduler.failure_log.recovered_failures == 1
        assert busy_intake.accepted_count() == 5
        # The healthy sub-batch finished before the retried call came back.
        positions = {id(future): pos for pos, future in enumerate(completions)}
        assert positions[id(dropped)] > max(positions[id(f)] for f in others)

    def test_exhausted_sub_batch_fails_with_the_network_error(self):
        cluster, _ = _cluster(drops={("client", "shard-0"): 10})
        doomed_ref = cluster.space("shard-0").export(OrderIntake())
        fine_ref = cluster.space("shard-1").export(OrderIntake())
        scheduler = PipelineScheduler(
            cluster.space("client"),
            max_batch=4,
            window=4,
            retry_policy=RetryPolicy(max_attempts=2),
        )
        doomed = [scheduler.submit(doomed_ref, "submit", f"s{i}", 1, 10) for i in range(2)]
        fine = [scheduler.submit(fine_ref, "submit", f"s{i}", 1, 10) for i in range(2)]
        scheduler.drain()
        for future in doomed:
            assert isinstance(future.exception(), MessageDroppedError)
            assert future.attempts == 2
        assert [future.result() for future in fine] == [0, 1]
        assert scheduler.failure_log.unrecovered_failures == 2

    def test_fatal_partition_fails_futures_without_retry(self):
        cluster, failures = _cluster()
        cut_off = cluster.space("shard-0").export(OrderIntake())
        reachable = cluster.space("shard-1").export(OrderIntake())
        failures.partition(["client"], ["shard-0"])
        scheduler = PipelineScheduler(
            cluster.space("client"),
            max_batch=4,
            window=4,
            retry_policy=RetryPolicy(max_attempts=5),
        )
        lost = [scheduler.submit(cut_off, "submit", f"s{i}", 1, 10) for i in range(3)]
        kept = [scheduler.submit(reachable, "submit", f"s{i}", 1, 10) for i in range(3)]
        scheduler.drain()
        for future in lost:
            assert isinstance(future.exception(), PartitionError)
            assert future.attempts == 1  # fatal: no second attempt
        assert [future.result() for future in kept] == [0, 1, 2]
        assert scheduler.calls_retried == 0

    def test_retry_backoff_is_scheduled_not_blocking(self):
        """The retried sub-batch waits out its backoff on the event queue
        while other traffic proceeds; total time includes the backoff."""
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        reference = cluster.space("shard-0").export(OrderIntake())
        policy = RetryPolicy(max_attempts=2, initial_backoff=0.25)
        scheduler = PipelineScheduler(
            cluster.space("client"), max_batch=4, window=4, retry_policy=policy
        )
        future = scheduler.submit(reference, "submit", "sku", 1, 10)
        scheduler.drain()
        assert future.result() == 0
        assert cluster.clock.now >= 0.25


class TestGuardedHandleBatching:
    """guard_handle + BatchingProxy: guarded handles keep fault tolerance."""

    @staticmethod
    def _guarded_handle(drops=None):
        policy = all_local_policy()
        policy.set_class("Y", instances=remote("server", dynamic=True))
        app = ApplicationTransformer(policy).transform(
            [sample_app.X, sample_app.Y, sample_app.Z]
        )
        failures = ScriptedDrops({})
        network = SimulatedNetwork(failures=failures)
        cluster = Cluster(("client", "server"), network=network)
        app.deploy(cluster, default_node="client")
        handle = app.new("Y", 5)
        log = guard_handle(handle, policy=RetryPolicy(max_attempts=3))
        # Arm the drops only now: deployment and remote instantiation above
        # must not consume them.
        failures._remaining.update(drops or {})
        return handle, cluster, log

    def test_batching_proxy_discovers_the_guard_invoker(self):
        handle, cluster, _ = self._guarded_handle()
        proxy = BatchingProxy(handle, max_batch=8)
        assert proxy._invoker is not None

    def test_guarded_batches_retry_transient_drops(self):
        handle, cluster, log = self._guarded_handle(drops={("client", "server"): 1})
        proxy = BatchingProxy(handle, max_batch=8)
        pending = [proxy.n(value) for value in range(4)]
        proxy.flush()
        # Y(5).n(v) == 5 + v; the dropped batch was retried transparently.
        assert [p.result() for p in pending] == [5, 6, 7, 8]
        assert log.total_failures == 4
        assert log.recovered_failures == 4

    def test_unguarded_proxy_stays_atomic_on_drops(self):
        """Without a guard the historical semantics hold: the batch fails."""
        failing_cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        reference = failing_cluster.space("shard-0").export(OrderIntake())
        proxy = BatchingProxy(
            reference, space=failing_cluster.space("client"), max_batch=8
        )
        pending = proxy.submit("sku", 1, 10)
        with pytest.raises(MessageDroppedError):
            proxy.flush()
        assert isinstance(pending.exception(), MessageDroppedError)

    def test_exception_on_a_pending_call_returns_the_flush_failure(self):
        """exception() honours its contract even when the wait itself raises:
        the call's own failure comes back as the return value."""
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        reference = cluster.space("shard-0").export(OrderIntake())
        proxy = BatchingProxy(reference, space=cluster.space("client"), max_batch=8)
        pending = proxy.submit("sku", 1, 10)
        assert isinstance(pending.exception(), MessageDroppedError)

    def test_explicit_retry_policy_on_a_raw_reference(self):
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        intake = OrderIntake()
        reference = cluster.space("shard-0").export(intake)
        log = FailureLog()
        invoker = FaultTolerantInvoker(
            cluster.space("client"), policy=RetryPolicy(max_attempts=3), log=log
        )
        proxy = BatchingProxy(
            reference, space=cluster.space("client"), max_batch=8, invoker=invoker
        )
        pending = [proxy.submit(f"sku-{i}", 1, 10) for i in range(3)]
        proxy.flush()
        assert [p.result() for p in pending] == [0, 1, 2]
        assert log.recovered_failures == 3

    def test_retry_policy_shortcut_builds_an_invoker(self):
        cluster, _ = _cluster(drops={("client", "shard-0"): 1})
        reference = cluster.space("shard-0").export(OrderIntake())
        proxy = BatchingProxy(
            reference,
            space=cluster.space("client"),
            max_batch=8,
            retry_policy=RetryPolicy(max_attempts=3),
        )
        assert proxy.submit("sku", 1, 10).result() == 0

    def test_invoker_and_retry_policy_are_mutually_exclusive(self):
        cluster, _ = _cluster()
        reference = cluster.space("shard-0").export(OrderIntake())
        with pytest.raises(InvocationError):
            BatchingProxy(
                reference,
                space=cluster.space("client"),
                invoker=FaultTolerantInvoker(cluster.space("client")),
                retry_policy=RetryPolicy(),
            )
