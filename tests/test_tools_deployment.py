"""Unit tests for deployment descriptors."""

from __future__ import annotations

import json

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import PolicyError
from repro.network.simnet import LAN_LINK
from repro.policy.policy import all_local_policy
from repro.tools.deployment import (
    DeploymentDescriptor,
    LinkSpec,
    NodeSpec,
    deployment_from_dict,
    deployment_from_file,
    deployment_from_json,
)

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]

CONFIG = {
    "nodes": [{"id": "client"}, {"id": "server", "default_transport": "rmi"}],
    "default_node": "client",
    "default_link": {"latency": 0.0005, "bandwidth": 12_500_000},
    "links": [{"from": "client", "to": "server", "latency": 0.002, "symmetric": True}],
    "policy": {
        "default": {"placement": "local"},
        "classes": {
            "Y": {"placement": "remote", "node": "server", "transport": "soap", "dynamic": True}
        },
    },
}


class TestSpecs:
    def test_node_spec_round_trip(self):
        spec = NodeSpec.from_dict({"id": "edge", "default_transport": "soap"})
        assert spec.node_id == "edge"
        assert NodeSpec.from_dict(spec.to_dict()) == spec

    def test_node_spec_requires_id(self):
        with pytest.raises(PolicyError):
            NodeSpec.from_dict({})

    def test_link_spec_round_trip_and_config(self):
        spec = LinkSpec.from_dict({"from": "a", "to": "b", "latency": 0.01, "bandwidth": 1000})
        assert spec.to_link_config().latency == 0.01
        assert LinkSpec.from_dict(spec.to_dict()) == spec

    def test_link_spec_requires_endpoints(self):
        with pytest.raises(PolicyError):
            LinkSpec.from_dict({"from": "a"})


class TestDescriptorValidation:
    def test_requires_nodes(self):
        with pytest.raises(PolicyError):
            DeploymentDescriptor(nodes=())

    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(PolicyError):
            DeploymentDescriptor(nodes=(NodeSpec("a"), NodeSpec("a")))

    def test_default_node_must_exist(self):
        with pytest.raises(PolicyError):
            DeploymentDescriptor(nodes=(NodeSpec("a"),), default_node="z")

    def test_link_endpoints_must_exist(self):
        with pytest.raises(PolicyError):
            DeploymentDescriptor(
                nodes=(NodeSpec("a"), NodeSpec("b")),
                links=(LinkSpec("a", "ghost"),),
            )

    def test_default_node_defaults_to_first(self):
        descriptor = DeploymentDescriptor(nodes=(NodeSpec("a"), NodeSpec("b")))
        assert descriptor.default_node == "a"


class TestLoadingAndRoundTrip:
    def test_from_dict(self):
        descriptor = deployment_from_dict(CONFIG)
        assert descriptor.node_ids() == ["client", "server"]
        assert descriptor.default_node == "client"
        assert descriptor.policy.instance_decision("Y").node_id == "server"

    def test_from_json_and_file(self, tmp_path):
        text = json.dumps(CONFIG)
        assert deployment_from_json(text).node_ids() == ["client", "server"]
        path = tmp_path / "deploy.json"
        path.write_text(text, encoding="utf-8")
        assert deployment_from_file(path).default_node == "client"

    def test_round_trip_through_dict(self):
        descriptor = deployment_from_dict(CONFIG)
        rebuilt = deployment_from_dict(descriptor.to_dict())
        assert rebuilt.node_ids() == descriptor.node_ids()
        assert rebuilt.policy.instance_decision("Y") == descriptor.policy.instance_decision("Y")
        assert json.loads(descriptor.to_json())["default_node"] == "client"

    def test_malformed_documents_rejected(self):
        with pytest.raises(PolicyError):
            deployment_from_json("{ not json")
        with pytest.raises(PolicyError):
            deployment_from_dict({"nodes": []})
        with pytest.raises(PolicyError):
            deployment_from_dict("nope")  # type: ignore[arg-type]
        with pytest.raises(PolicyError):
            deployment_from_file("/nonexistent/deploy.json")

    def test_missing_policy_defaults_to_all_local(self):
        descriptor = deployment_from_dict({"nodes": [{"id": "solo"}]})
        assert not descriptor.policy.instance_decision("Anything").is_remote
        assert descriptor.default_link == LAN_LINK


class TestApplyingADeployment:
    def test_build_cluster_installs_links(self):
        descriptor = deployment_from_dict(CONFIG)
        cluster = descriptor.build_cluster()
        assert set(cluster.node_ids()) == {"client", "server"}
        assert cluster.network.link_config("client", "server").latency == 0.002
        assert cluster.network.link_config("server", "client").latency == 0.002

    def test_apply_deploys_the_application(self):
        descriptor = deployment_from_dict(CONFIG)
        app = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        cluster = descriptor.apply(app)
        assert app.is_bound
        assert app.current_space.node_id == "client"
        # The descriptor's policy took effect: Y is remote over SOAP.
        y = app.new("Y", 4)
        assert type(y).__name__ == "Y_O_Redirector"
        assert y.n(1) == 5
        assert cluster.metrics.total_messages > 0

    def test_same_program_two_descriptors(self):
        """The point of the exercise: same code, different captured deployments."""
        single = deployment_from_dict({"nodes": [{"id": "laptop"}]})
        split = deployment_from_dict(CONFIG)

        app_single = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        single.apply(app_single)
        app_split = ApplicationTransformer(all_local_policy()).transform(CLASSES)
        split_cluster = split.apply(app_split)

        local_y = app_single.new("Y", 7)
        remote_y = app_split.new("Y", 7)
        assert local_y.n(3) == remote_y.n(3) == 10
        assert split_cluster.metrics.total_messages > 0
