"""Property-based round-trip tests for the wire layer.

Every transport must satisfy ``decode(encode(x)) == x`` over the whole
wire-value domain (None, bool, int64, float, str, list, dict) — for single
requests and responses AND for batches — because transport
interchangeability, the paper's central claim, only holds if no protocol is
lossy.  Hypothesis drives the generators; the CORBA cases exercise the CDR
alignment machinery of :mod:`repro.transports.codec` with adversarial
string-length / primitive interleavings.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.transports.codec import (
    decode_message,
    decode_message_list,
    encode_message,
    encode_message_list,
)
from repro.transports.corba import CorbaTransport
from repro.transports.inproc import InProcTransport
from repro.transports.rmi import RmiTransport
from repro.transports.soap import SoapTransport

ALL_TRANSPORTS = [SoapTransport(), RmiTransport(), CorbaTransport(), InProcTransport()]

_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

# -- the wire-value domain ---------------------------------------------------
#
# Integers are bounded to int64 (the binary codec packs them as ``!q``);
# floats exclude NaN (NaN != NaN breaks equality, not the codecs); text
# excludes surrogates (not UTF-8-encodable) but deliberately includes
# control characters, XML metacharacters and astral-plane symbols.

wire_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63 - 1),
    st.floats(allow_nan=False, allow_infinity=True),
    st.text(max_size=40),
)

wire_values = st.recursive(
    wire_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=12), children, max_size=4),
    ),
    max_leaves=12,
)

request_dicts = st.fixed_dictionaries(
    {
        "target": st.text(max_size=20),
        "interface": st.text(max_size=20),
        "member": st.text(max_size=20),
        "args": st.lists(wire_values, max_size=4),
        "kwargs": st.dictionaries(st.text(max_size=12), wire_values, max_size=3),
    }
)

response_dicts = st.one_of(
    st.fixed_dictionaries({"result": wire_values}),
    st.fixed_dictionaries(
        {
            "error": st.fixed_dictionaries(
                {"type": st.text(max_size=20), "message": st.text(max_size=60)}
            )
        }
    ),
)


# -- single messages ---------------------------------------------------------


@pytest.mark.parametrize("transport", ALL_TRANSPORTS, ids=lambda t: t.name)
class TestSingleMessageProperties:
    @_SETTINGS
    @given(request=request_dicts)
    def test_request_round_trip(self, transport, request):
        assert transport.decode_request(transport.encode_request(request)) == request

    @_SETTINGS
    @given(response=response_dicts)
    def test_response_round_trip(self, transport, response):
        assert transport.decode_response(transport.encode_response(response)) == response


# -- batches -----------------------------------------------------------------


@pytest.mark.parametrize("transport", ALL_TRANSPORTS, ids=lambda t: t.name)
class TestBatchProperties:
    @_SETTINGS
    @given(requests=st.lists(request_dicts, max_size=5))
    def test_batch_request_round_trip(self, transport, requests):
        payload = transport.encode_batch_request(requests)
        assert transport.decode_batch_request(payload) == requests

    @_SETTINGS
    @given(responses=st.lists(response_dicts, max_size=5))
    def test_batch_response_round_trip(self, transport, responses):
        payload = transport.encode_batch_response(responses)
        assert transport.decode_batch_response(payload) == responses

    @_SETTINGS
    @given(requests=st.lists(request_dicts, min_size=1, max_size=3))
    def test_batch_order_is_preserved(self, transport, requests):
        decoded = transport.decode_batch_request(transport.encode_batch_request(requests))
        assert [r["member"] for r in decoded] == [r["member"] for r in requests]


# -- CDR alignment edge cases ------------------------------------------------


class TestCdrAlignmentProperties:
    """The CORBA path pads primitives to natural boundaries; padding must be
    transparent no matter how string lengths shift the stream offset."""

    @_SETTINGS
    @given(value=wire_values)
    def test_aligned_codec_round_trip(self, value):
        message = {"v": value}
        assert decode_message(encode_message(message, alignment=8), alignment=8) == message

    @_SETTINGS
    @given(
        prefix=st.text(max_size=9),
        numbers=st.lists(
            st.one_of(
                st.integers(min_value=-(2**63), max_value=2**63 - 1),
                st.floats(allow_nan=False),
            ),
            max_size=6,
        ),
    )
    def test_odd_length_strings_before_aligned_primitives(self, prefix, numbers):
        """Strings of arbitrary byte length force every possible misalignment
        ahead of 4- and 8-byte primitives."""
        message = {"prefix": prefix, "numbers": numbers, "tail": prefix + "x"}
        assert decode_message(encode_message(message, alignment=8), alignment=8) == message

    @_SETTINGS
    @given(messages=st.lists(st.fixed_dictionaries({"s": st.text(max_size=7), "f": st.floats(allow_nan=False)}), max_size=5))
    def test_aligned_batch_round_trip(self, messages):
        """Batch items share one alignment stream; each item must still decode."""
        payload = encode_message_list(messages, alignment=8)
        assert decode_message_list(payload, alignment=8) == messages

    @_SETTINGS
    @given(depth_seed=st.lists(st.text(max_size=3), min_size=1, max_size=5))
    def test_nested_containers_keep_alignment_transparent(self, depth_seed):
        """Containers nest the stream deeper while padding accumulates."""
        value: object = 3.5
        for text in depth_seed:
            value = {"k" + text: [value, text, 7]}
        message = {"v": value}
        assert decode_message(encode_message(message, alignment=8), alignment=8) == message
