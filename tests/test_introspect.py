"""Unit tests for reflection-based class-model construction."""

from __future__ import annotations

import pytest

import sample_app
import sample_unsupported
from repro.core.classmodel import TypeRef, Visibility
from repro.core.introspect import (
    class_model_from_descriptor,
    class_model_from_python,
    is_native_function,
    native,
    type_ref_from_annotation,
    universe_from_classes,
    visibility_of,
)


class TestAnnotationHelpers:
    def test_type_ref_from_class_annotation(self):
        assert type_ref_from_annotation(int) == TypeRef("int")

    def test_type_ref_from_string_annotation(self):
        assert type_ref_from_annotation("Order") == TypeRef("Order")

    def test_missing_annotation_maps_to_object(self):
        import inspect

        assert type_ref_from_annotation(inspect.Signature.empty) == TypeRef("object")

    def test_visibility_from_naming_convention(self):
        assert visibility_of("balance") is Visibility.PUBLIC
        assert visibility_of("_internal") is Visibility.PROTECTED
        assert visibility_of("__secret") is Visibility.PRIVATE


class TestNativeMarker:
    def test_decorated_function_is_native(self):
        @native
        def probe():
            return 1

        assert is_native_function(probe)

    def test_builtin_is_native(self):
        assert is_native_function(len)

    def test_plain_function_is_not_native(self):
        def ordinary():
            return 1

        assert not is_native_function(ordinary)


class TestSampleClassIntrospection:
    def test_x_model_members(self):
        model = class_model_from_python(sample_app.X)
        assert model.name == "X"
        assert [f.name for f in model.instance_fields] == ["y"]
        assert [f.name for f in model.static_fields] == ["z"]
        assert [m.name for m in model.instance_methods] == ["m"]
        assert [m.name for m in model.static_methods] == ["p"]
        assert len(model.constructors) == 1

    def test_x_static_initializer_source_is_captured(self):
        model = class_model_from_python(sample_app.X)
        z_field = model.get_field("z")
        assert z_field.is_static
        assert z_field.initializer_source == "Z(Y.K)"

    def test_y_static_constant(self):
        model = class_model_from_python(sample_app.Y)
        k_field = model.get_field("K")
        assert k_field is not None and k_field.is_static
        assert k_field.is_final  # upper-case names are treated as final
        assert k_field.initializer_source == "42"

    def test_constructor_parameters(self):
        model = class_model_from_python(sample_app.X)
        assert model.constructors[0].parameter_names == ("y",)

    def test_method_source_is_available(self):
        model = class_model_from_python(sample_app.X)
        assert "self.y.n(j)" in model.get_method("m").source

    def test_reference_collection_includes_collaborators(self):
        model = class_model_from_python(sample_app.X)
        assert {"Y", "Z"} <= model.referenced_class_names()

    def test_python_class_is_recorded(self):
        model = class_model_from_python(sample_app.Y)
        assert model.python_class is sample_app.Y


class TestSpecialClassIntrospection:
    def test_native_method_detected(self):
        model = class_model_from_python(sample_unsupported.NativeIO)
        assert model.has_native_methods
        assert model.get_method("read_block").is_native
        assert not model.get_method("describe").is_native

    def test_exception_class_flagged(self):
        model = class_model_from_python(sample_unsupported.ProtocolError)
        assert model.is_exception

    def test_superclass_recorded(self):
        model = class_model_from_python(sample_unsupported.RawDevice)
        assert model.superclass_name == "BaseDevice"

    def test_object_superclass_is_ignored(self):
        model = class_model_from_python(sample_unsupported.CleanHelper)
        assert model.superclass_name is None

    def test_rejects_non_class_input(self):
        with pytest.raises(TypeError):
            class_model_from_python(42)  # type: ignore[arg-type]


class TestInstanceFieldDiscovery:
    def test_fields_from_annotations(self):
        class Annotated:
            count: int
            label: str

            def bump(self):
                return self.count

        model = class_model_from_python(Annotated)
        names = {f.name for f in model.instance_fields}
        assert names == {"count", "label"}
        assert model.get_field("count").type == TypeRef("int")

    def test_fields_from_constructor_assignments(self):
        model = class_model_from_python(sample_unsupported.CleanHelper)
        assert [f.name for f in model.instance_fields] == ["value"]

    def test_augmented_assignment_targets_are_found(self):
        class Accumulator:
            def __init__(self):
                self.total = 0

            def add(self, amount):
                self.total += amount
                return self.total

        model = class_model_from_python(Accumulator)
        assert [f.name for f in model.instance_fields] == ["total"]


class TestDescriptorConstruction:
    def test_descriptor_round_trip(self):
        model = class_model_from_descriptor(
            "Widget",
            module="toolkit",
            superclass="Component",
            instance_fields=["width"],
            static_fields=["THEME"],
            instance_methods=["paint"],
            static_methods=["defaults"],
            native_methods=["paint"],
            references=["Canvas"],
        )
        assert model.name == "Widget"
        assert model.superclass_name == "Component"
        assert model.get_field("THEME").is_static
        assert model.get_method("paint").is_native
        assert model.get_method("defaults").is_static
        assert "Canvas" in model.referenced_class_names()

    def test_native_method_not_listed_elsewhere_is_added(self):
        model = class_model_from_descriptor("Driver", native_methods=["poke"])
        assert model.get_method("poke").is_native

    def test_universe_from_classes(self):
        universe = universe_from_classes([sample_app.X, sample_app.Y, sample_app.Z])
        assert universe.names() == {"X", "Y", "Z"}
        assert universe.get("X").get_method("m") is not None
