"""DS103 fixture: remote signatures carrying wire-unserializable types."""

import threading
from typing import IO, Callable, Generator, Optional

from repro.core.interfaces import cacheable


class FileFeeder:
    """Positive: public methods trafficking in process-local resources."""

    @cacheable
    def item_count(self):
        return 0

    def ingest(self, handle: IO[str]):  # expect: DS103
        return handle.read()

    def guard(self, lock: threading.Lock):  # expect: DS103
        return lock

    def transform(self, fn: Optional[Callable[[int], int]] = None):  # expect: DS103
        return fn

    def stream(self) -> Generator[int, None, None]:  # expect: DS103
        yield 0

    def render(self, template="x", formatter=lambda v: v):  # expect: DS103
        return formatter(template)


class SuppressedFeeder:
    """Suppressed: the same signatures, silenced."""

    @cacheable
    def item_count(self):
        return 0

    def ingest(self, handle: IO[str]):  # repro: ignore[DS103]
        return handle.read()


class CleanFeeder:
    """Negative: wire-safe data only; resources stay private."""

    @cacheable
    def item_count(self):
        return 0

    def ingest(self, path: str, payload: bytes):
        return (path, payload)

    def _open_lock(self, lock: threading.Lock):
        return lock
