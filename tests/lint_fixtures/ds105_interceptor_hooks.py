"""DS105 fixture: interceptor settlement hooks that block or raise."""

import subprocess
import time

from repro.api.middleware import Interceptor


class FlakyAuditInterceptor(Interceptor):
    """Positive: settlement hooks that raise and block."""

    def __init__(self):
        self.records = []

    def begin(self, ctx):
        if ctx is None:
            raise ValueError("vetoing in begin is the contract, not a bug")

    def end(self, ctx):
        time.sleep(0.5)  # expect: DS105
        if not self.records:
            raise RuntimeError("no records")  # expect: DS105

    def abort(self, ctx, error):
        subprocess.run(["sync"])  # expect: DS105
        raise error  # expect: DS105


class SuppressedAuditInterceptor(Interceptor):
    """Suppressed: the same settlement bugs, silenced."""

    def end(self, ctx):
        time.sleep(0.5)  # repro: ignore[DS105]


class CleanAuditInterceptor(Interceptor):
    """Negative: settlement hooks only record."""

    def __init__(self):
        self.records = []
        self.aborts = 0

    def begin(self, ctx):
        if ctx is None:
            raise ValueError("veto")

    def end(self, ctx):
        self.records.append(ctx)

    def abort(self, ctx, error):
        self.aborts += 1


class NotAnInterceptor:
    """Negative: end/abort on an unrelated class are just methods."""

    def end(self, ctx):
        raise RuntimeError("fine here")

    def abort(self, ctx):
        time.sleep(0.1)
