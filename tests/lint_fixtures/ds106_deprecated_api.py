"""DS106 fixture: deprecated repro API usage."""

import repro.errors  # noqa: F401  # expect: DS106

from repro.api import ServicePolicy
from repro.errors import PolicyError  # noqa: F401  # expect: DS106


def build_policies():
    """Positive: bare with_replication without a commit-rule choice."""
    bare = ServicePolicy().with_replication(3)  # expect: DS106
    defaulted = ServicePolicy().with_replication()  # expect: DS106
    by_factor = ServicePolicy().with_replication(factor=2)  # expect: DS106
    return bare, defaulted, by_factor


def build_suppressed():
    """Suppressed: legacy mode kept knowingly."""
    return ServicePolicy().with_replication(2)  # repro: ignore[DS106]


def build_clean():
    """Negative: the replication contract is stated explicitly."""
    quorum = ServicePolicy().with_replication(3, quorum="majority")
    fenced = ServicePolicy().with_replication(3, quorum=2, fencing=True)
    legacy = ServicePolicy().with_replication(2, quorum=1, fencing=False)
    return quorum, fenced, legacy
