"""DS107 fixture: tracer spans opened but never ended (span leaks)."""


def leaks_assigned_span(tracer, trace):
    span = tracer.start_span(  # expect: DS107
        "work", trace_id=trace.trace_id, parent_id=trace.span_id, kind="service",
        ts=0.0,
    )
    span.add_event("midpoint", 0.5)  # annotating does not rescue the leak
    return 42


def leaks_discarded_root(tracer):
    tracer.start_trace("fire-and-forget", ts=0.0)  # expect: DS107
    return None


def leaks_despite_condition(tracer, trace, noisy):
    span = tracer.start_span(  # expect: DS107
        "maybe", trace_id=trace.trace_id, parent_id=None, kind="queue", ts=1.0,
    )
    if noisy:
        print(span.name)
    return noisy


def suppressed_leak(tracer):
    span = tracer.start_trace("known-leak", ts=0.0)  # repro: ignore[DS107]
    return span is not None


def ends_on_every_path(tracer, trace, clock):
    span = tracer.start_span(
        "bounded", trace_id=trace.trace_id, parent_id=None, kind="wire", ts=clock.now,
    )
    try:
        return clock.now
    finally:
        tracer.end_span(span, ts=clock.now)


def ends_inside_nested_callback(tracer, trace, schedule):
    span = tracer.start_span(
        "deferred", trace_id=trace.trace_id, parent_id=None, kind="server", ts=0.0,
    )

    def settle():
        tracer.end_span(span, ts=1.0)

    schedule(settle)


def escapes_by_return(tracer):
    return tracer.start_trace("handed-to-caller", ts=0.0)


def escapes_into_container(tracer, open_spans):
    span = tracer.start_trace("parked", ts=0.0)
    open_spans.append(span)


def escapes_into_attribute(tracer, holder):
    span = tracer.start_trace("owned-elsewhere", ts=0.0)
    holder.current = span


def uses_the_with_form(tracer, clock):
    with tracer.span("scoped", kind="client", ts=clock.now):
        return clock.now


def unrelated_start_methods(engine):
    engine.start_span("not-a-tracer-but-flagged-shape-is-ok")  # expect: DS107
    worker = engine.start_worker("different method, not flagged")
    return worker
