"""DS101 fixture: nondeterministic calls in service write methods."""

import random
import time

from repro.core.interfaces import cacheable


class StampedLedger:
    """Positive: writes that cannot replay deterministically."""

    def __init__(self):
        self.entries = []

    @cacheable
    def entry_count(self):
        return len(self.entries)

    def record(self, amount):
        stamp = time.time()  # expect: DS101
        nonce = random.random()  # expect: DS101
        key = id(self.entries)  # expect: DS101
        for bucket in {1, 2, 3}:  # expect: DS101
            amount += bucket
        self.entries.append((stamp, nonce, key, amount))


class SuppressedLedger:
    """Suppressed: the same bug, silenced line by line."""

    @cacheable
    def entry_count(self):
        return 0

    def record(self, amount):
        stamp = time.time()  # repro: ignore[DS101]
        return (stamp, amount)


class CleanLedger:
    """Negative: deterministic writes, nondeterminism only in reads."""

    def __init__(self):
        self.entries = []

    @cacheable
    def entry_count(self):
        return len(self.entries)

    def record(self, amount, stamp):
        self.entries.append((stamp, amount))


class NotAService:
    """Negative: no @cacheable markers, so the heuristic stays quiet."""

    def record(self, amount):
        return (time.time(), random.random(), amount)
