"""Deployable implementations for the deploy-time verification tests.

Unlike the other fixture modules, this one *is* imported: the classes are
handed to :meth:`Session.service` so the gate recovers their source via
:mod:`inspect` (which needs a real file) and the runtime dispatches their
members for the ``cacheable_violations`` cross-check.
"""

from repro.core.interfaces import cacheable


class FlakyLedger:
    """A write method whose effect cannot replay deterministically (DS101)."""

    def __init__(self):
        self.balance = 0.0

    def credit(self, amount):
        import random

        self.balance += amount * random.random()
        return self.balance

    @cacheable
    def total(self):
        return self.balance


class ImpureCatalog:
    """A @cacheable read that rebinds instance state (DS102 at runtime)."""

    def __init__(self):
        self.items = {}
        self.hits = 0

    @cacheable
    def get_item(self, key):  # repro: ignore[DS102]  (runtime test target)
        self.hits += 1
        return self.items.get(key)

    def put_item(self, key, value):
        self.items[key] = value


class InPlaceCatalog:
    """A @cacheable read mutating a container in place — the documented
    blind spot of the runtime check (the static rule covers it)."""

    def __init__(self):
        self.items = {}
        self.log = []

    @cacheable
    def get_item(self, key):  # repro: ignore[DS102]  (runtime test target)
        self.log.append(key)
        return self.items.get(key)

    def put_item(self, key, value):
        self.items[key] = value


class SoundLedger:
    """A clean implementation every policy deploys without findings."""

    def __init__(self):
        self.balance = 0.0

    def credit(self, amount):
        self.balance += amount
        return self.balance

    @cacheable
    def total(self):
        return self.balance
