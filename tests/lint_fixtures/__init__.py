"""Fixture modules for the distribution-safety lint tests.

One module per rule.  These files are linted as *source*, never imported,
so each can freely exhibit the bug its rule catches.  Violating lines
carry an ``# expect: DS1xx`` marker comment; the tests parse those markers
and assert the engine reports exactly the marked (rule, line) pairs —
every fixture also contains a suppressed hit (``# repro: ignore[...]``,
no marker) and a clean negative (neither).
"""
