"""DS102 fixture: @cacheable methods that mutate self state."""

from repro.core.interfaces import cacheable


class CountingCatalog:
    """Positive: a cacheable getter that keeps a hit counter."""

    def __init__(self):
        self.items = {}
        self.hits = 0
        self.log = []

    @cacheable
    def get_item(self, key):
        self.hits += 1  # expect: DS102
        self.log.append(key)  # expect: DS102
        return self.items.get(key)

    def put_item(self, key, value):
        self.items[key] = value


class SuppressedCatalog:
    """Suppressed: the same stale-cache bug, silenced."""

    def __init__(self):
        self.hits = 0

    @cacheable
    def get_item(self, key):
        self.hits += 1  # repro: ignore[DS102]
        return key


class CleanCatalog:
    """Negative: cacheable reads are pure; writes are not cacheable."""

    def __init__(self):
        self.items = {}

    @cacheable
    def get_item(self, key):
        local = []
        local.append(key)
        return self.items.get(key)

    def put_item(self, key, value):
        self.items[key] = value
