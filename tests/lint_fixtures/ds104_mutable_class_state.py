"""DS104 fixture: mutable class-level attributes on service classes."""

from collections import defaultdict, deque

from repro.core.interfaces import cacheable


class SharedRegistry:
    """Positive: class-level containers invisible to replica sync."""

    registry = {}  # expect: DS104
    recent = []  # expect: DS104
    seen = set()  # expect: DS104
    by_owner = defaultdict(list)  # expect: DS104
    backlog: deque = deque()  # expect: DS104

    @cacheable
    def lookup(self, key):
        return self.registry.get(key)

    def register(self, key, value):
        self.registry[key] = value


class SuppressedRegistry:
    """Suppressed: the same shared-state bug, silenced."""

    registry = {}  # repro: ignore[DS104]

    @cacheable
    def lookup(self, key):
        return self.registry.get(key)


class CleanRegistry:
    """Negative: constants stay immutable; state lives per instance."""

    VERSION = 3
    MODES = ("leases", "invalidate")
    LABELS = frozenset({"a", "b"})

    def __init__(self):
        self.registry = {}

    @cacheable
    def lookup(self, key):
        return self.registry.get(key)

    def register(self, key, value):
        self.registry[key] = value
