"""Unit tests for source-code emission of generated artifacts."""

from __future__ import annotations

import ast

import pytest

import sample_app
from repro.core.codegen import (
    emit_class_artifacts,
    emit_class_factory,
    emit_class_local,
    emit_interface,
    emit_local,
    emit_module,
    emit_object_factory,
    emit_proxy,
)
from repro.core.interfaces import extract_class_interface, extract_instance_interface
from repro.core.introspect import class_model_from_python

TRANSFORMED = {"X", "Y", "Z"}


@pytest.fixture(scope="module")
def universe():
    return {
        cls.__name__: class_model_from_python(cls)
        for cls in (sample_app.X, sample_app.Y, sample_app.Z)
    }


def _parses(source: str) -> ast.Module:
    return ast.parse(source)


class TestInterfaceEmission:
    def test_instance_interface_source(self, universe):
        interface = extract_instance_interface(universe["X"], TRANSFORMED)
        source = emit_interface(interface)
        _parses(source)
        assert "class X_O_Int(abc.ABC):" in source
        assert "def get_y(self):" in source
        assert "def set_y(self, y):" in source
        assert "def m(self, j):" in source

    def test_class_interface_source(self, universe):
        interface = extract_class_interface(universe["X"], TRANSFORMED)
        source = emit_interface(interface)
        _parses(source)
        assert "class X_C_Int(abc.ABC):" in source
        assert "def get_z(self):" in source
        assert "def p(self, i):" in source

    def test_empty_interface_emits_pass(self, universe):
        interface = extract_class_interface(universe["Z"], TRANSFORMED)
        source = emit_interface(interface)
        _parses(source)
        assert "pass" in source


class TestLocalEmission:
    def test_local_class_source(self, universe):
        interface = extract_instance_interface(universe["X"], TRANSFORMED)
        source = emit_local(universe["X"], interface, TRANSFORMED, universe)
        _parses(source)
        assert "class X_O_Local(X_O_Int):" in source
        assert "def __init__(self):" in source
        assert "self._y = None" in source
        assert "return self.get_y().n(j)" in source

    def test_class_local_source_is_singleton(self, universe):
        interface = extract_class_interface(universe["X"], TRANSFORMED)
        source = emit_class_local(universe["X"], interface, TRANSFORMED, universe)
        _parses(source)
        assert "class X_C_Local(X_C_Int):" in source
        assert "# singleton declarations" in source
        assert "def get_me(cls):" in source
        assert "return self.get_z().q(i)" in source


class TestProxyEmission:
    def test_soap_proxy_source(self, universe):
        interface = extract_instance_interface(universe["X"], TRANSFORMED)
        source = emit_proxy(universe["X"], interface, "soap")
        _parses(source)
        assert "class X_O_Proxy_SOAP(X_O_Int):" in source
        assert "SOAP-specific initialisation" in source
        assert "transport='soap'" in source

    def test_class_proxy_source(self, universe):
        interface = extract_class_interface(universe["X"], TRANSFORMED)
        source = emit_proxy(universe["X"], interface, "rmi", kind="class")
        _parses(source)
        assert "class X_C_Proxy_RMI(X_C_Int):" in source
        assert "def p(self, i):" in source


class TestFactoryEmission:
    def test_object_factory_source(self, universe):
        source = emit_object_factory(universe["X"], TRANSFORMED, universe)
        _parses(source)
        assert "class X_O_Factory:" in source
        assert "def make(cls):" in source
        assert "def init(that, y" in source
        assert "that.set_y(y)" in source
        assert "def create(cls, *args):" in source

    def test_class_factory_source_uses_two_step_initialisation(self, universe):
        source = emit_class_factory(universe["X"], TRANSFORMED, universe)
        _parses(source)
        assert "class X_C_Factory:" in source
        assert "def discover(cls):" in source
        assert "def clinit(that):" in source
        # Figure 5 shape: make, init with the discovered constant, then set.
        assert "t = Z_O_Factory.make()" in source
        assert "Z_O_Factory.init(t, Y_C_Factory.discover().get_K())" in source
        assert "that.set_z(t)" in source

    def test_factory_without_statics_emits_pass(self, universe):
        source = emit_class_factory(universe["Z"], TRANSFORMED, universe)
        _parses(source)
        assert "pass" in source


class TestWholeClassEmission:
    def test_emit_class_artifacts_covers_all_names(self, universe):
        sources = emit_class_artifacts(universe["X"], TRANSFORMED, universe, ("soap", "rmi"))
        expected = {
            "X_O_Int", "X_O_Local", "X_C_Int", "X_C_Local",
            "X_O_Factory", "X_C_Factory",
            "X_O_Proxy_SOAP", "X_O_Proxy_RMI", "X_C_Proxy_SOAP", "X_C_Proxy_RMI",
            "X_O_BatchProxy_SOAP", "X_O_BatchProxy_RMI",
            "X_C_BatchProxy_SOAP", "X_C_BatchProxy_RMI",
        }
        assert expected == set(sources)

    def test_each_emitted_artifact_is_valid_python(self, universe):
        sources = emit_class_artifacts(universe["X"], TRANSFORMED, universe)
        for name, source in sources.items():
            _parses(source)

    def test_emit_module_combines_artifacts(self, universe):
        module_source = emit_module(universe["X"], TRANSFORMED, universe, ("soap",))
        _parses(module_source)
        assert "import abc" in module_source
        assert "class X_O_Int" in module_source
        assert "class X_O_Proxy_SOAP" in module_source
