"""Cache coherence across failover: the kill-between-write-and-invalidation case.

The sharpest coherence scenario the caching subsystem must survive: a write
executes on the primary (and is eagerly forwarded to the backup), but the
primary dies *before* its invalidation broadcast reaches the readers — the
one window in which a reader's cache still holds the pre-write value of a
committed write.  After promotion, readers must never observe that stale
value: the promoted export re-keys every lookup, the replica manager flushes
leases held against the demoted primary with an explicit invalidation from
the promoted node, and fills whose subscription cannot be placed are never
stored.
"""

from __future__ import annotations

import pytest

from repro.api import CachePolicy, ServicePolicy, Session, cacheable
from repro.runtime.cluster import Cluster
from repro.workloads.cached_catalog import run_cached_catalog_scenario


class Catalog:
    """A key/value service with a cacheable read and a plain write."""

    def __init__(self):
        self.items = {}

    @cacheable
    def get_item(self, key):
        return self.items.get(key)

    def put_item(self, key, value):
        self.items[key] = value
        return len(self.items)


class _CrashAfter:
    """Dispatch hook that crashes a node right after one member executes.

    Installed on the primary's address space: ``after_dispatch`` runs inside
    the dispatcher, *after* the member (and its eager replication forward)
    executed but *before* the space's invalidation broadcast — exactly the
    "kill between a write and its invalidation" instant.
    """

    def __init__(self, cluster, node_id, member):
        self.cluster = cluster
        self.node_id = node_id
        self.member = member
        self.armed = False
        self.fired = False

    def before_dispatch(self, space):
        pass

    def after_dispatch(self, space):
        if self.armed and not self.fired:
            self.fired = True
            self.cluster.network.failures.crash_node(self.node_id)


@pytest.fixture
def cluster():
    return Cluster(("reader", "writer", "primary", "backup"))


class TestKillBetweenWriteAndInvalidation:
    def test_reader_never_observes_the_stale_value_after_promotion(self, cluster):
        reader = Session(cluster, node="reader")
        writer = Session(cluster, node="writer")
        policy = (
            ServicePolicy(transport="rmi", heartbeat_interval=0.002, miss_threshold=2)
            .with_caching(CachePolicy(lease_ms=10_000))  # far beyond the test
            .with_replication(2, readonly=("get_item",))
        )
        svc = reader.service(
            "catalog", policy, impl=Catalog(), node="primary", backup_nodes=["backup"]
        )
        wsvc = writer.service("catalog", ServicePolicy(transport="rmi"))

        wsvc.put_item("a", "v1")
        assert svc.get_item("a") == "v1"  # cached under a very long lease
        old_object_id = svc.reference.object_id

        # The write commits (primary + eager forward to the backup), but the
        # primary dies before broadcasting the invalidation.
        crash = _CrashAfter(cluster, "primary", "put_item")
        cluster.space("primary").add_dispatch_hook(crash)
        crash.armed = True
        assert wsvc.put_item("a", "v2") == 1  # acknowledged: v2 is committed
        assert crash.fired
        # The invalidation was lost: the reader's space never saw one.
        assert cluster.space("reader").invalidations_received == 0

        # The reader's next read rides detection + promotion (its session
        # owns the detector/manager) and must see the committed value.
        group = svc.group
        backup_impl = group.backups["backup"].impl
        assert backup_impl.items["a"] == "v2"  # the eager forward landed
        observed = svc.get_item("a")
        assert observed == "v2", f"stale read after promotion: {observed!r}"
        assert len(reader.replica_manager.failovers) == 1
        # The promoted export re-keys lookups: nothing is served under the
        # demoted primary's object id any more.
        assert svc.reference.object_id != old_object_id

        # Coherence keeps holding against the promoted primary.
        wsvc.put_item("a", "v3")
        assert svc.get_item("a") == "v3"
        reader.close()
        writer.close()

    def test_failover_flushes_leases_held_against_the_demoted_primary(self, cluster):
        """The promoted node sends the demoted primary's subscribers an
        explicit invalidation for the old reference."""
        reader = Session(cluster, node="reader")
        writer = Session(cluster, node="writer")
        policy = (
            ServicePolicy(transport="rmi", heartbeat_interval=0.002, miss_threshold=2)
            .with_caching(CachePolicy(mode="invalidate"))  # no lease to expire
            .with_replication(2, readonly=("get_item",))
        )
        svc = reader.service(
            "catalog", policy, impl=Catalog(), node="primary", backup_nodes=["backup"]
        )
        wsvc = writer.service("catalog", ServicePolicy(transport="rmi"))
        wsvc.put_item("a", "v1")
        assert svc.get_item("a") == "v1"
        assert cluster.space("primary").cache_subscriber_count() == 1

        cluster.network.failures.crash_node("primary")
        # Pump until the detector promotes the backup.
        events = cluster.network.events
        manager = reader.replica_manager
        for _ in range(10_000):
            if manager.failovers:
                break
            assert events.run_next(), "event queue went idle before the failover"
        assert manager.failovers
        # The failover handed the dead primary's subscriber table over and
        # invalidated from the promoted node: the reader's cache is empty.
        assert cluster.space("reader").invalidations_received >= 1
        assert svc.cache.entries_invalidated >= 1
        assert cluster.space("backup").invalidations_sent >= 1
        assert svc.get_item("a") == "v1"  # a fresh fill from the promotion
        reader.close()
        writer.close()

    def test_workload_kill_run_stays_coherent_on_every_transport(self):
        """The bench's kill scenario: zero stale reads across the promotion."""
        for transport in ("inproc", "rmi", "corba", "soap"):
            outcome = run_cached_catalog_scenario(
                Cluster(("client", "writer", "server-0", "server-1")),
                transport=transport,
                rounds=6,
                cached=True,
                replicate=True,
                kill=True,
            )
            assert outcome["stale_reads"] == 0, transport
            assert outcome["failovers"] >= 1, transport
            assert outcome["hit_rate"] > 0.5, transport
