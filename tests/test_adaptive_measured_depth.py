"""Measured (not configured) pipeline depth in the adaptive policy.

PR 2 made ``AdaptiveDistributionManager`` pipeline-aware through a statically
configured ``pipeline_depth``; the ROADMAP flagged the gap that the value was
assumed, never observed.  These tests pin the closing of that gap: the
scheduler samples the in-flight depth it actually achieves, and a manager
connected to it amortises by the *measured* value — which legitimately
differs from the configured window whenever traffic cannot fill it.
"""

from __future__ import annotations

import pytest
import sample_app

from repro.api import ServicePolicy, Session
from repro.core.transformer import ApplicationTransformer
from repro.policy.adaptive import AdaptiveDistributionManager
from repro.policy.policy import place_classes_on
from repro.runtime.cluster import Cluster
from repro.runtime.redistribution import DistributionController
from repro.workloads.bulk_orders import OrderIntake


@pytest.fixture
def cluster():
    return Cluster(("client", "server-0", "server-1"))


def _pipelined_scheduler(cluster, *, window: int, orders: int):
    """Drive a façade stream through ``window`` and return its scheduler."""
    session = Session(cluster, node="client")
    policy = ServicePolicy(transport="rmi", batch_window=8, pipeline_depth=window)
    services = [
        session.service(f"svc-{node}", policy, impl=OrderIntake(), node=node)
        for node in ("server-0", "server-1")
    ]
    futures = [
        services[i % 2].future.submit(f"sku-{i}", 1, 10) for i in range(orders)
    ]
    session.drain()
    assert all(f.ok for f in futures)
    scheduler = services[0].scheduler
    session.close()
    return scheduler


class TestObservedDepth:
    def test_unfilled_window_reports_lower_than_configured(self, cluster):
        # 16 orders over 2 shards at batch 8 = one batch per shard: the
        # configured window of 8 can never hold more than 2 batches.
        scheduler = _pipelined_scheduler(cluster, window=8, orders=16)
        assert scheduler.window == 8
        assert scheduler.depth_samples > 0
        assert scheduler.observed_pipeline_depth < 8
        assert 1.0 <= scheduler.observed_pipeline_depth <= 2.0

    def test_fresh_scheduler_reports_no_overlap(self, cluster):
        session = Session(cluster, node="client")
        svc = session.service(
            "svc",
            ServicePolicy(batch_window=8, pipeline_depth=4),
            impl=OrderIntake(),
            node="server-0",
        )
        assert svc.scheduler.observed_pipeline_depth == 1.0
        session.close()


class TestManagerConsumesMeasuredDepth:
    def _manager(self, *, configured_depth: int) -> AdaptiveDistributionManager:
        app = ApplicationTransformer(
            place_classes_on({"Y": "server-0"}, dynamic=True)
        ).transform([sample_app.X, sample_app.Y, sample_app.Z])
        cluster = Cluster(("client", "server-0", "server-1"))
        app.deploy(cluster, default_node="client")
        controller = DistributionController(app, cluster)
        return AdaptiveDistributionManager(
            app,
            controller,
            min_calls=10,
            batch_size=1,
            pipeline_depth=configured_depth,
        )

    def test_measured_depth_supersedes_configured(self, cluster):
        # Configured for a deep window the traffic never fills.
        manager = self._manager(configured_depth=8)
        scheduler = _pipelined_scheduler(cluster, window=8, orders=16)
        assert manager.effective_pipeline_depth() == 8.0  # not yet connected
        manager.connect_pipeline(scheduler)
        measured = manager.effective_pipeline_depth()
        assert measured == scheduler.observed_pipeline_depth
        assert measured != 8.0, "the observed window must differ from the configured one"

    def test_amortisation_uses_the_measured_value(self, cluster):
        manager = self._manager(configured_depth=8)
        scheduler = _pipelined_scheduler(cluster, window=8, orders=16)

        class FakeMonitor:
            total_calls = 80

        # Configured depth 8 would discount 80 calls to 10; the measured
        # depth (< 2 here) discounts far less, so the signal stays strong.
        configured_view = manager.amortised_call_count(FakeMonitor())
        manager.connect_pipeline(scheduler)
        measured_view = manager.amortised_call_count(FakeMonitor())
        assert configured_view == pytest.approx(10.0)
        assert measured_view > configured_view
        assert measured_view == pytest.approx(80 / scheduler.observed_pipeline_depth)

    def test_disconnect_restores_configured_depth(self, cluster):
        manager = self._manager(configured_depth=4)
        scheduler = _pipelined_scheduler(cluster, window=8, orders=16)
        manager.connect_pipeline(scheduler)
        assert manager.effective_pipeline_depth() != 4.0
        manager.connect_pipeline(None)
        assert manager.effective_pipeline_depth() == 4.0
