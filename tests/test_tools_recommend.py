"""Unit tests for the placement recommender (capturing/deciding policy)."""

from __future__ import annotations

import networkx
import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.tools.recommend import (
    ClassAffinity,
    PlacementRecommender,
    profile_and_recommend,
)
from repro.workloads.orders import Catalog, CustomerSession, OrderStore, seed_catalog

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


@pytest.fixture
def profiled_app():
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(CLASSES)
    cluster = Cluster(("front", "back", "archive"))
    app.deploy(cluster, default_node="front")
    return app, cluster


class TestClassAffinity:
    def test_dominant_node_and_share(self):
        affinity = ClassAffinity("Cache")
        affinity.calls_per_node.update({"a": 30, "b": 10})
        assert affinity.total_calls == 40
        assert affinity.dominant_node() == "a"
        assert affinity.dominant_share() == pytest.approx(0.75)

    def test_empty_affinity(self):
        affinity = ClassAffinity("Cache")
        assert affinity.dominant_node() is None
        assert affinity.dominant_share() == 0.0


class TestRecommender:
    def test_attach_all_covers_every_handle(self, profiled_app):
        app, _ = profiled_app
        app.new("Y", 1)
        app.new("Z", 2)
        recommender = PlacementRecommender(app)
        assert recommender.attach_all() == 2
        assert recommender.attach_all() == 0  # idempotent

    def test_recommends_the_dominant_calling_node(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=5, threshold=0.6)
        recommender.attach_all()
        with app.executing_on("back"):
            for _ in range(12):
                y.n(1)
        recommendation = recommender.recommend()
        assert recommendation.placement == {"Y": "back"}
        assert recommendation.undecided == []
        assert "Y" in recommendation.describe()

    def test_insufficient_calls_leave_a_class_undecided(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=50)
        recommender.attach_all()
        y.n(1)
        recommendation = recommender.recommend()
        assert recommendation.placement == {}
        assert recommendation.undecided == ["Y"]

    def test_no_dominant_node_leaves_a_class_undecided(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=4, threshold=0.9)
        recommender.attach_all()
        for _ in range(5):
            y.n(1)
        with app.executing_on("back"):
            for _ in range(5):
                y.n(1)
        recommendation = recommender.recommend()
        assert "Y" in recommendation.undecided

    def test_reset_clears_observations(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=1)
        recommender.attach_all()
        y.n(1)
        recommender.reset()
        assert recommender.recommend().placement == {}

    def test_multiple_instances_of_a_class_aggregate(self, profiled_app):
        app, _ = profiled_app
        first = app.new("Y", 1)
        second = app.new("Y", 2)
        recommender = PlacementRecommender(app, min_calls=6, threshold=0.6)
        recommender.attach_all()
        with app.executing_on("archive"):
            for _ in range(4):
                first.n(1)
            for _ in range(4):
                second.n(1)
        recommendation = recommender.recommend()
        assert recommendation.placement == {"Y": "archive"}
        assert recommendation.affinities["Y"].total_calls == 8


class TestRecommendationOutputs:
    def test_to_policy_places_remote_classes(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=5)
        recommender.attach_all()
        with app.executing_on("back"):
            for _ in range(10):
                y.n(1)
        recommendation = recommender.recommend()
        policy = recommendation.to_policy(transport="soap", home_node="front")
        decision = policy.instance_decision("Y")
        assert decision.is_remote and decision.node_id == "back"
        assert decision.transport == "soap"

    def test_to_policy_keeps_home_classes_local(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=2)
        recommender.attach_all()
        for _ in range(5):
            y.n(1)
        recommendation = recommender.recommend()
        assert recommendation.placement == {"Y": "front"}
        policy = recommendation.to_policy(home_node="front")
        assert not policy.instance_decision("Y").is_remote

    def test_affinity_graph_is_bipartite_weighted(self, profiled_app):
        app, _ = profiled_app
        y = app.new("Y", 1)
        recommender = PlacementRecommender(app, min_calls=1)
        recommender.attach_all()
        y.n(1)
        with app.executing_on("back"):
            y.n(2)
        graph = recommender.recommend().affinity_graph()
        assert isinstance(graph, networkx.Graph)
        assert graph.nodes["Y"]["kind"] == "class"
        assert graph.nodes["front"]["kind"] == "node"
        assert graph["Y"]["front"]["weight"] == 1
        assert graph["Y"]["back"]["weight"] == 1


class TestProfileAndRecommend:
    def test_end_to_end_profiling_of_the_orders_workload(self):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
            [Catalog, OrderStore, CustomerSession]
        )
        cluster = Cluster(("front", "warehouse"))
        app.deploy(cluster, default_node="front")

        catalog = app.new("Catalog")
        orders = app.new("OrderStore")
        seed_catalog(catalog, 8)

        def workload():
            session = app.new("CustomerSession", "c", catalog, orders)
            for index in range(12):
                session.browse([f"sku-{index % 8}"])
                if index % 3 == 0:
                    session.buy(f"sku-{index % 8}", 1)
            with app.executing_on("warehouse"):
                for order_id in list(orders.pending()):
                    orders.fulfil(order_id)
                for _ in range(20):
                    orders.order_count()

        recommendation = profile_and_recommend(app, workload, min_calls=5, threshold=0.55)
        assert recommendation.placement.get("Catalog") == "front"
        assert recommendation.placement.get("OrderStore") == "warehouse"
