"""Unit tests for dynamic distribution-boundary changes."""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import RedistributionError
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.redistribution import DistributionController

CLASSES = [sample_app.X, sample_app.Y, sample_app.Z]


@pytest.fixture
def controller_setup():
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(CLASSES)
    cluster = Cluster(("client", "server", "backup"))
    app.deploy(cluster, default_node="client")
    return app, cluster, DistributionController(app, cluster)


class TestMakeRemote:
    def test_local_object_becomes_remote(self, controller_setup):
        app, cluster, controller = controller_setup
        y = app.new("Y", 5)
        change = controller.make_remote(y, "server")
        assert change.operation == "make_remote"
        assert controller.boundary_of(y) == ("remote", "server")
        assert y.n(1) == 6
        assert cluster.metrics.total_messages > 0

    def test_state_is_preserved_across_the_boundary_change(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        y.set_base(50)
        controller.make_remote(y, "server")
        assert y.get_base() == 50

    def test_references_held_by_other_objects_follow(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        x = app.new("X", y)
        controller.make_remote(y, "server")
        assert x.m(3) == 8  # X still reaches Y through the rebound handle

    def test_making_an_object_remote_twice_on_same_node_fails(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server")
        with pytest.raises(RedistributionError):
            controller.make_remote(y, "server")

    def test_transport_can_be_chosen_per_move(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server", transport="soap")
        assert type(y.meta.target).__name__ == "Y_O_Proxy_SOAP"

    def test_non_dynamic_objects_cannot_be_redistributed(self, controller_setup):
        app, _, controller = controller_setup
        plain = app.new_local("Y", 5)
        with pytest.raises(RedistributionError):
            controller.make_remote(plain, "server")


class TestMakeLocalAndMove:
    def test_remote_object_can_be_brought_home(self, controller_setup):
        app, cluster, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server")
        controller.make_local(y)
        assert controller.boundary_of(y) == ("local", "client")
        before = cluster.metrics.total_messages
        assert y.n(2) == 7
        assert cluster.metrics.total_messages == before  # local again: no traffic

    def test_make_local_on_local_object_fails(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        with pytest.raises(RedistributionError):
            controller.make_local(y)

    def test_move_between_remote_nodes(self, controller_setup):
        app, cluster, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server")
        change = controller.move(y, "backup")
        assert change.operation == "move"
        assert controller.boundary_of(y) == ("remote", "backup")
        assert cluster.space("server").object_count() == 0
        assert cluster.space("backup").object_count() == 1
        assert y.n(4) == 9

    def test_move_of_a_local_object_is_equivalent_to_make_remote(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        controller.move(y, "server")
        assert controller.boundary_of(y) == ("remote", "server")

    def test_move_to_the_same_node_fails(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server")
        with pytest.raises(RedistributionError):
            controller.move(y, "server")


class TestTransportExchange:
    def test_set_transport_swaps_the_proxy_in_place(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server", transport="rmi")
        controller.set_transport(y, "corba")
        assert type(y.meta.target).__name__ == "Y_O_Proxy_CORBA"
        assert y.n(1) == 6

    def test_set_transport_requires_a_remote_object(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        with pytest.raises(RedistributionError):
            controller.set_transport(y, "soap")


class TestChangeLog:
    def test_every_applied_change_is_recorded(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        controller.make_remote(y, "server")
        controller.set_transport(y, "soap")
        controller.make_local(y)
        assert [change.operation for change in controller.changes] == [
            "make_remote",
            "set_transport",
            "make_local",
        ]

    def test_changes_record_class_and_target(self, controller_setup):
        app, _, controller = controller_setup
        y = app.new("Y", 5)
        change = controller.make_remote(y, "server", transport="soap")
        assert change.class_name == "Y"
        assert change.node_id == "server"
        assert change.transport == "soap"
