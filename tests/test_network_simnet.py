"""Unit tests for the simulated network, failure model and traffic metrics."""

from __future__ import annotations

import pytest

from repro.errors import MessageDroppedError, NodeUnreachableError, PartitionError
from repro.network.failures import FailureModel, NoFailures
from repro.network.metrics import NetworkMetrics
from repro.network.simnet import LAN_LINK, WAN_LINK, LinkConfig, SimulatedNetwork


def _echo_network(**kwargs) -> SimulatedNetwork:
    network = SimulatedNetwork(**kwargs)
    network.register("a", lambda source, payload: b"a:" + payload)
    network.register("b", lambda source, payload: b"b:" + payload)
    return network


class TestLinkConfig:
    def test_one_way_delay_includes_latency_and_transmission(self):
        import random

        link = LinkConfig(latency=0.001, bandwidth=1000.0, jitter=0.0)
        delay = link.one_way_delay(500, random.Random(0))
        assert delay == pytest.approx(0.001 + 0.5)

    def test_zero_bandwidth_means_no_transmission_cost(self):
        import random

        link = LinkConfig(latency=0.0, bandwidth=0.0)
        assert link.one_way_delay(10_000, random.Random(0)) == 0.0

    def test_wan_is_slower_than_lan(self):
        import random

        rng = random.Random(0)
        assert WAN_LINK.one_way_delay(1000, rng) > LAN_LINK.one_way_delay(1000, rng)


class TestMessageExchange:
    def test_request_response_roundtrip(self):
        network = _echo_network()
        assert network.send_request("a", "b", b"ping") == b"b:ping"

    def test_clock_advances_for_remote_exchange(self):
        network = _echo_network()
        network.send_request("a", "b", b"ping")
        assert network.clock.now > 0.0

    def test_same_node_exchange_is_free(self):
        network = _echo_network()
        assert network.send_request("a", "a", b"ping") == b"a:ping"
        assert network.clock.now == 0.0
        assert network.metrics.total_messages == 0

    def test_metrics_record_both_directions(self):
        network = _echo_network()
        network.send_request("a", "b", b"ping")
        assert network.metrics.messages_between("a", "b") == 1
        assert network.metrics.messages_between("b", "a") == 1
        assert network.metrics.total_bytes > 0

    def test_unknown_destination_raises(self):
        network = _echo_network()
        with pytest.raises(NodeUnreachableError):
            network.send_request("a", "ghost", b"ping")

    def test_unregister_makes_node_unreachable(self):
        network = _echo_network()
        network.unregister("b")
        with pytest.raises(NodeUnreachableError):
            network.send_request("a", "b", b"ping")

    def test_per_link_override_changes_latency(self):
        fast = _echo_network()
        slow = _echo_network()
        slow.set_symmetric_link("a", "b", WAN_LINK)
        fast.send_request("a", "b", b"x" * 100)
        slow.send_request("a", "b", b"x" * 100)
        assert slow.clock.now > fast.clock.now

    def test_nodes_listing(self):
        network = _echo_network()
        assert network.nodes() == {"a", "b"}
        assert network.is_registered("a")

    def test_reset_metrics(self):
        network = _echo_network()
        network.send_request("a", "b", b"ping")
        network.reset_metrics()
        assert network.metrics.total_messages == 0


class TestFailureInjection:
    def test_partition_blocks_traffic(self):
        failures = FailureModel()
        failures.partition(["a"], ["b"])
        network = _echo_network(failures=failures)
        with pytest.raises(PartitionError):
            network.send_request("a", "b", b"ping")

    def test_heal_restores_traffic(self):
        failures = FailureModel()
        failures.partition(["a"], ["b"])
        network = _echo_network(failures=failures)
        failures.heal()
        assert network.send_request("a", "b", b"ping") == b"b:ping"

    def test_heal_specific_pair(self):
        failures = FailureModel()
        failures.partition(["a"], ["b", "c"])
        failures.heal("a", "b")
        assert not failures.is_partitioned("a", "b")
        assert failures.is_partitioned("a", "c")

    def test_crashed_node_is_unreachable(self):
        failures = FailureModel()
        failures.crash_node("b")
        network = _echo_network(failures=failures)
        with pytest.raises(NodeUnreachableError):
            network.send_request("a", "b", b"ping")
        failures.recover_node("b")
        assert network.send_request("a", "b", b"ping") == b"b:ping"

    def test_message_loss_is_deterministic_for_a_seed(self):
        failures = FailureModel(drop_probability=1.0, seed=3)
        network = _echo_network(failures=failures)
        with pytest.raises(MessageDroppedError):
            network.send_request("a", "b", b"ping")
        assert network.metrics.total_drops == 1

    def test_invalid_drop_probability_rejected(self):
        with pytest.raises(ValueError):
            FailureModel(drop_probability=1.5)

    def test_no_failures_model_never_drops(self):
        model = NoFailures()
        assert not model.should_drop("a", "b")


class TestNetworkMetrics:
    def test_link_accumulation_and_means(self):
        metrics = NetworkMetrics()
        metrics.record("a", "b", 100, 0.001)
        metrics.record("a", "b", 300, 0.003)
        link = metrics.link("a", "b")
        assert link.messages == 2
        assert link.bytes_sent == 400
        assert link.mean_latency == pytest.approx(0.002)
        assert link.mean_message_size == pytest.approx(200.0)

    def test_messages_from_aggregates_by_source(self):
        metrics = NetworkMetrics()
        metrics.record("a", "b", 10, 0.0)
        metrics.record("a", "c", 10, 0.0)
        metrics.record("b", "a", 10, 0.0)
        assert metrics.messages_from("a") == 2

    def test_snapshot_is_plain_data(self):
        metrics = NetworkMetrics()
        metrics.record("a", "b", 10, 0.5)
        snapshot = metrics.snapshot()
        assert snapshot["messages"] == 1
        assert "a->b" in snapshot["links"]

    def test_empty_link_means_are_zero(self):
        metrics = NetworkMetrics()
        assert metrics.link("x", "y").mean_latency == 0.0
        assert metrics.link("x", "y").mean_message_size == 0.0
