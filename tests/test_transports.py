"""Unit tests for the interchangeable transports (SOAP, RMI, CORBA, in-process)."""

from __future__ import annotations

import pytest

from repro.errors import TransportError, UnknownTransportError
from repro.transports.base import TransportRegistry, frame_message, unframe_message
from repro.transports.codec import BinaryReader, BinaryWriter, decode_message, encode_message
from repro.transports.corba import CorbaTransport
from repro.transports.inproc import InProcTransport
from repro.transports.rmi import RmiTransport
from repro.transports.soap import SoapTransport

ALL_TRANSPORTS = [SoapTransport(), RmiTransport(), CorbaTransport(), InProcTransport()]

SAMPLE_REQUEST = {
    "target": "server:12",
    "interface": "Cache_O_Int",
    "member": "put",
    "args": ["key-1", 42, 3.5, True, None, [1, 2, 3], {"nested": "map"}],
    "kwargs": {"overwrite": False},
}

SAMPLE_RESPONSE_OK = {"result": {"__kind__": "list", "items": [1, "two", None]}}
SAMPLE_RESPONSE_ERROR = {"error": {"type": "KeyError", "message": "missing"}}


@pytest.mark.parametrize("transport", ALL_TRANSPORTS, ids=lambda t: t.name)
class TestRoundTrips:
    def test_request_round_trip(self, transport):
        payload = transport.encode_request(SAMPLE_REQUEST)
        assert isinstance(payload, bytes) and payload
        decoded = transport.decode_request(payload)
        assert decoded["target"] == SAMPLE_REQUEST["target"]
        assert decoded["member"] == "put"
        assert list(decoded["args"]) == list(SAMPLE_REQUEST["args"])
        assert decoded["kwargs"] == SAMPLE_REQUEST["kwargs"]

    def test_success_response_round_trip(self, transport):
        payload = transport.encode_response(SAMPLE_RESPONSE_OK)
        decoded = transport.decode_response(payload)
        assert decoded["result"] == SAMPLE_RESPONSE_OK["result"]

    def test_error_response_round_trip(self, transport):
        payload = transport.encode_response(SAMPLE_RESPONSE_ERROR)
        decoded = transport.decode_response(payload)
        assert decoded["error"]["type"] == "KeyError"
        assert decoded["error"]["message"] == "missing"

    def test_empty_arguments(self, transport):
        request = {"target": "t", "interface": "I", "member": "m", "args": [], "kwargs": {}}
        decoded = transport.decode_request(transport.encode_request(request))
        assert list(decoded["args"]) == []
        assert decoded["kwargs"] == {}

    def test_unicode_strings_survive(self, transport):
        request = dict(SAMPLE_REQUEST, args=["héllo wörld ✓"])
        decoded = transport.decode_request(transport.encode_request(request))
        assert decoded["args"][0] == "héllo wörld ✓"

    def test_malformed_payload_raises(self, transport):
        with pytest.raises(TransportError):
            transport.decode_request(b"\x00\x01garbage that is not a message")


class TestRelativeCosts:
    """The paper's transports differ in verbosity; the ordering must hold."""

    def test_soap_messages_are_larger_than_binary_ones(self):
        soap = SoapTransport().encode_request(SAMPLE_REQUEST)
        rmi = RmiTransport().encode_request(SAMPLE_REQUEST)
        corba = CorbaTransport().encode_request(SAMPLE_REQUEST)
        assert len(soap) > len(corba) > len(rmi)

    def test_processing_overhead_ordering(self):
        assert SoapTransport().processing_overhead > CorbaTransport().processing_overhead
        assert CorbaTransport().processing_overhead > RmiTransport().processing_overhead
        assert InProcTransport().processing_overhead == 0.0

    def test_message_type_confusion_is_detected(self):
        rmi = RmiTransport()
        request_payload = rmi.encode_request(SAMPLE_REQUEST)
        with pytest.raises(TransportError):
            rmi.decode_response(request_payload)

    def test_corba_header_carries_body_length(self):
        corba = CorbaTransport()
        payload = corba.encode_request(SAMPLE_REQUEST)
        with pytest.raises(TransportError):
            corba.decode_request(payload[:-1])  # truncated body


class TestBinaryCodec:
    def test_scalar_round_trips(self):
        for value in (None, True, False, 0, -17, 2**40, 3.25, "text", ""):
            writer = BinaryWriter()
            writer.write_value(value)
            assert BinaryReader(writer.getvalue()).read_value() == value

    def test_nested_structures(self):
        value = {"list": [1, [2, {"x": None}]], "flag": True}
        assert decode_message(encode_message(value)) == value

    def test_alignment_round_trip(self):
        value = {"a": 1, "b": [1.5, 2.5], "c": "padded"}
        assert decode_message(encode_message(value, alignment=8), alignment=8) == value

    def test_non_string_map_keys_rejected(self):
        writer = BinaryWriter()
        with pytest.raises(TransportError):
            writer.write_value({1: "x"})

    def test_unmarshallable_python_object_rejected(self):
        writer = BinaryWriter()
        with pytest.raises(TransportError):
            writer.write_value(object())

    def test_truncated_stream_detected(self):
        payload = encode_message({"k": "value"})
        with pytest.raises(TransportError):
            decode_message(payload[:-3])


class TestRegistryAndFraming:
    def test_registry_lookup(self):
        registry = TransportRegistry(ALL_TRANSPORTS)
        assert registry.get("soap").name == "soap"
        assert "rmi" in registry
        assert registry.names() == {"soap", "rmi", "corba", "inproc"}
        assert len(registry) == 4

    def test_unknown_transport_raises_with_available_listing(self):
        registry = TransportRegistry([RmiTransport()])
        with pytest.raises(UnknownTransportError) as excinfo:
            registry.get("iiop")
        assert "rmi" in str(excinfo.value)

    def test_frame_unframe_round_trip(self):
        framed = frame_message("soap", b"<xml/>")
        assert unframe_message(framed) == ("soap", b"<xml/>")

    def test_frame_preserves_binary_bodies_containing_newlines(self):
        framed = frame_message("rmi", b"line1\nline2")
        name, body = unframe_message(framed)
        assert name == "rmi" and body == b"line1\nline2"

    def test_unframe_rejects_malformed_payload(self):
        with pytest.raises(TransportError):
            unframe_message(b"no-prefix-here")

    def test_soap_rejects_non_wire_values(self):
        with pytest.raises(TransportError):
            SoapTransport().encode_request({"target": "t", "member": "m", "args": [object()], "kwargs": {}})
