"""Snapshot tests pinning the public ``repro.api`` surface.

The façade is the library's compatibility contract: user code imports from
``repro.api`` and nowhere else.  These tests pin the exported names, the
:class:`~repro.api.policy.ServicePolicy` builder-method signatures and the
:class:`~repro.api.session.Session` public methods against explicit
snapshots, so any PR that renames, removes or accidentally grows the
surface fails with a readable diff (what appeared vs what disappeared)
instead of a silent break for downstream imports.

Additions are deliberate decisions too: extending the surface means
updating the snapshot here, which makes the change visible in review.
"""

from __future__ import annotations

import inspect

import repro.api as api
from repro.api import ServicePolicy, Session
from repro.api import errors

#: The façade's exported names — the only supported import surface.
EXPECTED_API_ALL = (
    "CachePolicy",
    "CallContext",
    "DeadlineInterceptor",
    "FutureView",
    "Interceptor",
    "InterceptorChain",
    "MetricsInterceptor",
    "RateLimitInterceptor",
    "Service",
    "ServicePolicy",
    "Session",
    "cacheable",
    "errors",
)

#: ServicePolicy's public builder/helper methods.
EXPECTED_POLICY_METHODS = (
    "scheduler_key",
    "with_batching",
    "with_caching",
    "with_middleware",
    "with_pipelining",
    "with_replication",
    "with_retry",
    "with_static_checks",
    "with_tenant",
    "with_tracing",
    "with_transport",
)

#: Signatures of the builders user code chains on (the redesign contract).
EXPECTED_POLICY_SIGNATURES = {
    "with_replication": (
        "(self, replicas: 'Optional[int]' = None, "
        "quorum: 'Optional[Union[int, str]]' = None, "
        "fencing: 'Optional[bool]' = None, *, factor: 'Optional[int]' = None, "
        "sync: 'Optional[str]' = None, "
        "readonly: 'Optional[Sequence[str]]' = None) -> \"'ServicePolicy'\""
    ),
    "with_caching": (
        "(self, policy: 'Optional[CachePolicy]' = None, *, "
        "max_entries: 'Optional[int]' = None, "
        "lease_ms: 'Optional[float]' = None, mode: 'Optional[str]' = None, "
        "cacheable: 'Optional[Sequence[str]]' = None) -> \"'ServicePolicy'\""
    ),
}

#: Session's public methods (its lifecycle + service construction contract).
EXPECTED_SESSION_METHODS = (
    "adapt",
    "auto_adapt",
    "close",
    "dismantle",
    "drain",
    "enable_adaptivity",
    "flush",
    "metrics",
    "service",
    "services",
    "tracer",
)

#: Errors the public façade module must export (the supported error names).
EXPECTED_ERROR_NAMES = (
    "AdmissionError",
    "DeadlineExceededError",
    "FencedError",
    "NetworkError",
    "PolicyError",
    "QuorumLostError",
    "RateLimitError",
    "RemoteInvocationError",
    "ReplicationError",
    "ReproError",
    "ThrottledError",
    "TransportError",
)


def _diff(kind: str, expected, actual) -> str:
    """A readable added/removed report for a surface mismatch."""
    expected, actual = set(expected), set(actual)
    lines = [f"{kind} surface changed:"]
    for name in sorted(actual - expected):
        lines.append(f"  + {name} (new — extend the snapshot if intentional)")
    for name in sorted(expected - actual):
        lines.append(f"  - {name} (removed — this breaks downstream imports)")
    return "\n".join(lines)


def _public_methods(cls) -> list:
    return sorted(
        name
        for name, _ in inspect.getmembers(cls, inspect.isfunction)
        if not name.startswith("_")
    )


class TestFacadeExports:
    def test_api_all_matches_snapshot(self):
        actual = tuple(api.__all__)
        assert sorted(actual) == sorted(EXPECTED_API_ALL), _diff(
            "repro.api.__all__", EXPECTED_API_ALL, actual
        )

    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name, None) is not None, (
                f"repro.api.__all__ lists {name!r} but the attribute is missing"
            )

    def test_error_facade_exports(self):
        actual = [name for name in errors.__all__]
        missing = sorted(set(EXPECTED_ERROR_NAMES) - set(actual))
        assert not missing, (
            f"repro.api.errors no longer exports: {', '.join(missing)}"
        )
        for name in actual:
            value = getattr(errors, name)
            assert isinstance(value, type) and issubclass(value, Exception)


class TestServicePolicySurface:
    def test_builder_methods_match_snapshot(self):
        actual = _public_methods(ServicePolicy)
        assert actual == sorted(EXPECTED_POLICY_METHODS), _diff(
            "ServicePolicy", EXPECTED_POLICY_METHODS, actual
        )

    def test_builder_signatures_match_snapshot(self):
        for name, expected in EXPECTED_POLICY_SIGNATURES.items():
            actual = str(inspect.signature(getattr(ServicePolicy, name)))
            assert actual == expected, (
                f"ServicePolicy.{name} signature changed:\n"
                f"  expected {expected}\n"
                f"  actual   {actual}\n"
                "Keyword names and defaults are public API — update the "
                "snapshot only for a deliberate, documented change."
            )

    def test_builders_return_new_policy_instances(self):
        policy = ServicePolicy()
        derived = policy.with_replication(3, quorum="majority", fencing=True)
        assert derived is not policy
        assert isinstance(derived, ServicePolicy)


class TestSessionSurface:
    def test_public_methods_match_snapshot(self):
        actual = _public_methods(Session)
        assert actual == sorted(EXPECTED_SESSION_METHODS), _diff(
            "Session", EXPECTED_SESSION_METHODS, actual
        )

    def test_session_is_a_context_manager(self):
        assert hasattr(Session, "__enter__") and hasattr(Session, "__exit__")
