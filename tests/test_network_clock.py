"""Unit tests for the simulated clock, stopwatch and timeline."""

from __future__ import annotations

import pytest

from repro.network.clock import SimClock, Stopwatch, Timeline


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_or_zero_advance_is_ignored(self):
        clock = SimClock()
        clock.advance(-1.0)
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_advance_to_future_timestamp(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == pytest.approx(3.0)

    def test_advance_to_past_timestamp_is_a_no_op(self):
        clock = SimClock()
        clock.advance(5.0)
        clock.advance_to(3.0)
        assert clock.now == pytest.approx(5.0)

    def test_reset(self):
        clock = SimClock()
        clock.advance(2.0)
        clock.reset()
        assert clock.now == 0.0

    def test_listeners_observe_advances(self):
        clock = SimClock()
        observed = []
        clock.on_advance(lambda before, after: observed.append((before, after)))
        clock.advance(1.0)
        clock.advance(2.0)
        assert observed == [(0.0, 1.0), (1.0, 3.0)]


class TestStopwatch:
    def test_elapsed_tracks_simulated_time(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(0.25)
        assert watch.elapsed == pytest.approx(0.25)

    def test_restart_resets_the_origin(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(1.0)
        watch.restart()
        clock.advance(0.5)
        assert watch.elapsed == pytest.approx(0.5)


class TestTimeline:
    def test_records_events_with_timestamps(self):
        clock = SimClock()
        timeline = Timeline(clock)
        timeline.record("start")
        clock.advance(1.0)
        timeline.record("end")
        assert timeline.events == [(0.0, "start"), (1.0, "end")]

    def test_events_labelled_filters_by_label(self):
        clock = SimClock()
        timeline = Timeline(clock)
        timeline.record("tick")
        clock.advance(1.0)
        timeline.record("tock")
        clock.advance(1.0)
        timeline.record("tick")
        assert timeline.events_labelled("tick") == [0.0, 2.0]

    def test_between_selects_a_window(self):
        clock = SimClock()
        timeline = Timeline(clock)
        for _ in range(4):
            timeline.record("event")
            clock.advance(1.0)
        assert len(timeline.between(1.0, 2.0)) == 2

    def test_clear(self):
        clock = SimClock()
        timeline = Timeline(clock)
        timeline.record("x")
        timeline.clear()
        assert timeline.events == []
