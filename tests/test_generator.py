"""Unit tests for the live-class generator (interfaces, locals, proxies, factories)."""

from __future__ import annotations

import inspect

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.errors import GenerationError
from repro.policy.policy import all_local_policy


@pytest.fixture
def app():
    return ApplicationTransformer(all_local_policy()).transform(
        [sample_app.X, sample_app.Y, sample_app.Z]
    )


class TestGeneratedInterfaces:
    def test_interface_classes_are_abstract(self, app):
        interface = app.interface("X")
        assert inspect.isabstract(interface)
        with pytest.raises(TypeError):
            interface()  # cannot instantiate an abstract interface

    def test_interface_metadata(self, app):
        interface = app.interface("X")
        assert interface._repro_interface_name == "X_O_Int"
        assert interface._repro_source_class == "X"
        assert interface._repro_kind == "instance"

    def test_interface_declares_accessors_and_methods(self, app):
        interface = app.interface("X")
        assert hasattr(interface, "get_y")
        assert hasattr(interface, "set_y")
        assert hasattr(interface, "m")

    def test_class_interface_declares_static_members(self, app):
        interface = app.class_interface("X")
        assert interface.__name__ == "X_C_Int"
        assert hasattr(interface, "get_z") and hasattr(interface, "p")


class TestGeneratedLocals:
    def test_local_implements_interface(self, app):
        assert issubclass(app.local_class("X"), app.interface("X"))

    def test_local_has_parameterless_constructor(self, app):
        instance = app.local_class("X")()
        assert instance.get_y() is None

    def test_accessors_store_and_return_values(self, app):
        instance = app.local_class("Y")()
        instance.set_base(10)
        assert instance.get_base() == 10

    def test_property_view_keeps_original_style_working(self, app):
        instance = app.local_class("Y")()
        instance.base = 11
        assert instance.get_base() == 11
        assert instance.base == 11

    def test_rewritten_method_goes_through_accessors(self, app):
        artifacts = app.artifacts("X")
        assert "self.get_y()" in artifacts.rewritten_sources["m"]

    def test_method_behaviour_matches_original(self, app):
        y = app.local_class("Y")()
        y.set_base(5)
        x = app.local_class("X")()
        x.set_y(y)
        assert x.m(3) == 8

    def test_class_local_is_a_singleton_via_get_me(self, app):
        singleton_cls = app.artifacts("X").class_local_cls
        assert singleton_cls.get_me() is singleton_cls.get_me()

    def test_class_local_static_method_is_instance_level(self, app):
        singleton_cls = app.artifacts("X").class_local_cls
        singleton = singleton_cls.get_me()
        z_local = app.local_class("Z")()
        z_local.set_seed(2)
        singleton.set_z(z_local)
        assert singleton.p(10) == 20


class TestGeneratedProxiesAndRedirectors:
    def test_proxies_exist_for_every_transport(self, app):
        artifacts = app.artifacts("X")
        assert set(artifacts.instance_proxies) == {"soap", "rmi", "corba"}
        assert set(artifacts.class_proxies) == {"soap", "rmi", "corba"}

    def test_proxy_names_follow_convention(self, app):
        assert app.proxy_class("X", "soap").__name__ == "X_O_Proxy_SOAP"
        assert app.proxy_class("X", "rmi", kind="class").__name__ == "X_C_Proxy_RMI"

    def test_proxy_implements_interface(self, app):
        assert issubclass(app.proxy_class("X", "rmi"), app.interface("X"))

    def test_unknown_transport_proxy_raises(self, app):
        with pytest.raises(GenerationError):
            app.artifacts("X").proxy_for("carrier-pigeon")

    def test_proxy_forwards_through_its_space(self, app):
        calls = []

        class FakeSpace:
            def invoke_remote(self, ref, member, args, kwargs, transport=None):
                calls.append((ref, member, args, transport))
                return "remote-result"

        proxy = app.proxy_class("X", "soap")("ref-1", FakeSpace())
        assert proxy.m(7) == "remote-result"
        assert calls == [("ref-1", "m", (7,), "soap")]

    def test_proxy_bind_and_reference_accessors(self, app):
        proxy = app.proxy_class("Y", "rmi")()
        proxy.bind("ref-9", "space")
        assert proxy.remote_reference() == "ref-9"

    def test_redirector_implements_interface_with_explicit_methods(self, app):
        redirector_cls = app.artifacts("Y").redirector_cls
        assert redirector_cls.__name__ == "Y_O_Redirector"
        assert issubclass(redirector_cls, app.interface("Y"))
        assert "n" in redirector_cls.__dict__


class TestGeneratedFactories:
    def test_factory_metadata(self, app):
        factory = app.factory("X")
        assert factory.__name__ == "X_O_Factory"
        assert factory._repro_class_name == "X"

    def test_make_returns_interface_implementation(self, app):
        implementation = app.factory("Y").make()
        assert isinstance(implementation, app.interface("Y"))

    def test_init_replays_constructor(self, app):
        y = app.factory("Y").make()
        app.factory("Y").init(y, 4)
        assert y.get_base() == 4

    def test_create_composes_make_and_init(self, app):
        y = app.factory("Y").create(6)
        assert y.n(1) == 7

    def test_class_factory_discover_returns_singleton(self, app):
        first = app.class_factory("X").discover()
        second = app.class_factory("X").discover()
        assert first is second

    def test_clinit_replays_static_initialisers(self, app):
        singleton = app.class_factory("X").discover()
        z = singleton.get_z()
        assert z is not None
        # Y.K is 42, so the Z constructed by the static initialiser has seed 42.
        assert z.q(2) == 84

    def test_clinit_source_recorded(self, app):
        assert "<clinit>" in app.artifacts("X").rewritten_sources

    def test_unbound_factory_raises(self, app):
        factory = app.factory("X")
        original = factory._repro_application
        factory._repro_application = None
        try:
            with pytest.raises(GenerationError):
                factory.make()
        finally:
            factory._repro_application = original
