"""Tests for the unified service façade (repro.api)."""

from __future__ import annotations

import pytest

from repro.api import ServicePolicy, Session
from repro.errors import PolicyError, RemoteInvocationError
from repro.runtime.cluster import Cluster
from repro.runtime.faulttolerance import RetryPolicy
from repro.workloads.bulk_orders import OrderIntake


@pytest.fixture
def cluster():
    return Cluster(("client", "server", "spare"))


# ---------------------------------------------------------------------------
# ServicePolicy
# ---------------------------------------------------------------------------

class TestServicePolicy:
    def test_defaults_are_neutral(self):
        policy = ServicePolicy()
        assert not policy.batched
        assert not policy.pipelined
        assert not policy.replicated
        assert policy.backup_count == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_window": 0},
            {"pipeline_depth": 0},
            {"replication_factor": 0},
            {"sync": "lazy"},
            {"heartbeat_interval": 0.0},
            {"miss_threshold": 0},
            {"max_failover_attempts": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(PolicyError):
            ServicePolicy(**kwargs)

    def test_builder_returns_modified_copies(self):
        base = ServicePolicy(transport="rmi")
        tuned = base.with_batching(32).with_pipelining(8).with_replication(3)
        assert (base.batch_window, base.pipeline_depth, base.replication_factor) == (1, 1, 1)
        assert tuned.batch_window == 32
        assert tuned.pipeline_depth == 8
        assert tuned.replication_factor == 3
        assert tuned.backup_count == 2
        assert tuned.transport == "rmi"

    def test_with_retry_forms(self):
        assert ServicePolicy().with_retry(max_attempts=5).retry.max_attempts == 5
        custom = RetryPolicy(max_attempts=2, initial_backoff=0.01)
        assert ServicePolicy().with_retry(custom).retry is custom
        with pytest.raises(PolicyError):
            ServicePolicy().with_retry(custom, max_attempts=2)
        with pytest.raises(PolicyError):
            ServicePolicy().with_retry(max_attempts=0)  # not silently 3

    def test_shared_scheduler_key_ignores_replication_knobs(self):
        a = ServicePolicy(batch_window=8, pipeline_depth=4)
        b = a.with_replication(2)
        assert a.scheduler_key() == b.scheduler_key()


# ---------------------------------------------------------------------------
# plain (direct) services
# ---------------------------------------------------------------------------

class TestDirectService:
    def test_plain_calls_behave_like_the_object(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service(
                "orders", ServicePolicy(transport="rmi"), impl=OrderIntake(), node="server"
            )
            assert svc.submit("sku-1", 2, 10) == 0
            assert svc.submit("sku-2", 1, 10) == 1
            assert svc.accepted_count() == 2

    def test_application_errors_surface(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service("orders", impl=OrderIntake(), node="server")
            with pytest.raises(RemoteInvocationError):
                svc.submit("sku-1", 0, 10)

    def test_future_form_resolves_immediately(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service("orders", impl=OrderIntake(), node="server")
            future = svc.future.submit("sku-1", 2, 10)
            assert future.done and future.ok
            assert future.result() == 0

    def test_lookup_mode_attaches_to_an_existing_name(self, cluster):
        intake = OrderIntake()
        reference = cluster.space("server").export(intake)
        cluster.naming.rebind("orders", reference)
        with Session(cluster, node="client") as session:
            svc = session.service("orders")
            assert svc.submit("sku-1", 1, 10) == 0
        assert intake.accepted_count() == 1

    def test_duplicate_service_name_rejected(self, cluster):
        with Session(cluster, node="client") as session:
            session.service("orders", impl=OrderIntake(), node="server")
            with pytest.raises(PolicyError):
                session.service("orders", impl=OrderIntake(), node="server")

    def test_deploy_cannot_steal_a_name_another_session_bound(self, cluster):
        """A second deploy of a taken name must fail loudly, not rewire the
        first session's live service onto the new implementation."""
        first_impl = OrderIntake()
        session_a = Session(cluster, node="client")
        svc_a = session_a.service("orders", impl=first_impl, node="server")
        with Session(cluster, node="client") as session_b:
            with pytest.raises(PolicyError, match="already bound"):
                session_b.service("orders", impl=OrderIntake(), node="spare")
            # Attaching (no impl) remains the supported cross-session path.
            attached = session_b.service("orders")
            assert attached.submit("sku-1", 1, 10) == 0
        assert svc_a.accepted_count() == 1  # still the original implementation
        assert first_impl.accepted_count() == 1
        session_a.close()

    def test_closed_session_rejects_new_services(self, cluster):
        session = Session(cluster, node="client")
        session.close()
        with pytest.raises(PolicyError):
            session.service("orders", impl=OrderIntake(), node="server")

    @pytest.mark.parametrize(
        "policy",
        [
            ServicePolicy(),
            ServicePolicy(batch_window=8),
            ServicePolicy(batch_window=8, pipeline_depth=2),
        ],
        ids=["direct", "batched", "pipelined"],
    )
    def test_dispatch_through_a_closed_session_fails_fast(self, cluster, policy):
        """A service outliving its session must not dispatch with the
        failover machinery torn down — it fails fast instead."""
        session = Session(cluster, node="client")
        svc = session.service("orders", policy, impl=OrderIntake(), node="server")
        session.close()
        with pytest.raises(PolicyError, match="closed"):
            svc.submit("sku-1", 1, 10)
        with pytest.raises(PolicyError, match="closed"):
            svc.future.submit("sku-1", 1, 10)


# ---------------------------------------------------------------------------
# batched services
# ---------------------------------------------------------------------------

class TestBatchedService:
    def test_one_message_carries_the_window(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service(
                "orders",
                ServicePolicy(transport="rmi", batch_window=16),
                impl=OrderIntake(),
                node="server",
            )
            before = cluster.metrics.total_messages
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(16)]
            # The window filled: exactly one request + one response message.
            assert cluster.metrics.total_messages - before == 2
            assert [f.result() for f in futures] == list(range(16))

    def test_plain_call_on_batched_service_flushes(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service(
                "orders",
                ServicePolicy(batch_window=8),
                impl=OrderIntake(),
                node="server",
            )
            pending = svc.future.submit("sku-1", 1, 10)
            assert svc.submit("sku-2", 1, 10) == 1  # plain call drives the flush
            assert pending.done and pending.result() == 0

    def test_per_call_error_isolation(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service(
                "orders", ServicePolicy(batch_window=8), impl=OrderIntake(), node="server"
            )
            good = svc.future.submit("sku-1", 1, 10)
            bad = svc.future.submit("sku-2", 0, 10)
            tail = svc.future.submit("sku-3", 2, 10)
            svc.flush()
            assert good.result() == 0
            assert isinstance(bad.exception(), RemoteInvocationError)
            assert tail.result() == 1

    def test_session_flush_covers_all_services(self, cluster):
        with Session(cluster, node="client") as session:
            policy = ServicePolicy(batch_window=8)
            a = session.service("a", policy, impl=OrderIntake(), node="server")
            b = session.service("b", policy, impl=OrderIntake(), node="spare")
            fa = a.future.submit("sku-1", 1, 10)
            fb = b.future.submit("sku-2", 1, 10)
            session.flush()
            assert fa.result() == 0 and fb.result() == 0


# ---------------------------------------------------------------------------
# pipelined services
# ---------------------------------------------------------------------------

class TestPipelinedService:
    def test_services_share_one_scheduler_and_overlap(self, cluster):
        with Session(cluster, node="client") as session:
            policy = ServicePolicy(transport="rmi", batch_window=8, pipeline_depth=4)
            a = session.service("a", policy, impl=OrderIntake(), node="server")
            b = session.service("b", policy, impl=OrderIntake(), node="spare")
            assert a.scheduler is b.scheduler
            futures = [
                (a if i % 2 == 0 else b).future.submit(f"sku-{i}", 1, 10)
                for i in range(64)
            ]
            session.drain()
            assert all(f.ok for f in futures)
            assert a.scheduler.max_in_flight > 1

    def test_pending_counts_per_service_not_per_scheduler(self, cluster):
        with Session(cluster, node="client") as session:
            policy = ServicePolicy(batch_window=8, pipeline_depth=4)
            a = session.service("a", policy, impl=OrderIntake(), node="server")
            b = session.service("b", policy, impl=OrderIntake(), node="spare")
            a.future.submit("sku-1", 1, 10)
            a.future.submit("sku-2", 1, 10)
            assert a.pending == 2
            assert b.pending == 0  # not the shared scheduler's aggregate
            session.drain()
            assert a.pending == 0

    def test_different_policies_get_different_schedulers(self, cluster):
        with Session(cluster, node="client") as session:
            a = session.service(
                "a", ServicePolicy(batch_window=8, pipeline_depth=4),
                impl=OrderIntake(), node="server",
            )
            b = session.service(
                "b", ServicePolicy(batch_window=4, pipeline_depth=2),
                impl=OrderIntake(), node="spare",
            )
            assert a.scheduler is not b.scheduler

    def test_result_drives_the_pipeline(self, cluster):
        with Session(cluster, node="client") as session:
            svc = session.service(
                "orders",
                ServicePolicy(batch_window=8, pipeline_depth=2),
                impl=OrderIntake(),
                node="server",
            )
            future = svc.future.submit("sku-1", 1, 10)
            assert future.result() == 0  # flushes + pumps events internally


# ---------------------------------------------------------------------------
# replicated services
# ---------------------------------------------------------------------------

class TestReplicatedService:
    def test_session_stands_up_detector_and_manager(self, cluster):
        with Session(cluster, node="client") as session:
            assert session.replica_manager is None
            svc = session.service(
                "orders",
                ServicePolicy(batch_window=4, pipeline_depth=2).with_replication(2),
                impl=OrderIntake(),
                node="server",
            )
            assert session.replica_manager is not None
            assert session.detector is not None
            assert svc.group is not None
            assert set(session.detector.watched_nodes()) == {"server", "spare"}

    def test_kill_primary_loses_nothing(self, cluster):
        with Session(cluster, node="client") as session:
            policy = (
                ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=2)
                .with_replication(2, readonly=("accepted_count",))
            )
            svc = session.service(
                "orders", policy, impl=OrderIntake(), node="server",
                backup_nodes=["spare"],
            )
            futures = []
            for i in range(32):
                if i == 16:
                    cluster.network.failures.crash_node("server")
                futures.append(svc.future.submit(f"sku-{i}", 1, 10))
            session.drain()
            assert all(f.ok for f in futures)
            assert len(session.replica_manager.failovers) == 1
            # New submissions address the promoted replica directly.
            assert svc.reference.node_id == "spare"

    def test_backup_count_mismatch_rejected(self, cluster):
        with Session(cluster, node="client") as session:
            with pytest.raises(PolicyError):
                session.service(
                    "orders",
                    ServicePolicy().with_replication(3),
                    impl=OrderIntake(),
                    node="server",
                    backup_nodes=["spare"],  # policy wants 2
                )

    def test_sync_invoker_honours_max_failover_attempts(self, cluster):
        with Session(cluster, node="client") as session:
            policy = (
                ServicePolicy(batch_window=4, max_failover_attempts=7)
                .with_replication(2)
            )
            session.service(
                "orders", policy, impl=OrderIntake(), node="server",
                backup_nodes=["spare"],
            )
            invoker = session._current_invoker(policy)
            assert invoker.max_failover_hops == 7

    def test_auto_backup_placement_needs_enough_nodes(self):
        small = Cluster(("client", "server"))
        with Session(small, node="client") as session:
            with pytest.raises(PolicyError):
                session.service(
                    "orders",
                    ServicePolicy().with_replication(2),
                    impl=OrderIntake(),
                    node="server",
                )

    def test_auto_backup_placement_is_a_ring(self):
        """Backups of services on successive nodes must spread, not pile up."""
        cluster = Cluster(("client", "s1", "s2", "s3"))
        with Session(cluster, node="client") as session:
            policy = ServicePolicy().with_replication(2)
            services = [
                session.service(f"svc-{node}", policy, impl=OrderIntake(), node=node)
                for node in ("s1", "s2", "s3")
            ]
            placements = {
                svc.group.primary_node: list(svc.group.backups) for svc in services
            }
            assert placements == {"s1": ["s2"], "s2": ["s3"], "s3": ["s1"]}

    def test_lookup_mode_rejects_replicated_policy(self, cluster):
        intake = OrderIntake()
        cluster.naming.rebind("orders", cluster.space("server").export(intake))
        with Session(cluster, node="client") as session:
            with pytest.raises(PolicyError, match="replication_factor"):
                session.service("orders", ServicePolicy().with_replication(2))
