"""The paper's Figure 2 sample application, in Python.

The Java original::

    public class X {
        private Y y;
        public X(Y y) { this.y = y; }
        protected int m(long j) { return y.n(j); }
        static final Z z = new Z(Y.K);
        static int p(int i) { return z.q(i); }
    }

plus the collaborating classes ``Y`` (with the static constant ``K``) and
``Z`` that the figure implies.  These classes are ordinary Python with no
knowledge of the middleware; the test suite transforms them and checks that
the generated artifacts match the structure of Figures 3–5 and that the
transformed program behaves identically to this original.
"""

from __future__ import annotations


class Y:
    """Collaborator with an instance method and a static constant ``K``."""

    K = 42

    def __init__(self, base: int):
        self.base = base

    def n(self, j: int) -> int:
        return self.base + j


class Z:
    """Collaborator constructed by X's static initialiser."""

    def __init__(self, seed: int):
        self.seed = seed

    def q(self, i: int) -> int:
        return self.seed * i


class X:
    """The sample class of Figure 2."""

    z = Z(Y.K)

    def __init__(self, y: "Y"):
        self.y = y

    def m(self, j: int) -> int:
        return self.y.n(j)

    @staticmethod
    def p(i: int) -> int:
        return X.z.q(i)


def run_original(base, j, i):
    """Exercise the original, untransformed program; used as the oracle."""
    y = Y(base)
    x = X(y)
    return x.m(j), X.p(i), Y.K
