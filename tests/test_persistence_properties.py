"""Property-based tests for the persistence extension.

Invariant: snapshot → (JSON) → restore reproduces the observable state of the
object graph, for arbitrary cache contents and arbitrary object graphs built
from the Figure 1 classes, under both local and distributed target policies.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.transformer import ApplicationTransformer
from repro.persistence import (
    ObjectGraphSnapshotter,
    restore_snapshot,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster
from repro.workloads.figure1 import A, B, C
from repro.workloads.shared_cache import Cache

_keys = st.text(alphabet="abcdefgh", min_size=1, max_size=6)
_values = st.one_of(
    st.integers(-1000, 1000),
    st.text(max_size=12),
    st.booleans(),
    st.none(),
    st.lists(st.integers(-10, 10), max_size=4),
)
_cache_contents = st.dictionaries(_keys, _values, max_size=12)


class TestCacheSnapshotsRoundTrip:
    @given(contents=_cache_contents)
    @settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_snapshot_restore_preserves_every_entry(self, contents):
        app = ApplicationTransformer(all_local_policy()).transform([Cache])
        cache = app.new("Cache", 64)
        for key, value in contents.items():
            cache.put(key, value)

        snapshot = ObjectGraphSnapshotter(app).snapshot({"cache": cache})
        restored = restore_snapshot(app, snapshot_from_json(snapshot_to_json(snapshot)))["cache"]

        assert restored.size() == cache.size()
        for key, value in contents.items():
            assert restored.get(key) == value
        # Hit/miss counters are state too, and the reads above changed only
        # the restored copy.
        assert restored.get_misses() == cache.get_misses()

    @given(contents=_cache_contents)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_restore_under_a_remote_policy_preserves_entries(self, contents):
        source_app = ApplicationTransformer(all_local_policy()).transform([Cache])
        cache = source_app.new("Cache", 64)
        for key, value in contents.items():
            cache.put(key, value)
        snapshot = ObjectGraphSnapshotter(source_app).snapshot({"cache": cache})

        target_app = ApplicationTransformer(place_classes_on({"Cache": "store"})).transform([Cache])
        target_app.deploy(Cluster(("app", "store")), default_node="app")
        restored = restore_snapshot(target_app, snapshot)["cache"]
        assert restored.size() == len(contents)
        for key, value in contents.items():
            assert restored.get(key) == value


class TestFigure1GraphSnapshots:
    @given(
        values=st.lists(st.integers(-100, 100), min_size=1, max_size=15),
        label=st.text(alphabet="xyz-", min_size=1, max_size=8),
    )
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_shared_structure_round_trips(self, values, label):
        app = ApplicationTransformer(all_local_policy()).transform([A, B, C])
        shared = app.new("C", label)
        holder_a = app.new("A", shared)
        holder_b = app.new("B", shared)
        for value in values:
            holder_a.record(value)
            holder_b.record(value)

        snapshot = ObjectGraphSnapshotter(app).snapshot({"a": holder_a, "b": holder_b})
        assert snapshot.object_count == 3

        restored = restore_snapshot(app, snapshot)
        restored_a, restored_b = restored["a"], restored["b"]
        restored_shared = restored_a.get_shared()
        assert restored_shared.get_total() == shared.get_total()
        assert restored_shared.describe() == shared.describe()
        # Sharing is preserved: a write through one holder is seen by the other.
        restored_a.record(7)
        assert restored_b.get_shared().get_total() == shared.get_total() + 7
