"""Tests for the ``repro lint`` subcommand.

Pins the exit-code contract (0 clean / 1 findings / 2 usage error), the
JSON report schema consumed by the CI ``lint-dist`` artifact, rule
selection, ``--explain``, and — as the self-hosting acceptance check —
that the shipped tree lints clean.
"""

from __future__ import annotations

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_DIR = Path(__file__).resolve().parent / "lint_fixtures"

CLEAN_SOURCE = textwrap.dedent(
    """
    from repro.core.interfaces import cacheable


    class Ledger:
        def __init__(self):
            self.balance = 0

        def credit(self, amount):
            self.balance += amount
            return self.balance

        @cacheable
        def total(self):
            return self.balance
    """
)

DIRTY_SOURCE = textwrap.dedent(
    """
    import time

    from repro.core.interfaces import cacheable


    class Ledger:
        recent = []

        def __init__(self):
            self.balance = 0

        def credit(self, amount):
            self.stamp = time.time()
            self.balance += amount
            return self.balance

        @cacheable
        def total(self):
            self.hits = 1
            return self.balance
    """
)


def run_cli(*argv: str) -> tuple[int, str]:
    buffer = io.StringIO()
    code = main(list(argv), out=buffer)
    return code, buffer.getvalue()


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean_app.py"
    path.write_text(CLEAN_SOURCE, encoding="utf-8")
    return path


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty_app.py"
    path.write_text(DIRTY_SOURCE, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_file):
        code, output = run_cli("lint", str(clean_file))
        assert code == 0
        assert "0 error(s), 0 warning(s)" in output

    def test_findings_exit_one(self, dirty_file):
        code, output = run_cli("lint", str(dirty_file))
        assert code == 1
        assert "DS101" in output
        assert "DS102" in output
        assert "DS104" in output

    def test_fail_on_error_ignores_warnings(self, dirty_file):
        # DS101/DS104 are warnings; DS102 is an error, so the gate trips.
        code, _ = run_cli("lint", "--fail-on", "error", str(dirty_file))
        assert code == 1

    def test_fail_on_error_passes_a_warning_only_tree(self, tmp_path):
        path = tmp_path / "warn_only.py"
        path.write_text(
            textwrap.dedent(
                """
                import time

                from repro.core.interfaces import cacheable


                class Svc:
                    @cacheable
                    def reads(self):
                        return 1

                    def write(self):
                        self.t = time.time()
                """
            ),
            encoding="utf-8",
        )
        code, _ = run_cli("lint", str(path))
        assert code == 1
        code, _ = run_cli("lint", "--fail-on", "error", str(path))
        assert code == 0

    def test_unknown_rule_is_a_usage_error(self, clean_file):
        code, output = run_cli("lint", "--select", "DS999", str(clean_file))
        assert code == 2
        assert "DS999" in output

    def test_missing_path_is_a_usage_error(self, tmp_path):
        code, output = run_cli("lint", str(tmp_path / "ghost.py"))
        assert code == 2
        assert "ghost.py" in output

    def test_no_paths_is_a_usage_error(self):
        code, output = run_cli("lint")
        assert code == 2
        assert "path" in output.lower()

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        path = tmp_path / "broken.py"
        path.write_text("def broken(:\n", encoding="utf-8")
        code, output = run_cli("lint", str(path))
        assert code == 1
        assert "DS000" in output


class TestJsonReport:
    def test_schema_is_pinned(self, dirty_file):
        code, output = run_cli("lint", "--format", "json", str(dirty_file))
        assert code == 1
        report = json.loads(output)
        assert sorted(report) == [
            "checked_files",
            "errors",
            "findings",
            "tool",
            "version",
            "warnings",
        ]
        assert report["version"] == 1
        assert report["tool"] == "repro-lint"
        assert report["checked_files"] == 1
        assert report["errors"] + report["warnings"] == len(report["findings"])
        for row in report["findings"]:
            assert sorted(row) == [
                "col",
                "line",
                "message",
                "path",
                "rule",
                "severity",
                "suggestion",
            ]
            assert row["path"].endswith("dirty_app.py")
            assert isinstance(row["line"], int) and row["line"] > 0

    def test_clean_tree_reports_empty_findings(self, clean_file):
        code, output = run_cli("lint", "--format", "json", str(clean_file))
        assert code == 0
        report = json.loads(output)
        assert report["findings"] == []
        assert report["errors"] == 0
        assert report["warnings"] == 0


class TestSelection:
    def test_select_runs_only_the_named_rules(self, dirty_file):
        code, output = run_cli("lint", "--select", "DS102", str(dirty_file))
        assert code == 1
        assert "DS102" in output
        assert "DS101" not in output
        assert "DS104" not in output

    def test_select_is_case_insensitive(self, dirty_file):
        code, output = run_cli("lint", "--select", "ds102", str(dirty_file))
        assert code == 1
        assert "DS102" in output

    def test_directory_arguments_recurse(self):
        code, output = run_cli(
            "lint", "--select", "DS105", str(FIXTURE_DIR / "ds105_interceptor_hooks.py")
        )
        assert code == 1
        assert output.count("DS105") >= 4


class TestExplain:
    def test_explain_prints_the_rule_doc(self):
        code, output = run_cli("lint", "--explain", "DS101")
        assert code == 0
        assert "DS101" in output
        assert "determin" in output.lower()

    def test_explain_unknown_rule_is_a_usage_error(self):
        code, output = run_cli("lint", "--explain", "DS999")
        assert code == 2


class TestSelfHosting:
    """The acceptance criterion: the shipped tree lints clean."""

    def test_src_and_examples_lint_clean(self):
        code, output = run_cli(
            "lint",
            str(REPO_ROOT / "src" / "repro"),
            str(REPO_ROOT / "examples"),
            str(REPO_ROOT / "tests" / "sample_app.py"),
        )
        assert code == 0, output
        assert "0 error(s), 0 warning(s)" in output
