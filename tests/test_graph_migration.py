"""Unit tests for co-migration of object graphs."""

from __future__ import annotations

import pytest

from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.runtime.migration import ObjectMigrator, reachable_handles
from repro.workloads.figure1 import A, B, C
from repro.workloads.orders import Catalog, CustomerSession, OrderStore, seed_catalog


@pytest.fixture
def dynamic_figure1():
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform([A, B, C])
    cluster = Cluster(("client", "server"))
    app.deploy(cluster, default_node="client")
    return app, cluster


class TestReachability:
    def test_reachable_handles_follow_fields(self, dynamic_figure1):
        app, _ = dynamic_figure1
        shared = app.new("C", "shared")
        holder = app.new("A", shared)
        found = reachable_handles(app, holder)
        assert shared in found

    def test_reachability_descends_into_containers(self):
        class Registry:
            def __init__(self):
                self.entries = []

            def register(self, item):
                entries = self.entries
                entries.append(item)
                self.entries = entries
                return len(entries)

        class Item:
            def __init__(self, name):
                self.name = name

        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform([Registry, Item])
        app.deploy(Cluster(("a", "b")), default_node="a")
        registry = app.new("Registry")
        items = [app.new("Item", f"i{i}") for i in range(3)]
        for item in items:
            registry.register(item)
        found = reachable_handles(app, registry)
        assert set(map(id, items)) <= set(map(id, found))

    def test_reachability_handles_cycles(self, dynamic_figure1):
        app, _ = dynamic_figure1
        shared = app.new("C", "shared")
        holder_a = app.new("A", shared)
        holder_b = app.new("B", shared)
        # Create a cycle: the shared C's label points back at holder_a.
        shared.set_label(holder_a)
        found = reachable_handles(app, holder_b)
        assert shared in found and holder_a in found

    def test_depth_limit(self, dynamic_figure1):
        app, _ = dynamic_figure1
        shared = app.new("C", "shared")
        holder = app.new("A", shared)
        assert reachable_handles(app, holder, max_depth=0) == []


class TestGraphMigration:
    def test_whole_graph_moves_together(self, dynamic_figure1):
        app, cluster = dynamic_figure1
        shared = app.new("C", "shared")
        holder_a = app.new("A", shared)
        holder_b = app.new("B", shared)
        holder_a.record(2)

        migrator = ObjectMigrator(app, cluster)
        records = migrator.migrate_graph(holder_a, "server")
        # holder_a and the shared C moved; holder_b still reaches the same C.
        assert {record.class_name for record in records} >= {"A", "C"}
        assert holder_a.meta.node_id == "server"
        assert shared.meta.node_id == "server"
        holder_b.record(5)
        assert shared.get_total() == 12

    def test_objects_already_on_the_target_are_skipped(self, dynamic_figure1):
        app, cluster = dynamic_figure1
        shared = app.new("C", "shared")
        holder = app.new("A", shared)
        migrator = ObjectMigrator(app, cluster)
        migrator.migrate(shared, "server")
        records = migrator.migrate_graph(holder, "server")
        assert {record.class_name for record in records} == {"A"}

    def test_graph_migration_keeps_results_identical(self):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(
            [Catalog, OrderStore, CustomerSession]
        )
        cluster = Cluster(("front", "warehouse"))
        app.deploy(cluster, default_node="front")
        catalog = app.new("Catalog")
        orders = app.new("OrderStore")
        seed_catalog(catalog, 5)
        session = app.new("CustomerSession", "alice", catalog, orders)
        session.buy("sku-1", 2)

        migrator = ObjectMigrator(app, cluster)
        records = migrator.migrate_graph(session, "warehouse")
        moved = {record.class_name for record in records}
        assert {"CustomerSession", "Catalog", "OrderStore"} <= moved

        # The whole back end now lives on the warehouse; behaviour unchanged.
        assert session.buy("sku-2", 1) >= 0
        assert orders.order_count() == 2
        assert catalog.product_count() == 5
