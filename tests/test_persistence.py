"""Unit tests for the orthogonal-persistence extension (paper §4, related work [9])."""

from __future__ import annotations

import pytest

from repro.core.transformer import ApplicationTransformer
from repro.errors import SerializationError
from repro.persistence import (
    FileSnapshotStore,
    GraphSnapshot,
    InMemorySnapshotStore,
    ObjectGraphSnapshotter,
    restore_snapshot,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster
from repro.workloads.figure1 import A, B, C
from repro.workloads.shared_cache import Cache, CacheClient


@pytest.fixture
def figure1_app():
    return ApplicationTransformer(all_local_policy()).transform([A, B, C])


def _build_graph(app):
    shared = app.new("C", "journal")
    holder_a = app.new("A", shared)
    holder_b = app.new("B", shared)
    holder_a.record(3)
    holder_b.record(4)
    return shared, holder_a, holder_b


class TestSnapshotCapture:
    def test_snapshot_records_all_reachable_objects(self, figure1_app):
        shared, holder_a, holder_b = _build_graph(figure1_app)
        snapshotter = ObjectGraphSnapshotter(figure1_app)
        snapshot = snapshotter.snapshot({"a": holder_a, "b": holder_b})
        # a, b and the shared C — the shared instance appears exactly once.
        assert snapshot.object_count == 3
        assert snapshot.classes() == {"A", "B", "C"}

    def test_shared_references_are_preserved_not_duplicated(self, figure1_app):
        shared, holder_a, holder_b = _build_graph(figure1_app)
        snapshot = ObjectGraphSnapshotter(figure1_app).snapshot({"a": holder_a, "b": holder_b})
        shared_ids = [
            entry["fields"]["shared"]["__persisted_ref__"]
            for entry in snapshot.objects.values()
            if entry["class"] in ("A", "B")
        ]
        assert len(set(shared_ids)) == 1

    def test_field_values_are_captured(self, figure1_app):
        shared, holder_a, _ = _build_graph(figure1_app)
        snapshot = ObjectGraphSnapshotter(figure1_app).snapshot({"c": shared})
        [entry] = [e for e in snapshot.objects.values() if e["class"] == "C"]
        assert entry["fields"]["total"] == 3 + 8  # 3 from A, 4*2 from B
        assert entry["fields"]["label"] == "journal"

    def test_cycles_terminate(self):
        class Node:
            def __init__(self, name):
                self.name = name
                self.peer = None

            def link(self, other):
                self.peer = other
                return True

        app = ApplicationTransformer(all_local_policy()).transform([Node])
        first = app.new("Node", "first")
        second = app.new("Node", "second")
        first.link(second)
        second.link(first)
        snapshot = ObjectGraphSnapshotter(app).snapshot({"first": first})
        assert snapshot.object_count == 2

    def test_non_transformed_values_are_rejected(self, figure1_app):
        shared = figure1_app.new("C", "x")
        shared.set_label(object())
        with pytest.raises(SerializationError):
            ObjectGraphSnapshotter(figure1_app).snapshot({"c": shared})

    def test_snapshotting_a_plain_object_is_rejected(self, figure1_app):
        with pytest.raises(SerializationError):
            ObjectGraphSnapshotter(figure1_app).snapshot({"x": object()})


class TestRestore:
    def test_round_trip_preserves_state_and_sharing(self, figure1_app):
        shared, holder_a, holder_b = _build_graph(figure1_app)
        snapshot = ObjectGraphSnapshotter(figure1_app).snapshot({"a": holder_a, "b": holder_b})

        restored = restore_snapshot(figure1_app, snapshot)
        restored_a, restored_b = restored["a"], restored["b"]
        # The shared C is shared again after restore.
        restored_a.record(10)
        assert restored_b.running_average() > 0
        assert restored_a.summary() == restored_b.get_shared().describe()

    def test_restored_graph_is_independent_of_the_original(self, figure1_app):
        shared, holder_a, _ = _build_graph(figure1_app)
        snapshot = ObjectGraphSnapshotter(figure1_app).snapshot({"a": holder_a})
        restored_a = restore_snapshot(figure1_app, snapshot)["a"]
        restored_a.record(100)
        assert shared.get_total() == 11  # the original is untouched

    def test_restore_into_a_different_deployment(self):
        """A graph snapshotted locally can be restored under a remote policy."""
        local_app = ApplicationTransformer(all_local_policy()).transform([A, B, C])
        shared, holder_a, holder_b = _build_graph(local_app)
        snapshot = ObjectGraphSnapshotter(local_app).snapshot({"a": holder_a, "b": holder_b})
        text = snapshot_to_json(snapshot)

        remote_app = ApplicationTransformer(place_classes_on({"C": "server"})).transform([A, B, C])
        cluster = Cluster(("client", "server"))
        remote_app.deploy(cluster, default_node="client")
        restored = restore_snapshot(remote_app, snapshot_from_json(text))
        restored_c = restored["a"].get_shared()
        assert type(restored_c).__name__ == "C_O_Proxy_RMI"
        assert restored["a"].summary() == shared.describe()

    def test_json_round_trip(self, figure1_app):
        shared, holder_a, _ = _build_graph(figure1_app)
        snapshot = ObjectGraphSnapshotter(figure1_app).snapshot({"a": holder_a})
        rebuilt = snapshot_from_json(snapshot_to_json(snapshot))
        assert rebuilt.object_count == snapshot.object_count
        assert rebuilt.roots == snapshot.roots

    def test_malformed_json_rejected(self):
        with pytest.raises(SerializationError):
            snapshot_from_json("{ nope")
        with pytest.raises(SerializationError):
            snapshot_from_json("[1, 2, 3]")


class TestStores:
    def _snapshot(self, label="v1") -> GraphSnapshot:
        app = ApplicationTransformer(all_local_policy()).transform([Cache, CacheClient])
        cache = app.new("Cache", 16)
        cache.put("k", label)
        return ObjectGraphSnapshotter(app).snapshot({"cache": cache})

    def test_in_memory_store_versions(self):
        store = InMemorySnapshotStore()
        store.save("daily", self._snapshot("one"))
        info = store.save("daily", self._snapshot("two"))
        assert info.version == 2
        assert store.versions("daily") == 2
        assert store.names() == {"daily"}
        assert len(store.checkpoints()) == 2
        assert store.load("daily").objects  # latest
        assert store.load("daily", version=1).objects

    def test_in_memory_store_errors(self):
        store = InMemorySnapshotStore()
        with pytest.raises(SerializationError):
            store.load("missing")
        store.save("daily", self._snapshot())
        with pytest.raises(SerializationError):
            store.load("daily", version=9)

    def test_file_store_round_trip(self, tmp_path):
        store = FileSnapshotStore(tmp_path / "checkpoints")
        first = store.save("cache", self._snapshot("one"))
        second = store.save("cache", self._snapshot("two"))
        assert (first.version, second.version) == (1, 2)
        assert store.versions("cache") == 2
        assert store.names() == {"cache"}
        loaded = store.load("cache", version=1)
        assert loaded.object_count >= 1
        with pytest.raises(SerializationError):
            store.load("cache", version=5)
        with pytest.raises(SerializationError):
            store.load("unknown")

    def test_restored_cache_from_file_store(self, tmp_path):
        app = ApplicationTransformer(all_local_policy()).transform([Cache, CacheClient])
        cache = app.new("Cache", 16)
        cache.put("answer", 42)
        store = FileSnapshotStore(tmp_path)
        store.save("cache", ObjectGraphSnapshotter(app).snapshot({"cache": cache}))
        restored = restore_snapshot(app, store.load("cache"))["cache"]
        assert restored.get("answer") == 42
