"""Experiment E2: reproduce Figure 3 — instance-member transformation of X.

The paper's Figure 3 lists the artifacts generated for the instance members
of the sample class X of Figure 2: the interface ``X_O_Int`` (accessor pair
for the field ``y`` plus the method ``m``), the non-remote implementation
``X_O_Local`` (parameter-less constructor, accessors, ``m`` rewritten to call
``get_y()``), and proxy classes per transport whose methods perform remote
calls on the real object.  These tests check both the emitted source and the
live generated classes against that listing.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy


@pytest.fixture(scope="module")
def app():
    return ApplicationTransformer(all_local_policy()).transform(
        [sample_app.X, sample_app.Y, sample_app.Z]
    )


@pytest.fixture(scope="module")
def sources(app):
    return app.emit_sources("X", transports=("soap", "rmi"))


class TestFigure3Interface:
    def test_interface_members_match_figure(self, app):
        """X_O_Int declares exactly get_y, set_y and m."""
        interface = app.artifacts("X").instance_interface
        assert interface.method_names() == ["get_y", "set_y", "m"]

    def test_accessor_types_use_interface_types(self, app):
        """get_y returns Y_O_Int and set_y takes Y_O_Int (type adaptation)."""
        interface = app.artifacts("X").instance_interface
        assert interface.get("get_y").return_type.name == "Y_O_Int"
        assert interface.get("set_y").parameters[0].type.name == "Y_O_Int"

    def test_emitted_interface_matches_listing(self, sources):
        source = sources["X_O_Int"]
        for expected in ("def get_y(self)", "def set_y(self, y)", "def m(self, j)"):
            assert expected in source


class TestFigure3Local:
    def test_emitted_local_matches_listing(self, sources):
        source = sources["X_O_Local"]
        # Parameter-less constructor.
        assert "def __init__(self):" in source
        # Accessor pair backed by a private attribute.
        assert "def get_y(self):" in source and "def set_y(self, y):" in source
        # m performs interface calls: get_y() and n(j).
        assert "return self.get_y().n(j)" in source

    def test_live_local_behaviour(self, app):
        y = app.new_local("Y", 5)
        x = app.local_class("X")()
        x.set_y(y)
        assert x.m(3) == 8

    def test_local_constructor_takes_no_parameters(self, app):
        import inspect

        signature = inspect.signature(app.local_class("X").__init__)
        assert list(signature.parameters) == ["self"]


class TestFigure3Proxies:
    def test_soap_and_rmi_proxies_are_emitted(self, sources):
        assert "class X_O_Proxy_SOAP(X_O_Int):" in sources["X_O_Proxy_SOAP"]
        assert "class X_O_Proxy_RMI(X_O_Int):" in sources["X_O_Proxy_RMI"]

    def test_proxy_methods_perform_remote_calls(self, sources):
        source = sources["X_O_Proxy_SOAP"]
        for member in ("get_y", "set_y", "m"):
            assert f"def {member}(" in source
        assert "invoke_remote" in source

    def test_local_and_proxy_share_the_interface(self, app):
        interface = app.interface("X")
        assert issubclass(app.local_class("X"), interface)
        for transport in ("soap", "rmi", "corba"):
            assert issubclass(app.proxy_class("X", transport), interface)

    def test_interchangeability_of_implementations(self, app):
        """Any implementation of X_O_Int can serve behind the same reference."""
        y = app.new_local("Y", 1)

        class Stub(app.interface("X")):
            def get_y(self):
                return y

            def set_y(self, value):
                pass

            def m(self, j):
                return -j

        values = []
        for implementation in (app.new_local("X", y), Stub()):
            values.append(implementation.m(4))
        assert values == [5, -4]
