"""Session-owned adaptivity (ROADMAP item: the façade auto-wires adapt()).

A :class:`~repro.api.session.Session` can own the
:class:`~repro.policy.adaptive.AdaptiveDistributionManager`: it builds the
controller, connects its shared pipeline schedulers (measured depth) and its
cache manager (measured hit rate) as they appear, exposes ``adapt()``, and
drives rounds from the cluster's event queue via ``auto_adapt()`` —
cancelled on close so no tick leaks into later sessions.
"""

from __future__ import annotations

import pytest

import sample_app
from repro.api import ServicePolicy, Session
from repro.core.transformer import ApplicationTransformer
from repro.errors import PolicyError
from repro.policy.policy import all_local_policy
from repro.runtime.cluster import Cluster
from repro.workloads.bulk_orders import OrderIntake

SAMPLE = [sample_app.X, sample_app.Y, sample_app.Z]


@pytest.fixture
def deployed():
    app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(SAMPLE)
    cluster = Cluster(("front", "back"))
    app.deploy(cluster, default_node="front")
    return app, cluster


def _hammer_from_back(app, handle, calls):
    with app.executing_on("back"):
        for _ in range(calls):
            handle.n(1)


class TestSessionAdaptivity:
    def test_adapt_requires_enabling_first(self, deployed):
        app, cluster = deployed
        with Session(cluster, node="front") as session:
            with pytest.raises(PolicyError, match="enable_adaptivity"):
                session.adapt()
            with pytest.raises(PolicyError, match="enable_adaptivity"):
                session.auto_adapt(0.5)

    def test_enable_twice_is_an_error(self, deployed):
        app, cluster = deployed
        with Session(cluster, node="front") as session:
            session.enable_adaptivity(app)
            with pytest.raises(PolicyError, match="already"):
                session.enable_adaptivity(app)

    def test_session_adapt_moves_a_hot_object(self, deployed):
        """The classic affinity scenario, driven through Session.adapt()."""
        app, cluster = deployed
        with Session(cluster, node="front") as session:
            manager = session.enable_adaptivity(app)
            y = app.new("Y", 1)
            manager.attach(y)
            _hammer_from_back(app, y, 20)
            record = session.adapt()
            assert record.moved == 1
            from repro.core.metaobject import metaobject_of

            assert metaobject_of(y).node_id == "back"

    def test_schedulers_feed_measured_depth(self, deployed):
        """A session scheduler created after enabling is connected: the
        manager amortises by its *measured* depth."""
        app, cluster = deployed
        with Session(cluster, node="front") as session:
            manager = session.enable_adaptivity(app)
            svc = session.service(
                "orders",
                ServicePolicy(transport="rmi", batch_window=4, pipeline_depth=4),
                impl=OrderIntake(),
                node="back",
            )
            futures = [svc.future.submit(f"sku-{i}", 1, 10) for i in range(32)]
            session.drain()
            assert all(f.ok for f in futures)
            assert manager.effective_pipeline_depth() == pytest.approx(
                svc.scheduler.observed_pipeline_depth
            )

    def test_cache_manager_feeds_measured_hit_rate(self, deployed):
        app, cluster = deployed
        with Session(cluster, node="front") as session:
            manager = session.enable_adaptivity(app)
            svc = session.service(
                "cache-me",
                ServicePolicy(transport="rmi").with_caching(
                    lease_ms=500, cacheable=("accepted_count",)
                ),
                impl=OrderIntake(),
                node="back",
            )
            for _ in range(4):
                svc.call("accepted_count")
            assert session.cache_manager.hits == 3
            assert manager.effective_cache_hit_ratio() == pytest.approx(0.75)

    def test_auto_adapt_runs_rounds_from_the_event_queue(self, deployed):
        app, cluster = deployed
        with Session(cluster, node="front") as session:
            manager = session.enable_adaptivity(app, interval=0.01)
            y = app.new("Y", 1)
            manager.attach(y)
            _hammer_from_back(app, y, 20)
            # Pump past one tick: the scheduled round applies the move.
            deadline = cluster.clock.now + 0.05
            while cluster.clock.now < deadline and cluster.network.events.run_next():
                pass
            assert len(manager.history) >= 1
            assert sum(record.moved for record in manager.history) == 1
        # Closed: the pending tick is a no-op and the queue drains.
        while cluster.network.events.run_next():
            pass
        assert cluster.network.events.run_next() is False
        assert manager.history == manager.history  # no further rounds appended

    def test_close_cancels_auto_adapt(self, deployed):
        app, cluster = deployed
        session = Session(cluster, node="front")
        manager = session.enable_adaptivity(app, interval=0.01)
        session.close()
        rounds_before = len(manager.history)
        for _ in range(100):
            if not cluster.network.events.run_next():
                break
        assert len(manager.history) == rounds_before
