"""Unit tests for the class-model intermediate representation."""

from __future__ import annotations


from repro.core.classmodel import (
    ClassModel,
    ClassUniverse,
    ConstructorModel,
    FieldModel,
    MethodModel,
    ParameterModel,
    TypeRef,
    Visibility,
)


class TestTypeRef:
    def test_primitive_types_are_primitive(self):
        for name in ("int", "float", "str", "bool", "None", "bytes"):
            assert TypeRef(name).is_primitive

    def test_container_types_are_containers_not_classes(self):
        assert TypeRef("list").is_container
        assert not TypeRef("list").is_class

    def test_application_type_is_a_class(self):
        ref = TypeRef("Order")
        assert ref.is_class
        assert not ref.is_primitive

    def test_type_ref_is_hashable_and_comparable(self):
        assert TypeRef("X") == TypeRef("X")
        assert len({TypeRef("X"), TypeRef("X"), TypeRef("Y")}) == 2


class TestFieldModel:
    def test_accessor_names_follow_property_convention(self):
        field = FieldModel("balance")
        assert field.getter_name == "get_balance"
        assert field.setter_name == "set_balance"

    def test_defaults(self):
        field = FieldModel("x")
        assert not field.is_static
        assert not field.is_final
        assert field.visibility is Visibility.PRIVATE


class TestClassModelViews:
    def _model(self) -> ClassModel:
        model = ClassModel("Account", module="bank")
        model.add_field(FieldModel("owner"))
        model.add_field(FieldModel("balance", TypeRef("int")))
        model.add_field(FieldModel("BANK_CODE", is_static=True, is_final=True))
        model.add_method(MethodModel("deposit", (ParameterModel("amount", TypeRef("int")),)))
        model.add_method(MethodModel("open", is_static=True))
        model.add_constructor(ConstructorModel((ParameterModel("owner"),)))
        return model

    def test_instance_and_static_field_views(self):
        model = self._model()
        assert [f.name for f in model.instance_fields] == ["owner", "balance"]
        assert [f.name for f in model.static_fields] == ["BANK_CODE"]

    def test_instance_and_static_method_views(self):
        model = self._model()
        assert [m.name for m in model.instance_methods] == ["deposit"]
        assert [m.name for m in model.static_methods] == ["open"]

    def test_member_names_union(self):
        model = self._model()
        assert model.member_names() == {"owner", "balance", "BANK_CODE", "deposit", "open"}

    def test_has_static_and_instance_members(self):
        model = self._model()
        assert model.has_static_members
        assert model.has_instance_members

    def test_lookup_helpers(self):
        model = self._model()
        assert model.get_field("balance").type == TypeRef("int")
        assert model.get_field("missing") is None
        assert model.get_method("deposit") is not None
        assert model.get_method("missing") is None

    def test_add_field_is_idempotent_by_name(self):
        model = self._model()
        before = len(model.fields)
        model.add_field(FieldModel("owner"))
        assert len(model.fields) == before

    def test_qualified_name(self):
        assert self._model().qualified_name == "bank.Account"

    def test_has_native_methods_flag(self):
        model = self._model()
        assert not model.has_native_methods
        model.add_method(MethodModel("poke", is_native=True))
        assert model.has_native_methods


class TestReferencedClassNames:
    def test_field_and_signature_types_are_references(self):
        model = ClassModel("Basket")
        model.add_field(FieldModel("owner", TypeRef("Customer")))
        model.add_method(
            MethodModel("add", (ParameterModel("item", TypeRef("Product")),), TypeRef("Receipt"))
        )
        refs = model.referenced_class_names()
        assert {"Customer", "Product", "Receipt"} <= refs

    def test_primitive_types_are_not_references(self):
        model = ClassModel("Basket")
        model.add_field(FieldModel("count", TypeRef("int")))
        assert model.referenced_class_names() == set()

    def test_superclass_and_interfaces_are_references(self):
        model = ClassModel("Child", superclass_name="Parent", interface_names=("Comparable",))
        refs = model.referenced_class_names()
        assert "Parent" in refs and "Comparable" in refs

    def test_self_reference_is_excluded(self):
        model = ClassModel("Node")
        model.referenced_types.add("Node")
        assert "Node" not in model.referenced_class_names()

    def test_constructor_parameter_types_are_references(self):
        model = ClassModel("Session")
        model.add_constructor(ConstructorModel((ParameterModel("store", TypeRef("Store")),)))
        assert "Store" in model.referenced_class_names()


class TestClassUniverse:
    def _universe(self) -> ClassUniverse:
        a = ClassModel("A")
        b = ClassModel("B", superclass_name="A")
        c = ClassModel("C")
        c.referenced_types.add("B")
        c.referenced_types.add("Missing")
        return ClassUniverse([a, b, c])

    def test_lookup_and_membership(self):
        universe = self._universe()
        assert "A" in universe
        assert universe.get("B").superclass_name == "A"
        assert universe.get("missing") is None
        assert len(universe) == 3

    def test_subclasses_of(self):
        universe = self._universe()
        assert [m.name for m in universe.subclasses_of("A")] == ["B"]
        assert universe.subclasses_of("C") == []

    def test_referencers_of(self):
        universe = self._universe()
        assert [m.name for m in universe.referencers_of("B")] == ["C"]

    def test_unknown_references(self):
        universe = self._universe()
        assert universe.unknown_references() == {"Missing"}

    def test_iteration_and_names(self):
        universe = self._universe()
        assert universe.names() == {"A", "B", "C"}
        assert {m.name for m in universe} == {"A", "B", "C"}
