"""Unit tests for the synthetic application workloads."""

from __future__ import annotations

import pytest

from repro.core.transformer import ApplicationTransformer
from repro.policy.policy import all_local_policy, place_classes_on
from repro.runtime.cluster import Cluster
from repro.workloads.figure1 import run_figure1_plain
from repro.workloads.orders import (
    Catalog,
    CustomerSession,
    OrderStore,
    run_order_phase,
    seed_catalog,
)
from repro.workloads.pipeline import Buffer, Consumer, Producer, run_pipeline
from repro.workloads.shared_cache import Cache, CacheClient, run_cache_workload

PIPELINE = [Buffer, Producer, Consumer]
CACHE = [Cache, CacheClient]
ORDERS = [Catalog, OrderStore, CustomerSession]


class TestFigure1Workload:
    def test_plain_run_is_deterministic(self):
        assert run_figure1_plain().as_tuple() == run_figure1_plain().as_tuple()

    def test_totals_reflect_both_writers(self):
        result = run_figure1_plain((2, 4))
        assert result.total == 2 + 4 + 4 + 8
        assert result.description.endswith(str(result.total))


class TestCacheWorkload:
    def test_plain_cache_semantics(self):
        cache = Cache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts the oldest entry
        assert cache.size() == 2
        assert cache.get("c") == 3
        assert cache.get("a") is None
        assert 0.0 < cache.hit_rate() < 1.0
        assert cache.clear()
        assert cache.size() == 0

    def test_client_warm_and_read_back(self):
        cache = Cache(64)
        client = CacheClient("alpha", cache)
        assert client.warm(10) == 10
        assert client.read_back(10) == 10
        assert client.operations == 20

    def test_workload_runs_on_a_transformed_local_application(self):
        app = ApplicationTransformer(all_local_policy()).transform(CACHE)
        stats = run_cache_workload(app, clients=2, writes_per_client=5, reads_per_client=5)
        assert stats.operations == 20
        assert stats.hits == 10
        assert stats.misses == 0
        assert stats.hit_rate == 1.0

    def test_workload_is_identical_when_the_cache_is_remote(self):
        local_app = ApplicationTransformer(all_local_policy()).transform(CACHE)
        expected = run_cache_workload(local_app, clients=2, writes_per_client=4, reads_per_client=4)

        remote_app = ApplicationTransformer(place_classes_on({"Cache": "server"})).transform(CACHE)
        cluster = Cluster(("client", "server"))
        remote_app.deploy(cluster, default_node="client")
        observed = run_cache_workload(remote_app, clients=2, writes_per_client=4, reads_per_client=4)
        assert observed == expected
        assert cluster.metrics.total_messages > 0


class TestPipelineWorkload:
    def test_plain_pipeline_semantics(self):
        buffer = Buffer(3)
        producer = Producer(buffer)
        consumer = Consumer(buffer)
        producer.produce(5)
        assert producer.produced == 3 and producer.dropped == 2
        assert buffer.depth() == 3
        consumer.drain(10)
        assert consumer.consumed == 3
        assert buffer.depth() == 0
        assert buffer.poll() is None

    def test_pipeline_runs_on_a_transformed_application(self):
        app = ApplicationTransformer(all_local_policy()).transform(PIPELINE)
        outcome = run_pipeline(app, rounds=3, batch=4, capacity=16)
        assert outcome["produced"] == 12
        assert outcome["consumed"] == 12
        assert outcome["checksum"] == sum(range(12))
        assert outcome["residual_depth"] == 0

    def test_pipeline_with_remote_buffer_matches_local(self):
        local_app = ApplicationTransformer(all_local_policy()).transform(PIPELINE)
        expected = run_pipeline(local_app, rounds=3, batch=4)

        remote_app = ApplicationTransformer(place_classes_on({"Buffer": "queue-node"})).transform(
            PIPELINE
        )
        remote_app.deploy(Cluster(("worker", "queue-node")), default_node="worker")
        assert run_pipeline(remote_app, rounds=3, batch=4) == expected


class TestOrdersWorkload:
    def test_catalog_and_order_store_semantics(self):
        catalog = Catalog()
        orders = OrderStore()
        catalog.add_product("sku-1", 10, 5)
        session = CustomerSession("alice", catalog, orders)
        assert session.browse(["sku-1", "missing"]) == 10
        order_id = session.buy("sku-1", 2)
        assert order_id == 0
        assert orders.pending() == [0]
        assert orders.fulfil(order_id)
        assert not orders.fulfil(order_id)
        assert orders.revenue() == 20
        assert not catalog.reserve("sku-1", 100)
        assert session.buy("missing", 1) == -1

    def test_phases_run_against_a_deployed_application(self):
        app = ApplicationTransformer(all_local_policy(dynamic=True)).transform(ORDERS)
        app.deploy(Cluster(("front", "warehouse")), default_node="front")
        catalog = app.new("Catalog")
        orders = app.new("OrderStore")
        seed_catalog(catalog, 10)

        browse = run_order_phase(app, catalog, orders, phase="browse", node="front", iterations=8)
        assert browse["browsed"] == 16
        assert browse["placed"] >= 1

        fulfil = run_order_phase(app, catalog, orders, phase="fulfil", node="warehouse")
        assert fulfil["fulfilled"] == browse["placed"]
        assert orders.revenue() > 0

    def test_unknown_phase_is_rejected(self):
        app = ApplicationTransformer(all_local_policy()).transform(ORDERS)
        app.deploy(Cluster(("front",)), default_node="front")
        catalog = app.new("Catalog")
        orders = app.new("OrderStore")
        with pytest.raises(ValueError):
            run_order_phase(app, catalog, orders, phase="meditate", node="front")
