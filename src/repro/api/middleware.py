"""First-class interceptor chain on the dispatch path.

Production traffic needs cross-cutting concerns — deadlines, per-tenant
quotas, metrics, tracing — and before this module the composition order of
the dispatch path was hard-coded in :mod:`repro.api.dispatch`'s pipes, with
no seam to hang them on.  An :class:`InterceptorChain` is that seam: an
ordered list of :class:`Interceptor` objects bracketing every call with
``begin(ctx)`` / ``end(ctx, result)`` / ``abort(ctx, error)``, applied

* on the **client stack** — :class:`~repro.api.policy.ServicePolicy`
  ``.with_middleware(...)`` wraps the policy's pipe in a
  :class:`~repro.api.dispatch.ChainedPipe`, so every enqueue opens a
  bracket and every future's settlement closes it (exactly once); and
* on the **serving** :class:`~repro.runtime.address_space.AddressSpace` —
  the server-side chain runs inside dispatch, before/after the target
  method, batch-aware: one framed batch message brackets its N calls
  individually.

The bracket guarantees (pinned by ``tests/test_middleware_chain.py``):

* ``begin`` runs in registration order, ``end``/``abort`` in reverse;
* every begun call sees exactly one of ``end`` or ``abort``, never both;
* a ``begin`` that raises aborts the already-begun interceptors (reverse
  order) and short-circuits the later ones' ``begin`` entirely — the call
  fails without shipping;
* an ``end``/``abort`` that raises is isolated (counted in
  :attr:`InterceptorChain.callback_failures`), so one misbehaving
  interceptor cannot corrupt its batch's other calls.

Three production interceptors ship as proof: :class:`DeadlineInterceptor`
(absolute simulated-time deadlines propagated on the wire, so failover
retries consume the *remaining* budget), :class:`RateLimitInterceptor`
(per-tenant token bucket on the simulated clock, typed retryable-or-not
rejections, retry-safe charging) and :class:`MetricsInterceptor` (per-member
call/error/latency counters surfaced via
:meth:`~repro.api.session.Session.metrics`).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._errors import (
    DeadlineExceededError,
    PolicyError,
    RateLimitError,
    ThrottledError,
)

#: Deterministic per-process sequence behind :attr:`CallContext.call_id` —
#: unique across every session and service in one process, so server-side
#: retry-deduplication (e.g. the rate limiter's charged-call memory) never
#: confuses two tenants' calls.
_CALL_SEQ = itertools.count()


class CallContext:
    """Everything the interceptors of one call get to see and annotate.

    One context is built per logical call (client side at enqueue, server
    side at dispatch) and handed to every interceptor's ``begin`` / ``end``
    / ``abort``.  Retries and failover re-ships of the same logical call
    reuse the same wire context, which is how absolute deadlines keep their
    remaining budget and rate limiters recognise already-charged calls.
    """

    __slots__ = (
        "service",
        "member",
        "args",
        "kwargs",
        "tenant",
        "deadline",
        "attempt",
        "side",
        "call_id",
        "clock",
        "state",
        "trace",
        "tracer",
    )

    def __init__(
        self,
        *,
        service: str = "",
        member: str = "",
        args: tuple = (),
        kwargs: Optional[dict] = None,
        tenant: Optional[str] = None,
        deadline: Optional[float] = None,
        attempt: int = 1,
        side: str = "client",
        call_id: Optional[str] = None,
        clock: Any = None,
    ) -> None:
        #: The façade service name (client side) or interface name (server
        #: side) the call targets.
        self.service = service
        #: The member (method name) being invoked.
        self.member = member
        #: Positional arguments, as the caller passed them (client side) or
        #: in wire form (server side).
        self.args = tuple(args)
        #: Keyword arguments (same caveat as :attr:`args`).
        self.kwargs = dict(kwargs or {})
        #: The calling tenant, from the policy's ``tenant`` field (``None``
        #: when the caller did not identify itself).
        self.tenant = tenant
        #: Absolute simulated-time instant after which the call is dead
        #: (``None`` = no deadline).  Absolute on purpose: a failover retry
        #: carries the original instant, not a fresh budget.
        self.deadline = deadline
        #: Which dispatch attempt this bracket observes (>= 1).
        self.attempt = attempt
        #: ``"client"`` or ``"server"`` — which end of the wire the chain
        #: bracketing this context runs on.
        self.side = side
        #: Process-unique identifier of the logical call, stable across
        #: retries and failover re-ships.
        self.call_id = call_id if call_id is not None else f"c{next(_CALL_SEQ)}"
        #: The simulated clock of the issuing/serving space (``None`` in
        #: clockless unit-test spaces).
        self.clock = clock
        #: Per-call scratch space for interceptors (e.g. latency start
        #: stamps); keyed by interceptor, never serialized.
        self.state: Dict[Any, Any] = {}
        #: The call's tracing span (client side: the root span; server
        #: side: the per-call server span).  ``None`` when the call is
        #: untraced or unsampled.
        self.trace: Any = None
        #: The tracer owning :attr:`trace` (``None`` when untraced).
        self.tracer: Any = None

    # -- time ------------------------------------------------------------------

    def now(self) -> float:
        """The current simulated time (``0.0`` on a clockless space)."""
        return self.clock.now if self.clock is not None else 0.0

    def remaining(self) -> Optional[float]:
        """Simulated seconds left until the deadline (``None`` = no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - self.now()

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed (always False without one)."""
        return self.deadline is not None and self.now() >= self.deadline

    # -- wire form -------------------------------------------------------------

    def to_wire(self) -> dict:
        """The control fields that travel on the wire with the request.

        Only wire-safe primitives, only non-defaults, single-letter keys
        (``i``\\ d, ``t``\\ enant, ``d``\\ eadline, plus ``x``/``p`` —
        trace id and client span id — when the call is traced) — control
        fields ride *every* intercepted call, so their framing overhead is
        what the chain-overhead benchmark ceiling is spent on.  An empty
        dict means the request carries no ``ctx`` field at all, keeping
        chain-free traffic byte-identical to the pre-middleware wire
        format; untraced calls carry no trace keys for the same reason.
        """
        wire: dict = {"i": self.call_id}
        if self.tenant is not None:
            wire["t"] = self.tenant
        if self.deadline is not None:
            wire["d"] = float(self.deadline)
        if self.trace is not None:
            wire["x"] = self.trace.trace_id
            wire["p"] = self.trace.span_id
        return wire

    @classmethod
    def from_wire(
        cls,
        wire: Optional[dict],
        *,
        service: str = "",
        member: str = "",
        args: tuple = (),
        kwargs: Optional[dict] = None,
        clock: Any = None,
    ) -> "CallContext":
        """Rebuild the server-side context from a request's ``ctx`` field."""
        wire = wire or {}
        return cls(
            service=service,
            member=member,
            args=args,
            kwargs=kwargs,
            tenant=wire.get("t"),
            deadline=wire.get("d"),
            side="server",
            call_id=wire.get("i"),
            clock=clock,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CallContext {self.side} {self.service!r}.{self.member} "
            f"id={self.call_id} tenant={self.tenant!r}>"
        )


class Interceptor:
    """Base class for chain interceptors; every hook defaults to a no-op.

    Subclass and override any of the three brackets.  ``begin`` may raise to
    *reject* the call (typed errors preferred — see
    :class:`~repro.api.errors.ThrottledError` /
    :class:`~repro.api.errors.DeadlineExceededError`); the call then never
    ships (client side) or never executes (server side), already-begun
    interceptors are aborted in reverse order, and later interceptors'
    ``begin`` is short-circuited.
    """

    def begin(self, ctx: CallContext) -> None:
        """Called before the call ships (client) or executes (server)."""

    def end(self, ctx: CallContext, result: Any) -> None:
        """Called exactly once when the call completed successfully."""

    def abort(self, ctx: CallContext, error: BaseException) -> None:
        """Called exactly once when the call failed (any error path)."""


class _Bracket:
    """One opened call bracket: the entered interceptors awaiting settlement.

    Returned by :meth:`InterceptorChain.open`; exactly one of
    :meth:`close` or :meth:`fail` fires the matching ``end`` / ``abort``
    hooks (reverse registration order) — later settlements are no-ops, so a
    future's single pending→done transition maps onto a single bracket
    settlement even if bookkeeping code runs twice.
    """

    __slots__ = ("_chain", "_ctx", "_entered", "_settled", "_spans")

    def __init__(
        self,
        chain: "InterceptorChain",
        ctx: CallContext,
        entered: List[Interceptor],
        spans: Optional[List[Any]] = None,
    ) -> None:
        self._chain = chain
        self._ctx = ctx
        self._entered = entered
        self._settled = False
        #: Per-interceptor child spans (parallel to ``_entered``), open
        #: from ``begin`` to settlement; empty when the call is untraced.
        self._spans = spans or []

    @property
    def settled(self) -> bool:
        """Whether this bracket has already seen its ``end`` or ``abort``."""
        return self._settled

    def _end_spans(self, error: Optional[BaseException]) -> None:
        tracer = self._ctx.tracer
        if tracer is None:
            return
        for span in reversed(self._spans):
            if error is not None:
                tracer.end_span(span, error=type(error).__name__)
            else:
                tracer.end_span(span)

    def close(self, result: Any) -> None:
        """Settle successfully: run every entered ``end`` in reverse order."""
        if self._settled:
            return
        self._settled = True
        for interceptor in reversed(self._entered):
            try:
                interceptor.end(self._ctx, result)
            except Exception:  # noqa: BLE001 - isolation, see callback_failures
                self._chain.callback_failures += 1
        self._end_spans(None)

    def fail(self, error: BaseException) -> None:
        """Settle with an error: run every entered ``abort`` in reverse order."""
        if self._settled:
            return
        self._settled = True
        for interceptor in reversed(self._entered):
            try:
                interceptor.abort(self._ctx, error)
            except Exception:  # noqa: BLE001 - isolation, see callback_failures
                self._chain.callback_failures += 1
        self._end_spans(error)


class InterceptorChain:
    """An ordered interceptor list applied around every call.

    Built from a policy's ``middleware`` tuple (client side) or installed on
    a serving space via
    :meth:`~repro.runtime.address_space.AddressSpace.use_middleware`
    (server side).  :meth:`open` runs every ``begin`` in registration order
    and returns the bracket whose ``close``/``fail`` settles the call.
    """

    def __init__(self, interceptors: Sequence[Interceptor] = ()) -> None:
        for interceptor in interceptors:
            if not (
                callable(getattr(interceptor, "begin", None))
                and callable(getattr(interceptor, "end", None))
                and callable(getattr(interceptor, "abort", None))
            ):
                raise PolicyError(
                    f"{interceptor!r} is not an interceptor: it needs "
                    "begin(ctx), end(ctx, result) and abort(ctx, error)"
                )
        #: The interceptors, in registration (= begin) order.
        self.interceptors: Tuple[Interceptor, ...] = tuple(interceptors)
        #: ``end``/``abort`` hooks that raised and were isolated.
        self.callback_failures = 0

    def __len__(self) -> int:
        return len(self.interceptors)

    @property
    def empty(self) -> bool:
        """Whether the chain has no interceptors (open/settle are no-ops)."""
        return not self.interceptors

    def open(self, ctx: CallContext) -> _Bracket:
        """Run every ``begin`` in order; returns the bracket to settle.

        A ``begin`` that raises rejects the call: the interceptors already
        begun are aborted in *reverse* order with the rejection error, the
        later interceptors never see their ``begin``, and the error
        propagates to the caller (who fails the call without dispatching
        it).
        """
        entered: List[Interceptor] = []
        tracer = ctx.tracer if ctx.trace is not None else None
        spans: List[Any] = []
        for interceptor in self.interceptors:
            try:
                interceptor.begin(ctx)
            except BaseException as error:
                for begun in reversed(entered):
                    try:
                        begun.abort(ctx, error)
                    except Exception:  # noqa: BLE001 - isolation
                        self.callback_failures += 1
                if tracer is not None:
                    for span in reversed(spans):
                        tracer.end_span(span, error=type(error).__name__)
                raise
            entered.append(interceptor)
            if tracer is not None:
                spans.append(
                    tracer.start_span(
                        type(interceptor).__name__,
                        trace_id=ctx.trace.trace_id,
                        parent_id=ctx.trace.span_id,
                        kind="interceptor",
                        ts=ctx.now(),
                        side=ctx.side,
                    )
                )
        return _Bracket(self, ctx, entered, spans)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(type(i).__name__ for i in self.interceptors)
        return f"<InterceptorChain [{names}]>"


# ---------------------------------------------------------------------------
# Production interceptors
# ---------------------------------------------------------------------------


class DeadlineInterceptor(Interceptor):
    """Stamp, propagate and enforce per-call deadlines.

    Client side, ``begin`` stamps calls that carry no deadline yet with
    ``now + timeout`` — an *absolute* simulated-time instant that travels on
    the wire, so retries and failover re-ships of the same logical call
    consume the remaining budget rather than restarting it.  On both sides,
    an already-expired deadline raises
    :class:`~repro.api.errors.DeadlineExceededError`: client-side the call
    aborts without shipping, server-side it aborts before the target method
    executes (the typed rejection travels back as the error response).
    """

    def __init__(self, timeout: float) -> None:
        if timeout <= 0:
            raise PolicyError("deadline timeout must be positive")
        #: Simulated seconds granted to calls that arrive without a deadline.
        self.timeout = timeout
        #: Calls this interceptor rejected as expired.
        self.expired_calls = 0

    def begin(self, ctx: CallContext) -> None:
        """Stamp a missing deadline (client side); reject expired calls."""
        if ctx.deadline is None:
            if ctx.side != "client":
                return  # no deadline was propagated; nothing to enforce
            ctx.deadline = ctx.now() + self.timeout
        if ctx.expired:
            self.expired_calls += 1
            raise DeadlineExceededError(
                f"deadline for {ctx.member!r} expired "
                f"{ctx.now() - ctx.deadline:.6f}s ago ({ctx.side}-side)"
            )


class RateLimitInterceptor(Interceptor):
    """Per-tenant token-bucket rate limiting on the simulated clock.

    Each tenant gets a bucket of ``burst`` tokens refilled at ``rate``
    tokens per simulated second; ``begin`` spends one token per *logical*
    call and raises a typed rejection when the bucket is empty —
    :class:`~repro.api.errors.ThrottledError` (a transient
    :class:`~repro.api.errors.AdmissionError`, so retry policies back off and
    try again) when ``retryable``, terminal
    :class:`~repro.api.errors.RateLimitError` otherwise.

    Charging is retry-safe: the bucket remembers the call ids it charged
    (bounded LRU memory), so a retry or failover re-ship of an
    already-charged call passes free instead of being double-charged, while
    a call that was *rejected* and later retried gets a fresh admission
    decision.
    """

    #: Bound on the charged-call-id memory (oldest ids forgotten first).
    _CHARGED_MEMORY = 4096

    def __init__(
        self,
        rate: float,
        burst: float = 1.0,
        *,
        retryable: bool = True,
        default_tenant: str = "default",
    ) -> None:
        if rate <= 0:
            raise PolicyError("rate must be positive (tokens per simulated second)")
        if burst < 1:
            raise PolicyError("burst must be at least 1 token")
        #: Tokens refilled per simulated second, per tenant.
        self.rate = rate
        #: Bucket capacity (momentary burst allowance), per tenant.
        self.burst = burst
        #: Whether rejections are retryable (:class:`~repro.api.errors.ThrottledError`)
        #: or terminal (:class:`~repro.api.errors.RateLimitError`).
        self.retryable = retryable
        #: Bucket key for calls whose context names no tenant.
        self.default_tenant = default_tenant
        #: tenant → (tokens, last refill time).
        self._buckets: Dict[str, Tuple[float, float]] = {}
        #: Call ids already charged, oldest first (retry double-charge guard).
        self._charged_order: deque = deque()
        self._charged: set = set()
        #: Calls admitted (token spent), per tenant.
        self.admitted: Dict[str, int] = {}
        #: Calls rejected (bucket empty), per tenant.
        self.rejected: Dict[str, int] = {}

    def _remember(self, call_id: str) -> None:
        self._charged.add(call_id)
        self._charged_order.append(call_id)
        while len(self._charged_order) > self._CHARGED_MEMORY:
            self._charged.discard(self._charged_order.popleft())

    def begin(self, ctx: CallContext) -> None:
        """Spend one token for the call's tenant, or raise the typed rejection."""
        if ctx.call_id in self._charged:
            return  # a retry of an already-admitted call rides free
        tenant = ctx.tenant if ctx.tenant is not None else self.default_tenant
        now = ctx.now()
        tokens, last = self._buckets.get(tenant, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate)
        if tokens >= 1.0:
            self._buckets[tenant] = (tokens - 1.0, now)
            self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
            self._remember(ctx.call_id)
            return
        self._buckets[tenant] = (tokens, now)
        self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
        message = (
            f"tenant {tenant!r} is over its rate limit "
            f"({self.rate:g}/s, burst {self.burst:g}) for {ctx.member!r}"
        )
        if self.retryable:
            raise ThrottledError(message)
        raise RateLimitError(message)


class MetricsInterceptor(Interceptor):
    """Per-member call, error and latency counters.

    ``begin`` stamps the call's start on the context, ``end``/``abort``
    accumulate one completed (or failed) call and its simulated latency
    into the member's row.  :meth:`snapshot` returns a plain-dict copy;
    :meth:`~repro.api.session.Session.metrics` merges the snapshots of
    every metrics interceptor a session's policies carry.
    """

    def __init__(self) -> None:
        # Imported here, not at module top: repro.network pulls in the
        # simulation stack, which imports back into repro.api.
        from repro.network.metrics import LatencyHistogram

        #: member → ``{"calls", "errors", "total_latency"}`` (mutated in place).
        self._members: Dict[str, Dict[str, float]] = {}
        #: Every settled call's simulated latency (ends and aborts alike);
        #: :meth:`~repro.api.session.Session.metrics` merges these across
        #: interceptors with :meth:`LatencyHistogram.merge`.
        self.histogram = LatencyHistogram()

    def _row(self, member: str) -> Dict[str, float]:
        row = self._members.get(member)
        if row is None:
            row = {"calls": 0, "errors": 0, "total_latency": 0.0}
            self._members[member] = row
        return row

    def begin(self, ctx: CallContext) -> None:
        """Count the call and stamp its start time on the context."""
        ctx.state[self] = ctx.now()
        self._row(ctx.member)["calls"] += 1

    def end(self, ctx: CallContext, result: Any) -> None:
        """Accumulate the completed call's simulated latency."""
        started = ctx.state.pop(self, None)
        if started is not None:
            latency = ctx.now() - started
            self._row(ctx.member)["total_latency"] += latency
            self.histogram.record(latency)

    def abort(self, ctx: CallContext, error: BaseException) -> None:
        """Count the failure (latency still accumulates for the attempt)."""
        row = self._row(ctx.member)
        row["errors"] += 1
        started = ctx.state.pop(self, None)
        if started is not None:
            latency = ctx.now() - started
            row["total_latency"] += latency
            self.histogram.record(latency)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """A copy of every member's counters (safe to mutate)."""
        return {member: dict(row) for member, row in self._members.items()}
