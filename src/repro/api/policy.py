"""Declarative service policies for the :mod:`repro.api` façade.

A :class:`ServicePolicy` names *what* a service should get — a batch window,
a pipeline depth, a retry policy, a replication factor, a transport — and the
façade (:class:`~repro.api.session.Session` /
:class:`~repro.api.service.Service`) derives *how*: which runtime components
to build and in which composition order.  The policy is an immutable value
object; the fluent ``with_*`` builder methods return modified copies, so a
base policy can be specialised per service::

    base = ServicePolicy(transport="rmi").with_batching(32)
    fast = base.with_pipelining(8)                       # + in-flight window
    safe = (fast.with_replication(2, quorum=1)           # + a live backup
            .with_retry(max_attempts=3))

Field-by-field, a policy replaces the hand-wired stack of PR 1-3:

============================  ==================================================
policy field                  replaces
============================  ==================================================
``transport``                 the ``transport=`` threaded through every layer
``batch_window``              ``BatchingProxy(max_batch=...)``
``pipeline_depth``            ``PipelineScheduler(window=...)``
``retry``                     ``FaultTolerantInvoker(policy=...)`` wiring
``replication_factor``        ``ReplicaManager`` + ``backup_nodes`` counting
``sync`` / ``readonly``       ``ReplicaManager(sync=...)`` / ``replicate(readonly=...)``
``heartbeat_interval`` etc.   ``HeartbeatDetector(interval=..., miss_threshold=...)``
``max_failover_attempts``     ``PipelineScheduler(max_failover_attempts=...)``
============================  ==================================================
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple, Union

from repro._errors import PolicyError
from repro.runtime.caching import CachePolicy
from repro.runtime.faulttolerance import RetryPolicy
from repro.runtime.replication import SYNC_MODES


@dataclass(frozen=True)
class ServicePolicy:
    """Everything a service needs to know about its distribution machinery.

    Every knob has a neutral default, so ``ServicePolicy()`` describes a
    plain synchronous, unreplicated service; turning a knob up composes the
    corresponding subsystem in behind the same façade.
    """

    #: Transport for every message this service sends (``None`` = the calling
    #: address space's default).
    transport: Optional[str] = None
    #: Calls buffered per batch message; ``1`` disables batching.
    batch_window: int = 1
    #: Concurrently in-flight batches; ``1`` keeps dispatch synchronous,
    #: larger values stream batches through a shared pipeline scheduler.
    pipeline_depth: int = 1
    #: Retry policy for transient transport failures (``None`` = no retries).
    retry: Optional[RetryPolicy] = None
    #: Total copies of the service object (primary + backups); ``1`` means
    #: unreplicated, ``R`` keeps ``R - 1`` backups on distinct nodes.
    replication_factor: int = 1
    #: Acks (counting the primary's local apply) a write needs before it is
    #: acknowledged to the client; ``1`` is the legacy primary-only mode,
    #: a majority turns the group into quorum replication.
    quorum: int = 1
    #: Whether epochs are enforced on replication frames: a stale primary's
    #: frames are rejected with ``FencedError`` and promotion requires a
    #: majority of reachable voters (split-brain prevention).
    fencing: bool = False
    #: Replica synchronization mode (``"eager"`` or ``"interval"``).
    sync: str = "eager"
    #: Members that never mutate state (not forwarded to backups).
    readonly: Tuple[str, ...] = ()
    #: Simulated seconds between heartbeat probe rounds.
    heartbeat_interval: float = 0.002
    #: Consecutive missed probes before a node is declared down.
    miss_threshold: int = 2
    #: Re-ships a call may spend riding out failure detection + promotion.
    max_failover_attempts: int = 12
    #: Client-side result caching for the service's ``@cacheable`` members
    #: (``None`` = every read pays its round trip).  See
    #: :class:`~repro.runtime.caching.CachePolicy` for the knobs.
    cache: Optional[CachePolicy] = None
    #: Client-side interceptors (:class:`~repro.api.middleware.Interceptor`)
    #: bracketing every call this service enqueues, in registration order.
    #: Empty = the pipes run bare, byte-identical to the pre-middleware path.
    middleware: Tuple = ()
    #: Server-side interceptors installed on the hosting address space(s) at
    #: deploy time, bracketing every dispatched call before/after the target
    #: method.  Only meaningful when the session deploys an implementation.
    server_middleware: Tuple = ()
    #: Tenant label stamped into every call's wire context (rate limiters
    #: key their buckets on it).  ``None`` = untagged traffic.
    tenant: Optional[str] = None
    #: Whether deployment runs the distribution-safety rules
    #: (:mod:`repro.analysis`) against the implementation's source and
    #: refuses to deploy on error-severity findings.  The policy itself
    #: sharpens the rules: under quorum replication, nondeterministic
    #: writes (DS101) escalate from warning to deploy-blocking error.
    static_checks: bool = False
    #: Distributed-tracing sample rate in ``[0, 1]`` (``None`` = tracing
    #: off entirely; ``0.0`` keeps the machinery armed but samples no
    #: call, which must stay wire-identical to ``None``).
    tracing: Optional[float] = None

    def __post_init__(self) -> None:
        if self.cache is not None and not isinstance(self.cache, CachePolicy):
            raise PolicyError(
                "cache must be a repro.runtime.caching.CachePolicy (or None)"
            )
        if self.batch_window < 1:
            raise PolicyError("batch_window must be at least 1")
        if self.pipeline_depth < 1:
            raise PolicyError("pipeline_depth must be at least 1")
        if self.replication_factor < 1:
            raise PolicyError("replication_factor must be at least 1")
        if self.quorum < 1:
            raise PolicyError("quorum must be at least 1")
        if self.quorum > self.replication_factor:
            raise PolicyError(
                f"quorum {self.quorum} exceeds the {self.replication_factor} "
                "replica(s) that could acknowledge it"
            )
        if self.fencing and self.replication_factor < 2:
            raise PolicyError(
                "fencing requires at least 2 replicas (an unreplicated "
                "service has no epoch to fence against)"
            )
        if self.quorum > 1 and self.sync != "eager":
            raise PolicyError(
                "quorum commit requires sync='eager' (interval snapshots "
                "cannot acknowledge writes against a majority)"
            )
        if self.sync not in SYNC_MODES:
            raise PolicyError(f"unknown sync mode {self.sync!r} (use one of {SYNC_MODES})")
        if self.heartbeat_interval <= 0:
            raise PolicyError("heartbeat_interval must be positive")
        if self.miss_threshold < 1:
            raise PolicyError("miss_threshold must be at least 1")
        if self.max_failover_attempts < 1:
            raise PolicyError("max_failover_attempts must be at least 1")
        if self.tracing is not None and not 0.0 <= self.tracing <= 1.0:
            raise PolicyError(
                f"tracing sample rate must be within [0, 1], got {self.tracing!r}"
            )
        if not isinstance(self.readonly, tuple):
            object.__setattr__(self, "readonly", tuple(self.readonly))
        if not isinstance(self.middleware, tuple):
            object.__setattr__(self, "middleware", tuple(self.middleware))
        if not isinstance(self.server_middleware, tuple):
            object.__setattr__(self, "server_middleware", tuple(self.server_middleware))

    # ------------------------------------------------------------------
    # fluent builder
    # ------------------------------------------------------------------

    def with_transport(self, transport: Optional[str]) -> "ServicePolicy":
        """A copy of this policy speaking ``transport``."""
        return replace(self, transport=transport)

    def with_batching(self, window: int) -> "ServicePolicy":
        """A copy buffering ``window`` calls per batch message."""
        return replace(self, batch_window=window)

    def with_pipelining(self, depth: int) -> "ServicePolicy":
        """A copy keeping ``depth`` batches in flight concurrently."""
        return replace(self, pipeline_depth=depth)

    def with_retry(
        self, policy: Optional[RetryPolicy] = None, *, max_attempts: Optional[int] = None
    ) -> "ServicePolicy":
        """A copy retrying transient failures.

        Pass a full :class:`~repro.runtime.faulttolerance.RetryPolicy`, or
        just ``max_attempts`` for the default backoff shape.
        """
        if policy is not None and max_attempts is not None:
            raise PolicyError("pass either a RetryPolicy or max_attempts, not both")
        if policy is None:
            if max_attempts is not None and max_attempts < 1:
                raise PolicyError("max_attempts must be at least 1")
            policy = (
                RetryPolicy(max_attempts=max_attempts)
                if max_attempts is not None
                else RetryPolicy()
            )
        return replace(self, retry=policy)

    def with_replication(
        self,
        replicas: Optional[int] = None,
        quorum: Optional[Union[int, str]] = None,
        fencing: Optional[bool] = None,
        *,
        factor: Optional[int] = None,
        sync: Optional[str] = None,
        readonly: Optional[Sequence[str]] = None,
    ) -> "ServicePolicy":
        """A copy replicating the service across ``replicas`` copies.

        The recommended form names the commit rule explicitly::

            policy.with_replication(3, quorum="majority", fencing=True)

        ``quorum`` is the number of replicas (counting the primary) that
        must acknowledge ``apply_ops`` before a write is acknowledged to
        the client — ``"majority"`` resolves to ``replicas // 2 + 1``, an
        int is used verbatim (``PolicyError`` when it exceeds
        ``replicas``).  ``fencing`` (default ``True`` once a majority
        quorum — ``quorum > 1`` — is named) stamps every replication
        frame with the group's epoch:
        stale primaries are rejected with
        :class:`~repro.api.errors.FencedError` and promotion requires a
        majority of reachable voters.  ``PolicyError`` when fencing is
        requested with fewer than 2 replicas.

        The legacy single-int call ``with_replication(n)`` keeps its PR 3
        semantics — primary-only acks, promote-the-freshest failover
        (``quorum=1, fencing=False``) — and emits a ``DeprecationWarning``
        asking for an explicit quorum; spell those values out to opt into
        the old mode silently.  See ``docs/MIGRATION.md`` for the mapping.
        """
        if factor is not None:
            if replicas is not None:
                raise PolicyError("pass either replicas or factor, not both")
            replicas = factor
        if replicas is None:
            replicas = 2
        if quorum is None and fencing is None:
            warnings.warn(
                "with_replication(factor) without an explicit quorum is "
                'deprecated; pass quorum="majority" (recommended) or '
                "quorum=1, fencing=False to keep the legacy "
                "primary-ack mode",
                DeprecationWarning,
                stacklevel=2,
            )
        if quorum == "majority":
            resolved_quorum = replicas // 2 + 1
        elif quorum is None:
            resolved_quorum = 1
        elif isinstance(quorum, int) and not isinstance(quorum, bool):
            resolved_quorum = quorum
        else:
            raise PolicyError(f'quorum must be an int or "majority", not {quorum!r}')
        if fencing is None:
            # Fencing only auto-enables for a real majority quorum: a fenced
            # group needs a majority of voters to elect, so quorum=1 (the
            # legacy primary-ack mode) keeps promote-the-freshest failover.
            fencing = quorum is not None and resolved_quorum > 1
        return replace(
            self,
            replication_factor=replicas,
            quorum=resolved_quorum,
            fencing=bool(fencing),
            sync=sync if sync is not None else self.sync,
            readonly=tuple(readonly) if readonly is not None else self.readonly,
        )

    def with_caching(
        self,
        policy: Optional[CachePolicy] = None,
        *,
        max_entries: Optional[int] = None,
        lease_ms: Optional[float] = None,
        mode: Optional[str] = None,
        cacheable: Optional[Sequence[str]] = None,
    ) -> "ServicePolicy":
        """A copy caching the service's ``@cacheable`` reads client-side.

        Pass a full :class:`~repro.runtime.caching.CachePolicy`, or just the
        knobs to change on the default one (``max_entries``, ``lease_ms``,
        ``mode``, an explicit ``cacheable`` member list)::

            ServicePolicy(transport="rmi").with_caching(lease_ms=100)
        """
        if policy is not None and any(
            knob is not None for knob in (max_entries, lease_ms, mode, cacheable)
        ):
            raise PolicyError("pass either a CachePolicy or individual knobs, not both")
        if policy is None:
            base = CachePolicy()
            policy = CachePolicy(
                max_entries=max_entries if max_entries is not None else base.max_entries,
                lease_ms=lease_ms if lease_ms is not None else base.lease_ms,
                mode=mode if mode is not None else base.mode,
                cacheable=tuple(cacheable) if cacheable is not None else (),
            )
        return replace(self, cache=policy)

    def with_middleware(
        self, *interceptors, server: Optional[Sequence] = None
    ) -> "ServicePolicy":
        """A copy whose calls run through ``interceptors``, in order.

        Positional ``interceptors`` replace the client-side chain (each
        call's begin/end/abort brackets run around the enqueue → settle
        lifecycle); ``server=[...]`` additionally replaces the server-side
        chain installed on the hosting space at deploy time::

            policy.with_middleware(
                DeadlineInterceptor(0.5), MetricsInterceptor(),
                server=[RateLimitInterceptor(rate=200.0)],
            )
        """
        updated = replace(self, middleware=tuple(interceptors))
        if server is not None:
            updated = replace(updated, server_middleware=tuple(server))
        return updated

    def with_tenant(self, tenant: Optional[str]) -> "ServicePolicy":
        """A copy whose calls are stamped with ``tenant`` on the wire."""
        return replace(self, tenant=tenant)

    def with_tracing(self, sample_rate: float = 1.0) -> "ServicePolicy":
        """A copy whose sampled calls carry end-to-end trace spans.

        ``sample_rate`` picks what fraction of calls get a trace
        (deterministic counter sampling, no randomness): ``1.0`` traces
        everything, ``0.25`` every fourth call.  Sampled calls put two
        extra keys on the wire context; everything else stays
        byte-identical to an untraced policy.  Collected traces are read
        back through :meth:`~repro.api.session.Session.tracer`.
        """
        return replace(self, tracing=float(sample_rate))

    def with_static_checks(self, enabled: bool = True) -> "ServicePolicy":
        """A copy that lints the implementation at deploy time.

        With static checks on, :meth:`Session.service` runs the
        distribution-safety rules (``repro lint``'s DS101–DS106) against
        the source of the class being deployed, *before* any deployment
        side effect, and raises :class:`~repro.api.errors.PolicyError`
        naming each error-severity finding (rule id and ``path:line``).
        The check is policy-aware: the same implementation that deploys
        fine unreplicated can be refused under
        ``with_replication(3, quorum="majority")``, because replay
        determinism (DS101) is only load-bearing once a quorum group
        re-executes writes on backups.
        """
        return replace(self, static_checks=bool(enabled))

    # ------------------------------------------------------------------
    # derived views the façade consumes
    # ------------------------------------------------------------------

    @property
    def intercepted(self) -> bool:
        """Whether calls run through a client-side interceptor chain."""
        return bool(self.middleware)

    @property
    def traced(self) -> bool:
        """Whether the policy has tracing configured (even at rate 0)."""
        return self.tracing is not None

    @property
    def batched(self) -> bool:
        """Whether calls are buffered into batch messages."""
        return self.batch_window > 1

    @property
    def pipelined(self) -> bool:
        """Whether batches stream through an asynchronous in-flight window."""
        return self.pipeline_depth > 1

    @property
    def replicated(self) -> bool:
        """Whether the service object keeps backup copies."""
        return self.replication_factor > 1

    @property
    def quorum_replicated(self) -> bool:
        """Whether the group runs in quorum mode (majority acks or fencing)."""
        return self.replicated and (self.quorum > 1 or self.fencing)

    @property
    def cached(self) -> bool:
        """Whether the service serves cacheable reads from a client cache."""
        return self.cache is not None

    @property
    def backup_count(self) -> int:
        """Backup copies implied by ``replication_factor``."""
        return self.replication_factor - 1

    def scheduler_key(self) -> tuple:
        """Hashable identity of the pipeline scheduler this policy needs.

        Services whose policies agree on every scheduler-relevant knob share
        one session-level scheduler, so one submission stream shards and
        pipelines across all of them.
        """
        return (
            self.transport,
            self.batch_window,
            self.pipeline_depth,
            self.retry,
            self.max_failover_attempts,
        )
