"""The unified service façade: one entry point to the distribution stack.

PR 1–3 grew powerful machinery — batched invocation, the pipelined
scheduler, fault tolerance, replication with automatic failover — but left
its composition to the caller: every workload hand-wired ``BatchingProxy``,
``PipelineScheduler``, ``FaultTolerantInvoker`` and ``ReplicaManager`` in
the right order.  This package removes that configuration burden.  A
:class:`~repro.api.session.Session` is opened on a cluster, a declarative
:class:`~repro.api.policy.ServicePolicy` names the behaviours wanted, and
:meth:`~repro.api.session.Session.service` hands back a
:class:`~repro.api.service.Service` with the whole stack assembled behind
plain method calls::

    from repro.api import ServicePolicy, Session

    policy = (ServicePolicy(transport="rmi")
              .with_batching(32)
              .with_pipelining(8)
              .with_replication(2, quorum=1))
    with Session(cluster, node="client") as session:
        orders = session.service("orders", policy, impl=OrderIntake(),
                                 node="shard-0")
        futures = [orders.future.submit(f"sku-{i}", 1, 10) for i in range(256)]
        session.drain()
        ids = [f.result() for f in futures]

Cross-cutting concerns — deadlines, per-tenant rate limits, metrics — hang
on the same policy via :mod:`repro.api.middleware`::

    policy = policy.with_middleware(
        DeadlineInterceptor(0.5), MetricsInterceptor(),
    ).with_tenant("analytics")

See ``docs/MIGRATION.md`` for the mapping from the old hand-wired stacks to
policy fields.
"""

from repro.api import errors
from repro.api.middleware import (
    CallContext,
    DeadlineInterceptor,
    Interceptor,
    InterceptorChain,
    MetricsInterceptor,
    RateLimitInterceptor,
)
from repro.api.policy import ServicePolicy
from repro.api.service import FutureView, Service
from repro.api.session import Session
from repro.core.interfaces import cacheable
from repro.runtime.caching import CachePolicy

__all__ = [
    "CachePolicy",
    "CallContext",
    "DeadlineInterceptor",
    "FutureView",
    "Interceptor",
    "InterceptorChain",
    "MetricsInterceptor",
    "RateLimitInterceptor",
    "Service",
    "ServicePolicy",
    "Session",
    "cacheable",
    "errors",
]
