"""Call pipes: how a façade service turns method calls into network traffic.

A *pipe* is the strategy object behind one
:class:`~repro.api.service.Service`.  All three pipes share a tiny protocol —
``enqueue(member, args, kwargs) -> InvocationFuture``, ``flush()``,
``drain()`` — so the service's plain-call, ``.future`` and ``.flush()`` forms
work identically whatever the policy composed:

* :class:`DirectPipe` — synchronous per-call dispatch, optionally through a
  :class:`~repro.runtime.faulttolerance.FaultTolerantInvoker` (retries and
  replica failover).  ``ServicePolicy()`` with no batching/pipelining.
* :class:`BatchPipe` — calls buffer into windows of ``batch_window`` and ship
  as one message per window, synchronously.  Replaces hand-wired
  :class:`~repro.runtime.batching.BatchingProxy` composition.
* :class:`StreamPipe` — calls stream through the session's shared
  :class:`~repro.runtime.pipelining.PipelineScheduler`: sharded per node,
  up to ``pipeline_depth`` batches in flight, out-of-order completion,
  batch-aware retry and failover.  Replaces hand-wired scheduler composition.

The composition order the old quickstart spelled out by hand — replication
under fault tolerance under batching under pipelining — is encoded here once.
"""

from __future__ import annotations

from typing import Any, Optional

from repro._errors import InvocationError
from repro.api.middleware import CallContext, InterceptorChain
from repro.observability.tracing import SampleGate
from repro.runtime.batching import _InternalBatcher
from repro.runtime.pipelining import InvocationFuture, PipelineScheduler


class _SessionScheduler(PipelineScheduler):
    """The pipelining engine owned by a façade session.

    Identical to :class:`~repro.runtime.pipelining.PipelineScheduler` but
    exempt from the direct-construction deprecation warning: internal
    composition is the supported path.
    """

    _warn_on_direct_construction = False


class DirectPipe:
    """Synchronous per-call dispatch (no batching, no pipelining).

    Every enqueued call performs its round trip immediately; the returned
    future is already resolved (or failed).  When the service's policy asks
    for retries — or its session carries a replica manager — calls route
    through a :class:`~repro.runtime.faulttolerance.FaultTolerantInvoker`,
    so transient drops retry and fatal failures of replicated targets chase
    the promoted replica.
    """

    def __init__(self, service: Any) -> None:
        self._service = service

    def enqueue(
        self, member: str, args: tuple, kwargs: dict, context: Optional[dict] = None
    ) -> InvocationFuture:
        """Invoke now; return the (already completed) future."""
        service = self._service
        session = service.session
        session._ensure_open()
        future = InvocationFuture(member)
        clock = session.space.network.clock
        future.submitted_at = clock.now
        invoker = session._current_invoker(service.policy)
        # The invoker retries/fails over internally; every *recovered*
        # failure record corresponds to one extra ship, so the log delta
        # recovers the true attempt count ("> 1 after a retry", per
        # InvocationFuture's contract).  Unrecovered records are terminal
        # and added no carrier.
        failures_before = invoker.log.recovered_failures if invoker is not None else 0
        try:
            if invoker is not None:
                value = invoker.invoke(
                    service.reference,
                    member,
                    tuple(args),
                    dict(kwargs),
                    transport=service.policy.transport,
                    space=session.space,
                    context=context,
                )
            else:
                value = session.space.invoke_remote(
                    service.reference,
                    member,
                    tuple(args),
                    dict(kwargs),
                    transport=service.policy.transport,
                    context=context,
                )
        except Exception as exc:  # noqa: BLE001 - carried by the future
            error: Optional[BaseException] = exc
        else:
            error = None
        future.completed_at = clock.now
        future.attempts = 1 + (
            invoker.log.recovered_failures - failures_before
            if invoker is not None
            else 0
        )
        if error is not None:
            future._fail(error)
        else:
            future._resolve(value)
        return future

    def flush(self) -> None:
        """Nothing is ever buffered on a direct pipe."""

    def drain(self) -> None:
        """Nothing is ever in flight on a direct pipe."""

    def stop(self) -> None:
        """Nothing to retire on a direct pipe."""

    @property
    def pending(self) -> int:
        """Buffered calls awaiting a flush (always 0 here)."""
        return 0


class BatchPipe:
    """Buffered dispatch: windows of calls ship as single batch messages.

    The pipe owns an internal batching engine targeting the service's
    current reference; the engine is rebuilt transparently when the
    reference moves (failover rebind, migration) or the session gains a
    fault-tolerant invoker, so long-lived services keep working across
    topology changes.
    """

    def __init__(self, service: Any) -> None:
        self._service = service
        self._batcher: Optional[_InternalBatcher] = None

    def _engine(self) -> _InternalBatcher:
        service = self._service
        session = service.session
        reference = service.reference
        invoker = session._current_invoker(service.policy)
        batcher = self._batcher
        if (
            batcher is None
            or batcher._reference != reference
            or batcher._invoker is not invoker
        ):
            if batcher is not None and len(batcher):
                try:
                    batcher.flush()
                except Exception:  # noqa: BLE001 - belongs to the stale window
                    # flush() already failed every future of the superseded
                    # window (e.g. the old export was retired by a rebind);
                    # the error is theirs and must not escape an unrelated
                    # enqueue against the fresh reference.
                    pass
            batcher = _InternalBatcher(
                reference,
                space=session.space,
                max_batch=service.policy.batch_window,
                transport=service.policy.transport,
                invoker=invoker,
            )
            self._batcher = batcher
        return batcher

    def enqueue(
        self, member: str, args: tuple, kwargs: dict, context: Optional[dict] = None
    ) -> InvocationFuture:
        """Buffer one call; auto-flushes at the policy's batch window."""
        self._service.session._ensure_open()
        return self._engine().call_with_context(member, tuple(args), dict(kwargs), context)

    def flush(self) -> None:
        """Ship the buffered window now."""
        if self._batcher is not None:
            self._batcher.flush()

    def drain(self) -> None:
        """Synchronous pipe: flushing is draining."""
        self.flush()

    @property
    def pending(self) -> int:
        """Buffered calls awaiting a flush."""
        return len(self._batcher) if self._batcher is not None else 0

    @property
    def batches_flushed(self) -> int:
        """Batch messages this pipe has shipped."""
        return self._batcher.batches_flushed if self._batcher is not None else 0

    def stop(self) -> None:
        """Retire the pipe: fail (don't ship) whatever is still buffered.

        Mirrors :meth:`PipelineScheduler.stop` for the synchronous path — a
        closed session's held futures must not send messages when someone
        later demands their ``result()`` (the resolution wait would
        otherwise flush the window).
        """
        batcher = self._batcher
        if batcher is None:
            return
        batcher.abandon(
            InvocationError("session closed before this call's batch window shipped")
        )


class StreamPipe:
    """Pipelined dispatch through the session's shared scheduler.

    Services whose policies agree on the scheduler-relevant knobs share one
    :class:`~repro.runtime.pipelining.PipelineScheduler`, so a submission
    stream touching several services (shards) is sharded per node, windowed,
    and completed out of order exactly like the hand-wired PR 2 stack — with
    failover-aware requeues when the session replicates.
    """

    def __init__(self, service: Any, scheduler: PipelineScheduler) -> None:
        self._service = service
        #: The shared scheduler carrying this service's traffic.
        self.scheduler = scheduler
        self._outstanding = 0

    def enqueue(
        self, member: str, args: tuple, kwargs: dict, context: Optional[dict] = None
    ) -> InvocationFuture:
        """Submit one call to the shared pipeline; returns its future."""
        self._service.session._ensure_open()
        future = self.scheduler.submit_with_context(
            self._service.reference, member, tuple(args), dict(kwargs), context
        )
        # The scheduler is shared across services, so per-service accounting
        # lives here: one up on submit, one down when the future settles.
        self._outstanding += 1
        future.add_done_callback(self._on_done)
        return future

    def _on_done(self, _future: InvocationFuture) -> None:
        self._outstanding -= 1

    def flush(self) -> None:
        """Ship every buffered sub-batch of the shared scheduler."""
        self.scheduler.flush()

    def drain(self) -> None:
        """Pump the event queue until the shared stream is fully resolved."""
        self.scheduler.drain()

    @property
    def pending(self) -> int:
        """Futures THIS service submitted and not yet resolved.

        Not the shared scheduler's aggregate — sibling services' traffic on
        the same scheduler is not counted (see ``scheduler.outstanding`` for
        the whole stream).
        """
        return self._outstanding

    def stop(self) -> None:
        """Nothing pipe-local to retire: the owning session stops the shared
        scheduler itself (it may carry other services' traffic too)."""


class ChainedPipe:
    """A pipe wrapper running every call through an interceptor chain.

    Built by the session when a policy carries ``middleware``; wraps any of
    the three pipes.  Every enqueue builds one
    :class:`~repro.api.middleware.CallContext`, opens the chain's bracket
    (``begin`` in registration order) and — because a future transitions
    pending→done exactly once — settles it exactly once when the future
    resolves (``end``) or fails (``abort``), whatever dispatch path the
    inner pipe took.  A ``begin`` rejection fails the call locally: nothing
    ships, and the returned future already carries the typed error.

    The context's wire form (call id, tenant, deadline, trace reference)
    rides the request, so the serving space's chains observe the same
    control fields.

    When the policy enables tracing, sampled calls open a root *client*
    span here — ended at the future's settlement — and carry its
    ``(trace_id, span_id)`` on the wire, where every downstream layer
    (queues, links, pools, server dispatch, replication) hangs its own
    spans.  Unsampled calls on a middleware-free policy take the inner
    pipe's plain path untouched, so a sample rate of 0 is wire-identical
    to tracing never having been configured.
    """

    def __init__(
        self,
        service: Any,
        inner: Any,
        chain: InterceptorChain,
        tracer: Any = None,
        sample_rate: float = 1.0,
    ) -> None:
        self._service = service
        #: The wrapped pipe doing the actual dispatch.
        self.inner = inner
        #: The client-side chain bracketing this service's calls.
        self.chain = chain
        #: The session's tracer (``None`` when the policy is untraced).
        self.tracer = tracer
        self._gate = SampleGate(sample_rate) if tracer is not None else None

    def enqueue(
        self, member: str, args: tuple, kwargs: dict, context: Optional[dict] = None
    ) -> InvocationFuture:
        """Open the call's bracket, dispatch through the inner pipe, settle on done."""
        service = self._service
        session = service.session
        clock = session.space.network.clock
        tracer = self.tracer if self._gate is not None and self._gate.admit() else None
        if tracer is None and self.chain.empty:
            # Untraced (or unsampled) call on a middleware-free policy:
            # nothing to bracket, nothing to put on the wire.
            return self.inner.enqueue(member, args, kwargs, context=context)
        ctx = CallContext(
            service=service.name,
            member=member,
            args=tuple(args),
            kwargs=dict(kwargs),
            tenant=service.policy.tenant,
            side="client",
            clock=clock,
        )
        if tracer is not None:
            ctx.tracer = tracer
            ctx.trace = tracer.start_trace(
                f"{service.name}.{member}", kind="client", ts=clock.now, service=service.name
            )
        try:
            bracket = self.chain.open(ctx)
        except Exception as error:  # noqa: BLE001 - rejection becomes the future's error
            future = InvocationFuture(member)
            future.submitted_at = clock.now
            future.completed_at = clock.now
            future._fail(error)
            if ctx.trace is not None:
                tracer.end_span(ctx.trace, ts=clock.now, error=type(error).__name__)
            return future
        try:
            future = self.inner.enqueue(member, args, kwargs, context=ctx.to_wire())
        except BaseException as error:
            # Synchronous dispatch failures (DirectPipe round trips, a full
            # window auto-flush failing) must still settle the bracket.
            bracket.fail(error)
            if ctx.trace is not None:
                tracer.end_span(ctx.trace, ts=clock.now, error=type(error).__name__)
            raise

        def _settle(done: InvocationFuture) -> None:
            # The future's attempt count is final by the time it settles;
            # expose it to end/abort hooks (1 for never-retried calls).
            ctx.attempt = max(1, done.attempts)
            if done.ok:
                bracket.close(done._value)
            else:
                bracket.fail(done._error)
            if ctx.trace is not None:
                if done.ok:
                    tracer.end_span(ctx.trace, ts=clock.now, attempts=ctx.attempt)
                else:
                    tracer.end_span(
                        ctx.trace,
                        ts=clock.now,
                        attempts=ctx.attempt,
                        error=type(done._error).__name__,
                    )

        future.add_done_callback(_settle)
        return future

    def flush(self) -> None:
        """Ship whatever the inner pipe has buffered."""
        self.inner.flush()

    def drain(self) -> None:
        """Drain the inner pipe (every settled future settles its bracket)."""
        self.inner.drain()

    def stop(self) -> None:
        """Retire the inner pipe; abandoned calls abort their brackets."""
        self.inner.stop()

    @property
    def pending(self) -> int:
        """Buffered calls awaiting a flush, per the inner pipe."""
        return self.inner.pending

    @property
    def scheduler(self) -> Optional[PipelineScheduler]:
        """The shared scheduler behind the inner pipe (``None`` if unpipelined)."""
        return getattr(self.inner, "scheduler", None)

    @property
    def batches_flushed(self) -> int:
        """Batch messages the inner pipe shipped (0 for non-batching pipes)."""
        return getattr(self.inner, "batches_flushed", 0)
