"""Public error façade: the typed exception hierarchy in one import.

Everything the framework can raise at an application derives from
:class:`ReproError`, and this module is the supported place to import it
from — callers no longer reach into internals (the historical
``repro.errors`` path still works but emits a :class:`DeprecationWarning`).
Catching is tiered: ``except ReproError`` for everything, a subsystem base
(:class:`NetworkError`, :class:`ReplicationError`, :class:`TransportError`,
…) for a layer, or a leaf class for one condition::

    from repro.api.errors import FencedError, QuorumLostError, ThrottledError

    try:
        orders.submit(sku, qty, price)
    except ThrottledError:
        ...   # transient: back off and retry
    except QuorumLostError:
        ...   # write not acknowledged: a majority of replicas is unreachable

The retry taxonomy the runtime applies is visible in the types:
:class:`AdmissionError` (and its subclass :class:`ThrottledError`) and
:class:`MessageDroppedError` are transient; :class:`PartitionError` and
:class:`NodeUnreachableError` are fatal for a single target but recoverable
through replica failover; :class:`FencedError` means the callee's epoch is
superseded and the call should chase the current primary.
"""

from __future__ import annotations

from repro._errors import (
    AdmissionError,
    CorpusError,
    DeadlineExceededError,
    FencedError,
    GenerationError,
    InterfaceExtractionError,
    InvocationError,
    MessageDroppedError,
    MigrationError,
    NamingError,
    NetworkError,
    NodeUnreachableError,
    NotTransformableError,
    PartitionError,
    PolicyError,
    QuorumLostError,
    RateLimitError,
    RedistributionError,
    RemoteInvocationError,
    ReplicationError,
    ReproError,
    RewriteError,
    RuntimeLayerError,
    SerializationError,
    ThrottledError,
    TransformationError,
    TransportError,
    UnknownClassError,
    UnknownObjectError,
    UnknownTransportError,
)

__all__ = [
    "AdmissionError",
    "CorpusError",
    "DeadlineExceededError",
    "FencedError",
    "GenerationError",
    "InterfaceExtractionError",
    "InvocationError",
    "MessageDroppedError",
    "MigrationError",
    "NamingError",
    "NetworkError",
    "NodeUnreachableError",
    "NotTransformableError",
    "PartitionError",
    "PolicyError",
    "QuorumLostError",
    "RateLimitError",
    "RedistributionError",
    "RemoteInvocationError",
    "ReplicationError",
    "ReproError",
    "RewriteError",
    "RuntimeLayerError",
    "SerializationError",
    "ThrottledError",
    "TransformationError",
    "TransportError",
    "UnknownClassError",
    "UnknownObjectError",
    "UnknownTransportError",
]
