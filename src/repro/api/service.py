"""The service façade: one object in front of the whole distribution stack.

A :class:`Service` is what application code holds after asking a
:class:`~repro.api.session.Session` for a named remote object.  It exposes
three call forms, uniform across every
:class:`~repro.api.policy.ServicePolicy`:

* **plain calls** — ``svc.submit(sku, 1, 10)`` behaves like calling the
  object directly: it returns the value (or raises the call's error),
  whatever batching/pipelining/failover machinery ran underneath;
* **futures** — ``svc.future.submit(sku, 1, 10)`` (or
  ``svc.future("submit", sku, 1, 10)``) enqueues the call and returns an
  :class:`~repro.runtime.pipelining.InvocationFuture` immediately;
* **flush/drain** — ``svc.flush()`` ships any buffered window now,
  ``svc.drain()`` additionally waits out everything in flight.

The service keeps no distribution logic of its own: its
:class:`~repro.api.dispatch` pipe — chosen by the session from the policy —
does the composing.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.runtime.caching import cached_enqueue
from repro.runtime.pipelining import InvocationFuture
from repro.runtime.remote_ref import RemoteRef


class FutureView:
    """The ``.future`` face of a service: calls return futures, not values.

    Usable both attribute-style (``svc.future.submit(...)``) and call-style
    (``svc.future("submit", ...)``).  Futures resolve when their window
    round-trips; ``result()`` drives the underlying pipe as needed.
    """

    def __init__(self, service: "Service") -> None:
        self._service = service

    def __call__(self, member: str, *args: Any, **kwargs: Any) -> InvocationFuture:
        """Enqueue ``member`` and return its future immediately."""
        return self._service._enqueue(member, args, kwargs)

    def __getattr__(self, member: str) -> Any:
        if member.startswith("_"):
            raise AttributeError(member)

        def enqueue(*args: Any, **kwargs: Any) -> InvocationFuture:
            return self._service._enqueue(member, args, kwargs)

        enqueue.__name__ = member
        # Memoize so hot submission loops build one closure per member, not
        # one per call (the closure reads the pipe dynamically, so caching
        # is safe across rebinds).
        self.__dict__[member] = enqueue
        return enqueue


class Service:
    """A policy-configured façade over one named remote (or replicated) object.

    Built by :meth:`~repro.api.session.Session.service`; not constructed
    directly.  Attribute calls dispatch through the policy's pipe::

        svc = session.service("orders", ServicePolicy(batch_window=32))
        order_id = svc.submit("sku-1", 2, 10)          # plain call
        futures = [svc.future.submit(s, 1, 10) for s in skus]
        svc.flush()                                     # one message per window
        ids = [f.result() for f in futures]

    Attribute-style calls cannot reach remote members whose names collide
    with the façade's own attributes (``call``, ``flush``, ``drain``,
    ``future``, ``pending``, ``name``, ``policy``, ``group``, ``session``,
    ``scheduler``, ``reference``, ``cache``) — use the explicit forms
    ``svc.call("flush")`` / ``svc.future("flush")`` for those.  Dispatch
    through a closed session raises
    :class:`~repro.api.errors.PolicyError`.
    """

    def __init__(
        self,
        session: Any,
        name: str,
        policy: Any,
        reference: RemoteRef,
        group: Any = None,
        cache: Any = None,
        cacheable: frozenset = frozenset(),
    ) -> None:
        self.session = session
        #: The well-known name this service is bound to.
        self.name = name
        #: The declarative :class:`~repro.api.policy.ServicePolicy` in force.
        self.policy = policy
        #: The replica group when the policy replicates, else ``None``.
        self.group = group
        self._reference = reference
        #: The client-side :class:`~repro.runtime.caching.ResultCache` when
        #: the policy caches, else ``None``.
        self._cache = cache
        self._cacheable = cache.cacheable if cache is not None else frozenset(cacheable)
        self._pipe = session._build_pipe(self)
        self._future_view = FutureView(self)

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    @property
    def reference(self) -> RemoteRef:
        """The current remote reference, resolved through failover redirects.

        The session's rebind listener keeps this fresh when the name moves
        (failover, migration); a replica manager's published redirects are
        also followed, so traffic enqueued after a promotion goes straight to
        the new primary.
        """
        manager = self.session.replica_manager
        if manager is not None:
            resolved = manager.current_ref(self._reference)
            if resolved is not self._reference:
                self._reference = resolved
        return self._reference

    # ------------------------------------------------------------------
    # the three call forms
    # ------------------------------------------------------------------

    def call(self, member: str, *args: Any, **kwargs: Any) -> Any:
        """Invoke ``member`` and return its value (the plain-call form).

        On a batched or pipelined service the buffered window is shipped as
        needed for this call's result to materialise.
        """
        return self._enqueue(member, args, kwargs).result()

    def _enqueue(self, member: str, args: tuple, kwargs: dict) -> InvocationFuture:
        """Dispatch one call through the cache (if any) and the policy's pipe.

        Every call form — plain, ``.future``, attribute-style — funnels
        through :func:`~repro.runtime.caching.cached_enqueue` (the one place
        the coherence protocol lives), so caching behaves identically
        whatever pipe the policy composed.
        """
        cache = self._cache
        if cache is None:
            return self._pipe.enqueue(member, args, kwargs)
        return cached_enqueue(
            cache, self._cacheable, self.reference, member, args, kwargs,
            self._pipe.enqueue,
        )

    def __getattr__(self, member: str) -> Any:
        if member.startswith("_"):
            raise AttributeError(member)

        def invoke(*args: Any, **kwargs: Any) -> Any:
            return self.call(member, *args, **kwargs)

        invoke.__name__ = member
        # One closure per member, not one per call (reads the pipe via
        # self.call dynamically, so caching is safe across rebinds).
        self.__dict__[member] = invoke
        return invoke

    @property
    def future(self) -> FutureView:
        """The future-returning face of this service."""
        return self._future_view

    def flush(self) -> None:
        """Ship any buffered window of calls now."""
        self._pipe.flush()

    def drain(self) -> None:
        """Flush, then wait (in simulated time) until nothing is in flight."""
        self._pipe.drain()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def cache(self) -> Optional[Any]:
        """This service's result cache (``None`` unless the policy caches).

        Exposes the hit/miss/invalidation counters benchmarks and the
        adaptive policy's hit-rate term consume.
        """
        return self._cache

    def _on_reference_moved(self, old: Optional[RemoteRef]) -> None:
        """Session rebind hook: flush cache entries held against the old ref."""
        if self._cache is not None and old is not None:
            self.session._flush_cached_reference(old)

    @property
    def scheduler(self) -> Optional[Any]:
        """The shared pipeline scheduler carrying this service's traffic.

        ``None`` unless the policy pipelines.  Exposes the measured-depth and
        retry counters (``observed_pipeline_depth``, ``calls_retried``,
        ``calls_redirected``, ``out_of_order_completions``, ...) that
        benchmarks and the adaptive policy consume.
        """
        return getattr(self._pipe, "scheduler", None)

    @property
    def pending(self) -> int:
        """Calls enqueued through this service and not yet resolved."""
        return self._pipe.pending

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Service {self.name!r} policy={self.policy!r} ref={self._reference}>"
