"""Sessions: the single entry point of the :mod:`repro.api` façade.

A :class:`Session` represents one client's view of a cluster.  It owns —
and, crucially, *tears down* — every piece of shared machinery the services
created through it need:

* one pipeline scheduler per distinct policy shape (so submission streams
  shard and pipeline across all services that agree on their knobs),
* at most one :class:`~repro.network.heartbeat.HeartbeatDetector` and one
  :class:`~repro.runtime.replication.ReplicaManager` (created lazily when the
  first replicated service appears),
* fault-tolerant invokers for the synchronous pipes, and
* a naming-service rebind listener that keeps every service's reference
  fresh across failovers and migrations.

:meth:`Session.close` unregisters the rebind listener, detaches the replica
manager from the detector, stops the heartbeat probes and unwatches their
nodes — so opening and closing many sessions in one process leaks neither
callbacks nor event-queue activity.  Sessions are context managers::

    with Session(cluster, node="client") as session:
        orders = session.service("orders", policy, impl=OrderIntake(),
                                 node="server")
        orders.submit("sku-1", 2, 10)
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro._errors import PolicyError
from repro.api.dispatch import (
    BatchPipe,
    ChainedPipe,
    DirectPipe,
    StreamPipe,
    _SessionScheduler,
)
from repro.api.middleware import InterceptorChain, MetricsInterceptor
from repro.api.policy import ServicePolicy
from repro.api.service import Service
from repro.core.interfaces import cacheable_members
from repro.network.heartbeat import HeartbeatDetector
from repro.network.metrics import LatencyHistogram
from repro.observability.tracing import Tracer
from repro.runtime.caching import CacheManager
from repro.runtime.faulttolerance import NO_RETRY, FaultTolerantInvoker
from repro.runtime.remote_ref import RemoteRef
from repro.runtime.replication import ReplicaManager


class Session:
    """One client's façade over a cluster: create and consume named services.

    Parameters
    ----------
    cluster:
        The :class:`~repro.runtime.cluster.Cluster` to operate against.
    node:
        The cluster node this session's calls are issued from (defaults to
        the cluster's first node).
    """

    def __init__(self, cluster: Any, *, node: Optional[str] = None) -> None:
        self.cluster = cluster
        self.node_id = node if node is not None else cluster.default_node_id
        #: The address space this session issues calls from.
        self.space = cluster.space(self.node_id)
        self._services: Dict[str, Service] = {}
        self._schedulers: Dict[tuple, _SessionScheduler] = {}
        self._invokers: Dict[tuple, Optional[FaultTolerantInvoker]] = {}
        self._detector: Optional[HeartbeatDetector] = None
        self._manager: Optional[ReplicaManager] = None
        self._cache_manager: Optional[CacheManager] = None
        self._tracer: Optional[Tracer] = None
        self._adaptive: Optional[Any] = None
        self._adapt_epoch = 0
        #: ``(name, group, host node, reference)`` of every deployment this
        #: session made, consumed by :meth:`dismantle`.
        self._deployments: List[tuple] = []
        #: ``(chain, spaces)`` of every server-side middleware install this
        #: session made at deploy time, removed again on :meth:`close`.
        self._server_chains: List[tuple] = []
        self._closed = False
        cluster.naming.on_rebind(self._on_rebind)

    # ------------------------------------------------------------------
    # service creation / lookup
    # ------------------------------------------------------------------

    def service(
        self,
        name: str,
        policy: Optional[ServicePolicy] = None,
        *,
        impl: Any = None,
        node: Optional[str] = None,
        backup_nodes: Optional[Sequence[str]] = None,
    ) -> Service:
        """Obtain the :class:`~repro.api.service.Service` bound to ``name``.

        Without ``impl``, the name is looked up in the cluster's naming
        service (some other party deployed it).  With ``impl``, this session
        deploys it first: the object is exported from ``node`` (default: the
        first node that is not this session's own) and bound to ``name`` —
        or, when the policy's ``replication_factor`` exceeds 1, registered as
        a replica group with ``replication_factor - 1`` backups on
        ``backup_nodes`` (default: ring placement over the remaining nodes)
        with heartbeat-driven failover armed.

        Either way the returned service dispatches per ``policy``: plain
        calls, ``.future`` calls, batching, pipelining, retries and failover
        are all assembled internally, in the right order.

        One detector/manager pair serves the whole session, so the
        *replication-infrastructure* knobs (``transport`` for replication
        traffic, ``heartbeat_interval``, ``miss_threshold``, the default
        ``sync``) are taken from the **first** replicated service's policy;
        later replicated services contribute their per-group settings
        (``sync`` override, ``readonly``, placement) but cannot re-tune the
        shared detector.  Open separate sessions for genuinely different
        failure-detection regimes.
        """
        self._ensure_open()
        if policy is None:
            policy = ServicePolicy()
        if name in self._services:
            raise PolicyError(
                f"session already has a service named {name!r}; "
                "hold on to the object it returned"
            )
        if policy.static_checks:
            if impl is None:
                raise PolicyError(
                    "static_checks only applies when this session deploys "
                    "the implementation (pass impl=...); attaching to an "
                    "existing name gives no source to verify"
                )
            # Lint before any deployment side effect: a refused service
            # must leave no export, no binding and no replica group behind.
            self._verify_static(impl, policy)
        group = None
        host: Optional[str] = None
        #: Nodes hosting the implementation (primary + backups when
        #: replicated) — where server-side middleware installs.
        host_nodes: List[str] = []
        if impl is None:
            if policy.server_middleware:
                raise PolicyError(
                    "server_middleware only applies when this session deploys "
                    "the implementation (pass impl=...); attaching to an "
                    "existing name cannot reconfigure its hosting node's "
                    "dispatch path"
                )
            if policy.replicated:
                raise PolicyError(
                    "replication_factor only applies when this session deploys "
                    "the implementation (pass impl=...); attaching to an "
                    "existing name gives no failover machinery — drop the "
                    "replication knob, or deploy the service replicated"
                )
            reference = self.cluster.naming.lookup(name)
        elif name in self.cluster.naming:
            # Deploying over an existing binding would silently steal the
            # name from whoever published it (and rewire their live services
            # through the rebind listeners).  Failover/migration rebinds are
            # legitimate; a second *deploy* of the same name is not.
            raise PolicyError(
                f"name {name!r} is already bound in this cluster's naming "
                "service; choose another name, or attach to the existing "
                "deployment by omitting impl"
            )
        elif policy.replicated:
            primary = node if node is not None else self._pick_host()
            backups = self._backup_nodes(policy, primary, backup_nodes)
            manager = self._ensure_replication(policy)
            for watched in (primary, *backups):
                if watched != self.node_id:
                    self._detector.watch(watched)
            group = manager.replicate(
                impl,
                name=name,
                primary_node=primary,
                backup_nodes=backups,
                readonly=policy.readonly,
                sync=policy.sync,
                quorum=policy.quorum,
                fencing=policy.fencing,
            )
            reference = group.primary_ref
            host_nodes = [primary, *backups]
        else:
            host = node if node is not None else self._pick_host()
            reference = self.cluster.space(host).export(impl)
            self.cluster.naming.rebind(name, reference)
            host_nodes = [host]
        if policy.server_middleware and host_nodes:
            # One chain INSTANCE shared by every hosting space: a replica
            # group's primary and backups then share interceptor state, so
            # a failover re-ship neither double-charges a rate-limit bucket
            # nor resets accumulated metrics.
            chain = InterceptorChain(policy.server_middleware)
            spaces = [self.cluster.space(host_node) for host_node in host_nodes]
            for space in spaces:
                space.use_middleware(chain)
            self._server_chains.append((chain, spaces))
        cache = None
        cacheable: frozenset = frozenset()
        if policy.cached:
            # Cacheability metadata comes from the implementation's
            # ``@cacheable`` markers when this session deploys it; attaching
            # to a foreign deployment relies on the CachePolicy's explicit
            # ``cacheable`` list (unioned in by the cache itself).
            if impl is not None:
                cacheable = cacheable_members(type(impl))
            cache = self._ensure_cache_manager().create_cache(policy.cache, cacheable)
        service = Service(
            self, name, policy, reference, group=group, cache=cache, cacheable=cacheable
        )
        self._services[name] = service
        if impl is not None:
            self._deployments.append((name, group, host, reference))
        return service

    def _verify_static(self, impl: Any, policy: ServicePolicy) -> None:
        """Run the distribution-safety rules against ``impl``'s source.

        Raises :class:`PolicyError` naming every error-severity finding
        (rule id + ``path:line``) when the implementation violates a
        contract the policy makes load-bearing — e.g. DS101
        (nondeterministic writes) escalates to an error under quorum
        replication because backups re-execute acknowledged writes.
        """
        from repro.analysis import verify_deployment

        cls = type(impl)
        try:
            findings = verify_deployment(cls, policy)
        except (OSError, TypeError) as error:
            raise PolicyError(
                f"static checks requested but the source of {cls.__name__!r} "
                f"cannot be recovered: {error}"
            ) from error
        if findings:
            details = "; ".join(
                f"{finding.rule} at {finding.location}: {finding.message}"
                for finding in findings
            )
            raise PolicyError(
                f"static checks refuse to deploy {cls.__name__!r}: {details}"
            )

    def services(self) -> List[Service]:
        """Every service created through this session, in creation order."""
        return list(self._services.values())

    def metrics(self) -> Dict[str, Dict[str, Any]]:
        """Per-side merged counters from every metrics interceptor in play.

        Scans the client (``middleware``) and server (``server_middleware``)
        chains of every service this session created for
        :class:`~repro.api.middleware.MetricsInterceptor` instances and
        merges their snapshots **per side**::

            {"client": {"members": {member: {"calls", "errors", "total_latency"}},
                        "latency": {...histogram summary...}},
             "server": {...same shape...}}

        Client and server chains are deliberately *not* summed into one
        counter: when both sides install metrics, every call is observed
        twice (once per side of the wire), and a flat merge would
        double-count it.  An interceptor shared by several policies is
        counted once per side; the latency digests combine via
        :meth:`~repro.network.metrics.LatencyHistogram.merge`.
        """
        report: Dict[str, Dict[str, Any]] = {}
        seen: set = set()
        sides = (
            ("client", lambda policy: policy.middleware),
            ("server", lambda policy: policy.server_middleware),
        )
        for side, chain_of in sides:
            members: Dict[str, Dict[str, float]] = {}
            histogram = LatencyHistogram()
            for service in self._services.values():
                for interceptor in chain_of(service.policy):
                    if not isinstance(interceptor, MetricsInterceptor):
                        continue
                    if (side, id(interceptor)) in seen:
                        continue
                    seen.add((side, id(interceptor)))
                    for member, row in interceptor.snapshot().items():
                        into = members.setdefault(
                            member, {"calls": 0, "errors": 0, "total_latency": 0.0}
                        )
                        for key, value in row.items():
                            into[key] = into.get(key, 0) + value
                    histogram.merge(interceptor.histogram)
            report[side] = {"members": members, "latency": histogram.summary()}
        return report

    def tracer(self) -> Tracer:
        """The session's tracer (created lazily, shared by every layer).

        Creating it hangs the tracer off the cluster network's ``tracer``
        attribute, which is where the dispatch, link, pool, server and
        replication layers pick it up; :meth:`close` detaches it again.
        Calls are only actually traced on services whose policy carries
        :meth:`~repro.api.policy.ServicePolicy.with_tracing`; read the
        collected traces from ``session.tracer().collector``.
        """
        self._ensure_open()
        if self._tracer is None:
            network = self.cluster.network
            self._tracer = Tracer(clock=network.clock)
            network.tracer = self._tracer
        return self._tracer

    # ------------------------------------------------------------------
    # shared machinery (internal, used by the pipes)
    # ------------------------------------------------------------------

    @property
    def replica_manager(self) -> Optional[ReplicaManager]:
        """The session's replica manager (``None`` until something replicates)."""
        return self._manager

    @property
    def detector(self) -> Optional[HeartbeatDetector]:
        """The session's heartbeat detector (``None`` until something replicates)."""
        return self._detector

    @property
    def cache_manager(self) -> Optional[CacheManager]:
        """The session's cache manager (``None`` until a policy caches)."""
        return self._cache_manager

    def _ensure_cache_manager(self) -> CacheManager:
        """Create the shared cache manager on the first cached service."""
        if self._cache_manager is None:
            self._cache_manager = CacheManager(self.space)
            if self._adaptive is not None:
                self._adaptive.connect_cache(self._cache_manager)
        return self._cache_manager

    def _flush_cached_reference(self, reference: RemoteRef) -> None:
        """Drop every cached entry held against ``reference`` (rebind hook)."""
        if self._cache_manager is not None:
            self._cache_manager.flush_reference(reference)

    def _build_pipe(self, service: Service):
        """Choose and build the dispatch pipe a service's policy calls for.

        A policy carrying ``middleware`` — or tracing — gets its pipe
        wrapped in a :class:`~repro.api.dispatch.ChainedPipe`, so every
        enqueue runs through the client-side interceptor chain (and opens
        its root trace span) whatever dispatch shape (direct, batched,
        pipelined) the other knobs picked.
        """
        policy = service.policy
        if policy.pipelined:
            pipe = StreamPipe(service, self._scheduler_for(policy))
        elif policy.batched:
            pipe = BatchPipe(service)
        else:
            pipe = DirectPipe(service)
        if policy.intercepted or policy.traced:
            pipe = ChainedPipe(
                service,
                pipe,
                InterceptorChain(policy.middleware),
                tracer=self.tracer() if policy.traced else None,
                sample_rate=policy.tracing if policy.tracing is not None else 1.0,
            )
        return pipe

    def _scheduler_for(self, policy: ServicePolicy) -> _SessionScheduler:
        """The shared scheduler for one policy shape (created on first use)."""
        key = policy.scheduler_key()
        scheduler = self._schedulers.get(key)
        if scheduler is None:
            scheduler = _SessionScheduler(
                self.space,
                max_batch=policy.batch_window,
                window=policy.pipeline_depth,
                transport=policy.transport,
                retry_policy=policy.retry if policy.retry is not None else NO_RETRY,
                replica_manager=self._manager,
                max_failover_attempts=policy.max_failover_attempts,
            )
            self._schedulers[key] = scheduler
            if self._adaptive is not None:
                # Keep the adaptive heuristic fed with *measured* pipeline
                # depth from EVERY session-owned scheduler: the manager
                # aggregates its sources traffic-weighted, so a second
                # policy shape adds a signal instead of replacing the first.
                self._adaptive.connect_pipeline(scheduler)
        return scheduler

    def _current_invoker(self, policy: ServicePolicy) -> Optional[FaultTolerantInvoker]:
        """The fault-tolerant invoker for synchronous pipes, or ``None``.

        Built when the policy retries or the session replicates; cached per
        policy shape and rebuilt if the replica manager appears later.
        """
        if policy.retry is None and self._manager is None:
            return None
        key = (policy.retry, policy.transport, policy.max_failover_attempts)
        invoker = self._invokers.get(key)
        if invoker is None or invoker.replica_manager is not self._manager:
            invoker = FaultTolerantInvoker(
                self.space,
                policy=policy.retry if policy.retry is not None else NO_RETRY,
                replica_manager=self._manager,
                max_failover_hops=policy.max_failover_attempts,
            )
            self._invokers[key] = invoker
        return invoker

    def _ensure_replication(self, policy: ServicePolicy) -> ReplicaManager:
        """Create the shared detector + manager on first replicated service.

        Subsequent replicated services reuse the pair as-is — the first
        policy's detector/transport settings win (see :meth:`service`).
        """
        if self._manager is not None:
            return self._manager
        self._detector = HeartbeatDetector(
            self.cluster.network,
            self.node_id,
            interval=policy.heartbeat_interval,
            miss_threshold=policy.miss_threshold,
        )
        self._manager = ReplicaManager(
            self.cluster,
            detector=self._detector,
            sync=policy.sync,
            transport=policy.transport,
        )
        self._detector.start()
        # Schedulers built before replication appeared must see the manager,
        # or their fatal-failure path would never take the failover branch.
        for scheduler in self._schedulers.values():
            scheduler.replica_manager = self._manager
        return self._manager

    def _pick_host(self) -> str:
        """The default node to deploy on: the first that is not this session's."""
        for node_id in self.cluster.node_ids():
            if node_id != self.node_id:
                return node_id
        return self.node_id

    def _backup_nodes(
        self,
        policy: ServicePolicy,
        primary: str,
        explicit: Optional[Sequence[str]],
    ) -> List[str]:
        """Backup placement: explicit nodes, or a ring over the remaining ones."""
        if explicit is not None:
            backups = list(explicit)
            if len(backups) != policy.backup_count:
                raise PolicyError(
                    f"policy wants {policy.backup_count} backup(s), "
                    f"got {len(backups)} backup node(s)"
                )
            return backups
        # Ring placement: walk the node list starting just after the primary,
        # so replicated services deployed on successive nodes spread their
        # backups instead of piling them onto the first candidate.
        nodes = [n for n in self.cluster.node_ids() if n != self.node_id]
        if primary in nodes:
            start = nodes.index(primary) + 1
            ring = nodes[start:] + nodes[:start]
        else:
            ring = nodes
        candidates = [n for n in ring if n != primary]
        if len(candidates) < policy.backup_count:
            raise PolicyError(
                f"cluster has {len(candidates)} candidate backup node(s), "
                f"policy wants {policy.backup_count}; pass backup_nodes=..."
            )
        return candidates[: policy.backup_count]

    def _on_rebind(self, name: str, old: Optional[RemoteRef], new: RemoteRef) -> None:
        """Naming listener: keep the matching service's reference fresh.

        A cached service additionally flushes entries held against the old
        reference — a failover or migration must not leave leases pointing
        at a retired export.
        """
        service = self._services.get(name)
        if service is not None:
            service._reference = new
            service._on_reference_moved(old)

    def _ensure_open(self) -> None:
        if self._closed:
            raise PolicyError("this session is closed")

    # ------------------------------------------------------------------
    # adaptivity (auto-wired; see ROADMAP "façade could auto-wire adaptivity")
    # ------------------------------------------------------------------

    @property
    def adaptive_manager(self) -> Optional[Any]:
        """The session's adaptive manager (``None`` until enabled)."""
        return self._adaptive

    def enable_adaptivity(
        self,
        application: Any,
        *,
        controller: Any = None,
        threshold: float = 0.6,
        min_calls: int = 10,
        interval: Optional[float] = None,
        attach_existing: bool = True,
    ):
        """Own an adaptive distribution manager wired to this session's stack.

        ``application`` is a deployed
        :class:`~repro.core.transformer.TransformedApplication` on this
        session's cluster (its rebindable handles are what the manager
        monitors and moves).  The session supplies the measured signals the
        heuristic amortises by: every shared pipeline scheduler is connected
        as it appears (:meth:`~repro.policy.adaptive.AdaptiveDistributionManager.connect_pipeline`,
        aggregated traffic-weighted across all of them), the session's cache
        manager feeds the hit-rate
        discount (:meth:`~repro.policy.adaptive.AdaptiveDistributionManager.connect_cache`),
        and the cluster's network feeds the measured queueing-delay weight
        (:meth:`~repro.policy.adaptive.AdaptiveDistributionManager.connect_network`)
        so congested traffic argues more strongly for moving objects.
        ``attach_existing`` monitors every handle the application has already
        produced; ``interval`` additionally starts :meth:`auto_adapt`.
        Returns the manager.
        """
        from repro.policy.adaptive import AdaptiveDistributionManager
        from repro.runtime.redistribution import DistributionController

        self._ensure_open()
        if self._adaptive is not None:
            raise PolicyError("adaptivity is already enabled on this session")
        if controller is None:
            controller = DistributionController(application, self.cluster)
        manager = AdaptiveDistributionManager(
            application, controller, threshold=threshold, min_calls=min_calls
        )
        self._adaptive = manager
        for scheduler in self._schedulers.values():
            manager.connect_pipeline(scheduler)
        if self._cache_manager is not None:
            manager.connect_cache(self._cache_manager)
        manager.connect_network(self.cluster.network)
        if attach_existing:
            manager.attach_all()
        if interval is not None:
            self.auto_adapt(interval)
        return manager

    def adapt(self):
        """Close one observation epoch: apply suggested moves, reset windows.

        Requires :meth:`enable_adaptivity`; returns the round's
        :class:`~repro.policy.adaptive.AdaptationRecord`.
        """
        self._ensure_open()
        if self._adaptive is None:
            raise PolicyError(
                "adaptivity is not enabled; call enable_adaptivity(application) first"
            )
        return self._adaptive.adapt()

    def auto_adapt(self, interval: float) -> None:
        """Drive :meth:`adapt` every ``interval`` simulated seconds.

        The rounds ride the cluster's event queue (like heartbeat probes and
        interval replication sync), so they interleave deterministically
        with in-flight traffic.  Calling again re-paces the loop;
        :meth:`close` cancels it — pending ticks become no-ops.
        """
        self._ensure_open()
        if self._adaptive is None:
            raise PolicyError(
                "adaptivity is not enabled; call enable_adaptivity(application) first"
            )
        if interval <= 0:
            raise PolicyError("auto_adapt interval must be positive")
        self._adapt_epoch += 1
        epoch = self._adapt_epoch
        events = self.cluster.network.events

        def tick() -> None:
            if self._closed or epoch != self._adapt_epoch:
                return
            self._adaptive.adapt()
            events.schedule(interval, tick)

        events.schedule(interval, tick)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Ship every buffered window across all of this session's services."""
        for service in self._services.values():
            service.flush()

    def drain(self) -> None:
        """Flush, then pump events until nothing of this session is in flight."""
        self.flush()
        for scheduler in self._schedulers.values():
            if scheduler.outstanding > 0:
                scheduler.drain()

    def close(self, *, drain: bool = True) -> None:
        """Tear the session down; idempotent.

        Drains in-flight work (unless ``drain=False``), stops the heartbeat
        probes and unwatches their nodes, detaches the replica manager's
        detector listeners, stops its sync loops, and unregisters the naming
        rebind listener — repeated sessions in one process must not leak
        callbacks into the cluster's long-lived naming service, detector
        rounds onto its event queue, or listener lists anywhere else.
        """
        if self._closed:
            return
        try:
            if drain:
                self.drain()
        finally:
            # Teardown must run even when the drain raises (a dead target, a
            # stalled pipeline): otherwise the very callbacks this method
            # exists to remove would leak, and _closed would stay False.
            # The drain's error still propagates afterwards.
            for service in self._services.values():
                # Retire every pipe: a closed session's buffered windows must
                # fail rather than ship when a held future's result() is
                # demanded later.
                service._pipe.stop()
            for scheduler in self._schedulers.values():
                # Retire the schedulers so a backoff re-ship still sitting on
                # the cluster's shared event queue cannot fire a dead
                # session's batch into a later session's run.
                scheduler.stop()
            if self._detector is not None:
                self._detector.stop()
                for node_id in list(self._detector.watched_nodes()):
                    self._detector.unwatch(node_id)
            if self._manager is not None:
                self._manager.stop()
                self._manager.detach()
            if self._cache_manager is not None:
                # Detach the invalidation listener from the (long-lived)
                # address space and drop every cached entry.
                self._cache_manager.close()
            # Uninstall the server-side chains this session deployed: the
            # hosting spaces outlive the session, and a later session's
            # traffic must not be billed to a dead session's rate limiters.
            server_chains, self._server_chains = self._server_chains, []
            for chain, spaces in server_chains:
                for space in spaces:
                    space.remove_middleware(chain)
            # Detach the tracer from the (long-lived) network — unless a
            # later session already installed its own.
            if (
                self._tracer is not None
                and getattr(self.cluster.network, "tracer", None) is self._tracer
            ):
                self.cluster.network.tracer = None
            # Cancel any auto-adapt loop: pending ticks become no-ops.
            self._adapt_epoch += 1
            self.cluster.naming.off_rebind(self._on_rebind)
            self._closed = True

    def dismantle(self, *, drain: bool = True) -> None:
        """:meth:`close`, then undo every deployment this session made.

        Where ``close()`` only retires the session's *client-side* machinery
        (listeners, probes, schedulers), ``dismantle()`` makes the session
        fully reversible: every implementation it exported is unexported
        from its host space, every replica group it created is torn down
        (primary wrapper and backup endpoints unexported), and every name it
        bound is unbound from the cluster's naming service.  Services other
        parties deployed — ones this session merely attached to — are left
        untouched.  Idempotent; safe after a plain ``close()``.
        """
        try:
            self.close(drain=drain)
        finally:
            deployments, self._deployments = self._deployments, []
            for name, group, host, reference in deployments:
                if group is not None:
                    if self._manager is not None:
                        self._manager.dismantle(group)
                elif host is not None and host in self.cluster:
                    self.cluster.space(host).unexport(reference)
                if name in self.cluster.naming:
                    self.cluster.naming.unbind(name)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Draining after an application error could mask it with a pipeline
        # stall; tear down without draining in that case.
        self.close(drain=exc_type is None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Session node={self.node_id!r} services={sorted(self._services)} "
            f"{'closed' if self._closed else 'open'}>"
        )
