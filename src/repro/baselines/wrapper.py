"""The wrapper-per-instance baseline (paper §3).

An alternative to transforming code directly is to generate wrappers for
every class: a wrapper encapsulates one object and intercepts every access
request to it, and all references to the object are altered to refer to the
wrapper.  The paper notes that although this is much simpler in terms of
implementation, it introduces **significantly greater overhead** and does not
remove the other limitations.

This module implements that baseline so the overhead comparison (experiment
E6) can be reproduced: every attribute read, attribute write and method call
on a wrapped object goes through a generic interception path
(``__getattr__`` + a per-call bookkeeping step), whereas the transformed
classes pay only a direct accessor/method call.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class ObjectWrapper:
    """Encapsulates one object and intercepts all access to it."""

    __slots__ = ("_target", "_interceptions", "_method_cache")

    def __init__(self, target: Any) -> None:
        object.__setattr__(self, "_target", target)
        object.__setattr__(self, "_interceptions", 0)
        object.__setattr__(self, "_method_cache", {})

    # -- interception ----------------------------------------------------------

    def _intercept(self) -> None:
        object.__setattr__(self, "_interceptions", self.interception_count + 1)

    @property
    def interception_count(self) -> int:
        return object.__getattribute__(self, "_interceptions")

    @property
    def wrapped(self) -> Any:
        return object.__getattribute__(self, "_target")

    def __getattr__(self, name: str) -> Any:
        self._intercept()
        target = object.__getattribute__(self, "_target")
        value = getattr(target, name)
        if callable(value):
            def intercepted(*args: Any, **kwargs: Any) -> Any:
                self._intercept()
                # Arguments that are themselves wrappers are unwrapped so the
                # target sees ordinary objects, mirroring how generated
                # wrappers would bridge between wrapped and unwrapped views.
                unwrapped_args = tuple(
                    argument.wrapped if isinstance(argument, ObjectWrapper) else argument
                    for argument in args
                )
                unwrapped_kwargs = {
                    key: value.wrapped if isinstance(value, ObjectWrapper) else value
                    for key, value in kwargs.items()
                }
                return value(*unwrapped_args, **unwrapped_kwargs)

            return intercepted
        return value

    def __setattr__(self, name: str, value: Any) -> None:
        self._intercept()
        target = object.__getattribute__(self, "_target")
        setattr(target, name, value.wrapped if isinstance(value, ObjectWrapper) else value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ObjectWrapper around {type(self.wrapped).__name__}>"


def wrap(target: Any) -> ObjectWrapper:
    """Wrap one object (idempotent: wrapping a wrapper returns it unchanged)."""
    if isinstance(target, ObjectWrapper):
        return target
    return ObjectWrapper(target)


class WrapperRuntime:
    """Creates wrapped instances and tracks them, one wrapper per object.

    This is the baseline's analogue of the object factory: creation goes
    through the runtime so that "all references to that object are altered to
    refer to the wrapper" — callers only ever receive wrappers.
    """

    def __init__(self) -> None:
        self._wrappers: Dict[int, ObjectWrapper] = {}

    def new(self, cls: type, *args: Any, **kwargs: Any) -> ObjectWrapper:
        unwrapped_args = tuple(
            argument.wrapped if isinstance(argument, ObjectWrapper) else argument
            for argument in args
        )
        unwrapped_kwargs = {
            key: value.wrapped if isinstance(value, ObjectWrapper) else value
            for key, value in kwargs.items()
        }
        instance = cls(*unwrapped_args, **unwrapped_kwargs)
        wrapper = wrap(instance)
        self._wrappers[id(instance)] = wrapper
        return wrapper

    def wrapper_for(self, instance: Any) -> Optional[ObjectWrapper]:
        return self._wrappers.get(id(instance))

    def wrapper_count(self) -> int:
        return len(self._wrappers)

    def total_interceptions(self) -> int:
        return sum(wrapper.interception_count for wrapper in self._wrappers.values())
