"""ProActive-style baseline (paper §3).

ProActive PDC offers dynamic object distribution and migration through
*active objects*: an active object has its own thread of control and a
request queue; method calls on it are asynchronous and return futures.  The
programmer must still determine statically which objects are to be remotely
accessible, and the architecture resembles the wrapper-generation approach.

The reproduction models the essential mechanics deterministically: requests
enqueue, ``serve``/``serve_all`` processes them in FIFO order, and futures
resolve when their request has been served.  Placement is per-object and
programmer-directed; migration moves the whole active object (queue
included) to another node.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Any, Deque, Optional

from repro._errors import InvocationError


class Future:
    """The placeholder returned by an asynchronous call on an active object."""

    def __init__(self, active_object: "ActiveObject") -> None:
        self._active_object = active_object
        self._resolved = False
        self._value: Any = None
        self._error: Optional[BaseException] = None

    def _resolve(self, value: Any) -> None:
        self._resolved = True
        self._value = value

    def _fail(self, error: BaseException) -> None:
        self._resolved = True
        self._error = error

    @property
    def is_resolved(self) -> bool:
        return self._resolved

    def get(self) -> Any:
        """Wait-by-necessity: serve pending requests until this future resolves."""
        while not self._resolved:
            served = self._active_object.serve()
            if served == 0 and not self._resolved:
                raise InvocationError("future cannot resolve: no pending requests")
        if self._error is not None:
            raise self._error
        return self._value


class _Request:
    __slots__ = ("member", "args", "kwargs", "future")

    def __init__(self, member: str, args: tuple, kwargs: dict, future: Future) -> None:
        self.member = member
        self.args = args
        self.kwargs = kwargs
        self.future = future


class ActiveObject:
    """Wraps an ordinary object with a request queue and asynchronous calls."""

    def __init__(self, target: Any, node_id: str, network=None) -> None:
        self._target = target
        self._node_id = node_id
        self._network = network
        self._queue: Deque[_Request] = deque()
        self.requests_served = 0

    # -- asynchronous invocation --------------------------------------------------

    def call(self, member: str, *args: Any, **kwargs: Any) -> Future:
        """Enqueue an asynchronous method call and return its future."""
        future = Future(self)
        self._queue.append(_Request(member, args, kwargs, future))
        return future

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)

        def asynchronous(*args: Any, **kwargs: Any) -> Future:
            return self.call(name, *args, **kwargs)

        asynchronous.__name__ = name
        return asynchronous

    # -- the active object's own thread of control ---------------------------------

    def serve(self) -> int:
        """Serve at most one pending request; returns how many were served."""
        if not self._queue:
            return 0
        request = self._queue.popleft()
        try:
            member = getattr(self._target, request.member)
            result = member(*request.args, **request.kwargs)
        except BaseException as exc:  # noqa: BLE001 - delivered through the future
            request.future._fail(exc)
        else:
            request.future._resolve(result)
        self.requests_served += 1
        return 1

    def serve_all(self) -> int:
        served = 0
        while self._queue:
            served += self.serve()
        return served

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def node_id(self) -> str:
        return self._node_id

    # -- programmer-directed migration ----------------------------------------------

    def migrate_to(self, node_id: str) -> str:
        """Move this active object (state and queue) to another node."""
        if self._network is not None and node_id != self._node_id:
            # Charge the simulated network for shipping the object's state.
            payload = repr(self._target.__dict__).encode("utf-8")
            link = self._network.link_config(self._node_id, node_id)
            self._network.clock.advance(link.one_way_delay(len(payload), random.Random(0)))
        self._node_id = node_id
        return node_id


class ProActiveRuntime:
    """Creates active objects on named nodes of a cluster."""

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.active_objects: list[ActiveObject] = []

    def new_active(self, cls: type, args: tuple = (), node: Optional[str] = None) -> ActiveObject:
        node_id = node or self.cluster.default_node_id
        if node_id not in self.cluster.node_ids():
            raise InvocationError(f"cluster has no node {node_id!r}")
        instance = cls(*args)
        active = ActiveObject(instance, node_id, network=self.cluster.network)
        self.active_objects.append(active)
        return active

    def serve_everything(self) -> int:
        return sum(active.serve_all() for active in self.active_objects)
