"""JavaParty-style baseline (paper §3).

JavaParty adds a ``remote`` keyword to Java: the programmer decides *at
design time* which classes may have remote instances, and a preprocessor
turns the annotated source into RMI-based code.  The contrast with RAFDA is
that the decision is static: it is baked into the source, cannot differ
between deployments without editing code, and cannot change while the
program runs.

The Python analogue here is a ``@remote_class`` decorator plus a small
runtime that places instances of decorated classes on a fixed node and hands
back a generic forwarding proxy.  Instances of undecorated classes are always
local.  There is deliberately no rebinding machinery — that is the
flexibility JavaParty lacks and RAFDA provides.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro._errors import PolicyError

_REMOTE_MARKER = "_javaparty_remote"


def remote_class(cls: type) -> type:
    """Mark a class as ``remote`` at design time (the JavaParty keyword)."""
    setattr(cls, _REMOTE_MARKER, True)
    return cls


def is_remote_class(cls: type) -> bool:
    return bool(getattr(cls, _REMOTE_MARKER, False))


class GenericRemoteProxy:
    """A forwarding proxy for one exported object (method calls only).

    JavaParty (like RMI) exposes remote objects through method invocation;
    direct field access on remote instances is not supported, which is one of
    the restrictions the RAFDA accessor transformation removes.
    """

    def __init__(self, reference, space, transport: str = "rmi") -> None:
        self._ref = reference
        self._space = space
        self._transport = transport

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        reference = object.__getattribute__(self, "_ref")
        space = object.__getattribute__(self, "_space")
        transport = object.__getattribute__(self, "_transport")

        def invoke(*args: Any, **kwargs: Any) -> Any:
            return space.invoke_remote(reference, name, args, kwargs, transport=transport)

        invoke.__name__ = name
        return invoke


class JavaPartyRuntime:
    """Creates instances according to design-time remote annotations."""

    def __init__(
        self,
        cluster,
        *,
        home_node: Optional[str] = None,
        placement: Optional[Dict[str, str]] = None,
        transport: str = "rmi",
    ) -> None:
        self.cluster = cluster
        self.home_node = home_node or cluster.default_node_id
        #: class name -> node hosting its remote instances (fixed for the run).
        self.placement = dict(placement or {})
        self.transport = transport
        self.created_remote = 0
        self.created_local = 0

    def _node_for(self, cls: type) -> str:
        node = self.placement.get(cls.__name__)
        if node is None:
            raise PolicyError(
                f"remote class {cls.__name__!r} has no node assigned in the "
                "JavaParty placement"
            )
        return node

    def new(self, cls: type, *args: Any, **kwargs: Any) -> Any:
        """Create an instance of ``cls``; remote iff the class is annotated."""
        if not is_remote_class(cls):
            self.created_local += 1
            return cls(*args, **kwargs)

        node_id = self._node_for(cls)
        target_space = self.cluster.space(node_id)
        instance = cls(*args, **kwargs)
        reference = target_space.export(instance, interface_name=cls.__name__)
        self.created_remote += 1
        home_space = self.cluster.space(self.home_node)
        if node_id == self.home_node:
            # Co-located: JavaParty still routes through the proxy type, but
            # the call short-circuits inside the runtime.
            return GenericRemoteProxy(reference, home_space, self.transport)
        return GenericRemoteProxy(reference, home_space, self.transport)

    # JavaParty has no run-time redistribution: provide the method so the
    # comparison benchmark can show the capability gap explicitly.
    def redistribute(self, *_args: Any, **_kwargs: Any) -> None:
        raise PolicyError(
            "JavaParty-style placement is fixed at design time; "
            "run-time redistribution is not supported"
        )
