"""Baseline approaches the paper compares against (related work, §3).

``wrapper``
    The wrapper-per-instance alternative: much simpler to implement than
    direct transformation, but every access pays an interception cost.
``javaparty``
    JavaParty-style: the programmer marks remote classes at design time; the
    placement cannot change at run time.
``proactive``
    ProActive-style active objects: asynchronous method calls through a
    request queue, with programmer-directed placement and migration.
"""

from repro.baselines.javaparty import (
    GenericRemoteProxy,
    JavaPartyRuntime,
    is_remote_class,
    remote_class,
)
from repro.baselines.proactive import (
    ActiveObject,
    Future,
    ProActiveRuntime,
)
from repro.baselines.wrapper import (
    ObjectWrapper,
    WrapperRuntime,
    wrap,
)

__all__ = [
    "ActiveObject",
    "Future",
    "GenericRemoteProxy",
    "JavaPartyRuntime",
    "ObjectWrapper",
    "ProActiveRuntime",
    "WrapperRuntime",
    "is_remote_class",
    "remote_class",
    "wrap",
]
