"""Pipelined, future-based remote invocation with batch-aware fault tolerance.

PR 1's batching subsystem ships N calls in one framed message but still waits
for each batch's round trip before issuing the next one.  This module removes
that wait: batches are *posted* on the simulated network's event queue
(:meth:`~repro.network.simnet.SimulatedNetwork.post`) and complete **out of
order** as their response events fire, so a window of in-flight batches pays
roughly ``max`` rather than ``sum`` of its round-trip delays.

Three pieces:

* :class:`InvocationFuture` — the placeholder a submitted call returns
  immediately.  It resolves (or fails) when its batch's response event fires;
  ``result()`` pumps the event queue until then.  The batching layer's
  :class:`~repro.runtime.batching.PendingCall` is a subclass, so every
  buffered call in the system is a future.
* :class:`PipelineScheduler` — buffers calls per destination node (sharding a
  stream of submissions across the cluster), ships each node's buffer as an
  asynchronous batch, bounds the number of concurrently in-flight batches by
  ``window``, and resolves futures as responses arrive.
* Batch-aware fault tolerance — a transport-level failure of one in-flight
  batch is isolated to that batch: its calls are requeued and retried per the
  scheduler's :class:`~repro.runtime.faulttolerance.RetryPolicy` (with
  simulated-time backoff scheduled on the event queue) while every other
  batch completes undisturbed.  Fatal failures (partitions, crashed nodes)
  fail the affected futures immediately.

Usage — via the façade, which composes this module internally (direct
``PipelineScheduler(...)`` construction still works but is deprecated)::

    policy = ServicePolicy(transport="rmi", batch_window=32, pipeline_depth=4)
    shards = [session.service(f"s{i}", policy, ...) for i in range(2)]
    futures = [
        shards[i % 2].future.submit(f"sku-{i}", 1, 10) for i in range(256)
    ]
    session.drain()                         # pump until every future resolves
    values = [f.result() for f in futures]  # per-call results, order preserved
    shards[0].scheduler.out_of_order_completions  # > 0 with uneven shards

Used as a context manager, a clean exit flushes the buffers and drains the
event queue, mirroring :class:`~repro.runtime.batching.BatchingProxy`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro._errors import InvocationError
from repro.runtime.faulttolerance import (
    FATAL_FAILURES,
    NO_RETRY,
    REPLICATION_REFUSALS,
    FailureLog,
    FailureRecord,
    RetryPolicy,
)
from repro.runtime.remote_ref import RemoteRef, reference_of


class InvocationFuture:
    """The placeholder for one asynchronously submitted remote call.

    A future starts *pending* and transitions exactly once to *resolved*
    (carrying the call's return value) or *failed* (carrying the exception).
    ``result()`` blocks in *simulated* time: it asks its owner — a
    :class:`PipelineScheduler` or a :class:`~repro.runtime.batching.BatchingProxy`
    — to make progress until the future is done, then returns the value or
    re-raises the error.

    Futures also carry the submission bookkeeping the scheduler and the
    benchmarks read: ``index`` (global submission sequence number),
    ``attempts`` (how many batches carried this call, > 1 after a retry) and
    the ``submitted_at`` / ``completed_at`` simulated timestamps.
    """

    _PENDING = "pending"
    _RESOLVED = "resolved"
    _FAILED = "failed"

    def __init__(
        self,
        member: str,
        *,
        index: int = -1,
        on_wait: Optional[Callable[["InvocationFuture"], None]] = None,
    ) -> None:
        self.member = member
        #: Global submission sequence number (``-1`` outside a scheduler).
        self.index = index
        #: Number of batches that carried this call so far (retries add one).
        self.attempts = 0
        #: Simulated timestamps, filled in by the owning scheduler/proxy.
        self.submitted_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self._state = self._PENDING
        self._value: Any = None
        self._error: Optional[BaseException] = None
        self._on_wait = on_wait
        self._callbacks: List[Callable[["InvocationFuture"], None]] = []

    # -- state -----------------------------------------------------------------

    @property
    def done(self) -> bool:
        """True once the future has resolved or failed."""
        return self._state is not self._PENDING

    @property
    def resolved(self) -> bool:
        """Alias of :attr:`done` (the historical ``PendingCall`` spelling)."""
        return self.done

    @property
    def ok(self) -> bool:
        """True when the future resolved with a value (not an error)."""
        return self._state is self._RESOLVED

    def _resolve(self, value: Any) -> None:
        self._state = self._RESOLVED
        self._value = value
        self._fire_callbacks()

    def _fail(self, error: BaseException) -> None:
        self._state = self._FAILED
        self._error = error
        self._fire_callbacks()

    def _fire_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    # -- results ---------------------------------------------------------------

    def result(self) -> Any:
        """The call's value; drives the owner until resolved, re-raises errors."""
        if not self.done and self._on_wait is not None:
            self._on_wait(self)
        if not self.done:
            raise InvocationError(
                f"future for {self.member!r} is unresolved and has no owner to wait on"
            )
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self) -> Optional[BaseException]:
        """The call's error (``None`` on success); waits like :meth:`result`.

        Unlike :meth:`result`, the call's own failure is *returned*, not
        raised — even when waiting surfaces it (a ``BatchingProxy`` flush
        re-raises the batch's transport failure; if that failure resolved
        this future, it is this call's outcome and comes back as the return
        value).  Only errors that leave the future pending (a stalled
        pipeline) propagate, and a future that cannot resolve at all raises
        :class:`~repro.api.errors.InvocationError` exactly like :meth:`result`.
        """
        if not self.done and self._on_wait is not None:
            try:
                self._on_wait(self)
            except BaseException:
                if not self.done:
                    raise
        if not self.done:
            raise InvocationError(
                f"future for {self.member!r} is unresolved and has no owner to wait on"
            )
        return self._error

    def add_done_callback(self, callback: Callable[["InvocationFuture"], None]) -> None:
        """Run ``callback(future)`` on completion (immediately if already done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = self._state if self.done else "pending"
        return f"<{type(self).__name__} {self.member!r} #{self.index} {state}>"


@dataclass
class _ScheduledCall:
    """One submitted call travelling through the scheduler's buffers."""

    reference: RemoteRef
    member: str
    args: tuple
    kwargs: dict
    future: InvocationFuture = field(repr=False, default=None)  # type: ignore[assignment]
    #: Wire-context dict (call id, tenant, deadline); empty without
    #: middleware.  Retries reuse the same :class:`_ScheduledCall`, so the
    #: context — absolute deadline included — rides every re-ship unchanged.
    context: dict = field(default_factory=dict)
    #: When the call last entered a buffer (submission or requeue); traced
    #: calls bill the span up to ship time as client-side queueing.
    queued_at: Optional[float] = None


class PipelineScheduler:
    """Shards, batches and pipelines remote invocations over one address space.

    Calls submitted through :meth:`submit` are buffered per destination node;
    a node's buffer ships as one asynchronous batch when it reaches
    ``max_batch`` (or on :meth:`flush`).  Up to ``window`` batches are kept in
    flight concurrently — submission past the window pumps the event queue
    until a slot frees, which bounds memory and models a TCP-like in-flight
    window.  Responses resolve futures strictly in *arrival* order, which is
    generally **not** submission order when shards answer at different speeds:
    :attr:`completion_order` and :attr:`out_of_order_completions` expose the
    reordering to tests and benchmarks.

    Fault tolerance is batch-aware: when an in-flight batch fails at the
    transport level, each of its calls is retried per ``retry_policy``
    (requeued and re-shipped after the policy's simulated-time backoff) while
    the other in-flight batches are untouched; calls whose attempts are
    exhausted — and all calls on a fatal failure such as a partition — fail
    with the network error.  Failures are recorded per call in
    ``failure_log``.

    Failover-awareness: constructed with a ``replica_manager``
    (:class:`~repro.runtime.replication.ReplicaManager`), a fatal failure of
    a batch whose targets are replicated is no longer final — the calls are
    requeued with the manager's suggested backoff (one heartbeat interval)
    and every reference is re-resolved through the published failover
    redirects at ship time, so once the detector promotes a backup the
    retried traffic lands on the new primary.  ``max_failover_attempts``
    bounds how many re-ships a call may spend riding out detection plus
    promotion before the fatal error is surfaced after all.
    """

    #: Subclasses used internally by the :mod:`repro.api` façade set this to
    #: ``False``; direct construction of the public class is deprecated.
    _warn_on_direct_construction = True

    def __init__(
        self,
        space: Any,
        *,
        max_batch: int = 32,
        window: int = 4,
        transport: Optional[str] = None,
        retry_policy: RetryPolicy = NO_RETRY,
        failure_log: Optional[FailureLog] = None,
        replica_manager=None,
        max_failover_attempts: int = 8,
    ) -> None:
        if type(self)._warn_on_direct_construction:
            warnings.warn(
                "constructing PipelineScheduler directly is deprecated; create "
                "a Service through repro.api.Session with a ServicePolicy "
                "(pipeline_depth=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        if max_batch < 1:
            raise InvocationError("max_batch must be at least 1")
        if window < 1:
            raise InvocationError("window must be at least 1")
        self.space = space
        self.max_batch = max_batch
        self.window = window
        self.transport = transport
        self.retry_policy = retry_policy
        self.failure_log = failure_log if failure_log is not None else FailureLog()
        self.replica_manager = replica_manager
        self.max_failover_attempts = max_failover_attempts
        self._events = space.network.events
        self._clock = space.network.clock
        self._buffers: Dict[str, List[_ScheduledCall]] = {}
        self._next_index = 0
        self._in_flight = 0
        self._outstanding = 0
        #: Futures in the order their batches' response events fired.
        self.completion_order: List[InvocationFuture] = []
        #: Logical calls submitted through this scheduler.
        self.calls_submitted = 0
        #: Batch messages shipped (including retry re-ships).
        self.batches_shipped = 0
        #: Calls requeued after a transient transport failure.
        self.calls_retried = 0
        #: Call-requeues taken to ride out a failover (fatal error, replicated
        #: target): the re-ship resolves redirects and lands on the promotion.
        self.calls_redirected = 0
        #: High-water mark of concurrently in-flight batches.
        self.max_in_flight = 0
        #: Sum of in-flight depths sampled at every batch ship (the measured
        #: counterpart of the configured ``window``).
        self._depth_sample_sum = 0.0
        #: Number of depth samples taken (one per shipped batch).
        self.depth_samples = 0
        self._stopped = False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, target: Any, member: str, *args: Any, **kwargs: Any) -> InvocationFuture:
        """Queue one invocation; returns its future immediately.

        ``target`` may be a :class:`~repro.runtime.remote_ref.RemoteRef`, a
        generated proxy, or a handle bound to one — anything
        :func:`~repro.runtime.remote_ref.reference_of` can resolve.  The
        call lands in the buffer of the reference's node; buffers for
        different nodes ship independently, so one submission stream fans
        out (shards) across the cluster.
        """
        return self.submit_with_context(target, member, args, kwargs)

    def submit_with_context(
        self,
        target: Any,
        member: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        context: Optional[dict] = None,
    ) -> InvocationFuture:
        """Queue one invocation carrying a wire-context dict.

        The middleware-aware entry point behind :meth:`submit`: ``context``
        (call id, tenant, deadline — see
        :class:`~repro.api.middleware.CallContext`) ships inside the call's
        batch message and — because retries and failover re-ships reuse the
        same scheduled-call record — rides every re-ship unchanged, so a
        promoted replica sees the call's *remaining* deadline budget.
        """
        if self._stopped:
            # Mirror the _ship guard: accepting the call would strand its
            # future silently, violating stop()'s no-pending guarantee.
            raise InvocationError("pipeline scheduler is stopped; no new submissions")
        if isinstance(target, RemoteRef):
            reference = target
        else:
            reference = reference_of(target)
        if reference is None:
            raise InvocationError(
                "PipelineScheduler needs a remote reference: pass a RemoteRef, "
                "a proxy, or a handle bound to one"
            )
        if self.replica_manager is not None:
            reference = self.replica_manager.current_ref(reference)
        future = InvocationFuture(member, index=self._next_index, on_wait=self._wait_for)
        future.submitted_at = self._clock.now
        self._next_index += 1
        self.calls_submitted += 1
        self._outstanding += 1
        buffer = self._buffers.setdefault(reference.node_id, [])
        buffer.append(
            _ScheduledCall(
                reference, member, tuple(args), dict(kwargs or {}), future,
                dict(context or {}), queued_at=self._clock.now,
            )
        )
        if len(buffer) >= self.max_batch:
            self._ship(self._buffers.pop(reference.node_id))
        return future

    def flush(self) -> None:
        """Ship every non-empty node buffer as an asynchronous batch."""
        buffers, self._buffers = self._buffers, {}
        for calls in buffers.values():
            self._ship(calls)

    # ------------------------------------------------------------------
    # completion
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        """Number of batches currently awaiting their response event."""
        return self._in_flight

    @property
    def outstanding(self) -> int:
        """Number of submitted futures not yet resolved or failed."""
        return self._outstanding

    @property
    def observed_pipeline_depth(self) -> float:
        """The in-flight window depth the pipeline has actually achieved.

        The mean number of concurrently in-flight batches, sampled at every
        batch ship.  This is the *measured* counterpart of the configured
        ``window``: a stream too small (or too skewed) to fill the window
        reports a lower value.  Before any batch has shipped it falls back to
        ``1.0`` (no overlap observed yet).
        :meth:`~repro.policy.adaptive.AdaptiveDistributionManager.connect_pipeline`
        consumes this instead of a statically configured depth.
        """
        if self.depth_samples == 0:
            return 1.0
        return max(1.0, self._depth_sample_sum / self.depth_samples)

    @property
    def out_of_order_completions(self) -> int:
        """How many futures completed after one with a higher submission index."""
        count = 0
        highest = -1
        for future in self.completion_order:
            if future.index < highest:
                count += 1
            highest = max(highest, future.index)
        return count

    @property
    def stopped(self) -> bool:
        """Whether :meth:`stop` has retired this scheduler."""
        return self._stopped

    def stop(self) -> None:
        """Retire the scheduler: nothing ships after this (idempotent).

        Backoff re-ships already scheduled on the event queue become no-ops
        that *fail* their calls instead of shipping them — a retired
        scheduler (typically one whose owning session closed without
        draining) must never invoke services when some later party pumps the
        shared event queue.  Buffered, never-shipped calls fail the same
        way, so no future is left silently pending.
        """
        if self._stopped:
            return
        self._stopped = True
        buffers, self._buffers = self._buffers, {}
        error = InvocationError("pipeline scheduler stopped before this call shipped")
        for calls in buffers.values():
            for call in calls:
                if not call.future.done:
                    call.future._fail(error)
                    self._complete(call.future)

    def drain(self) -> List[InvocationFuture]:
        """Flush the buffers and pump events until every future is done.

        Returns the full completion order (every future this scheduler has
        completed, in arrival order).
        """
        self.flush()
        while self._outstanding > 0:
            if not self._events.run_next():
                raise InvocationError(
                    f"pipeline stalled: {self._outstanding} unresolved future(s) "
                    "with an idle event queue"
                )
        return list(self.completion_order)

    def _wait_for(self, future: InvocationFuture) -> None:
        """Make progress until one specific future completes (its wait hook)."""
        self.flush()
        while not future.done:
            if not self._events.run_next():
                raise InvocationError(
                    f"pipeline stalled waiting for {future.member!r} "
                    "with an idle event queue"
                )

    # ------------------------------------------------------------------
    # shipping and fault tolerance
    # ------------------------------------------------------------------

    def _ship(self, calls: List[_ScheduledCall]) -> None:
        """Post a sub-batch, re-routing through failover redirects first.

        With a replica manager installed, every call's reference is
        re-resolved at ship time — a batch requeued while its target's node
        was dying lands on the promoted replica.  Redirects can split one
        sub-batch across nodes (different groups promoted to different
        hosts); each destination then ships as its own batch.
        """
        if not calls:
            return
        if self._stopped:
            error = InvocationError(
                "pipeline scheduler stopped before this call shipped"
            )
            for call in calls:
                if not call.future.done:
                    call.future._fail(error)
                    self._complete(call.future)
            return
        if self.replica_manager is not None:
            buckets: Dict[str, List[_ScheduledCall]] = {}
            for call in calls:
                resolved = self.replica_manager.current_ref(call.reference)
                if resolved is not call.reference:
                    call.reference = resolved
                buckets.setdefault(call.reference.node_id, []).append(call)
            if len(buckets) > 1:
                for bucket in buckets.values():
                    self._ship_bucket(bucket)
                return
        self._ship_bucket(calls)

    def _ship_bucket(self, calls: List[_ScheduledCall]) -> None:
        """Post one single-destination sub-batch, waiting for a window slot."""
        while self._in_flight >= self.window:
            if not self._events.run_next():
                # Nothing can complete: proceed rather than deadlock (only
                # reachable if completion callbacks were lost to a bug).
                break
        for call in calls:
            call.future.attempts += 1
        self._in_flight += 1
        self.batches_shipped += 1
        self.max_in_flight = max(self.max_in_flight, self._in_flight)
        # Sample the depth the pipeline actually achieves: the mean of these
        # samples is what the adaptive policy consumes instead of the
        # configured window (which traffic may never fill).
        self._depth_sample_sum += self._in_flight
        self.depth_samples += 1
        self._trace_queue_waits(calls)
        try:
            self.space.invoke_remote_many_async(
                [
                    (call.reference, call.member, call.args, call.kwargs, call.context)
                    for call in calls
                ],
                on_results=lambda results, calls=calls: self._on_results(calls, results),
                on_error=lambda error, calls=calls: self._on_error(calls, error),
                transport=self.transport,
            )
        except Exception as error:  # noqa: BLE001 - release the slot, fail the futures
            # A synchronous dispatch failure (unknown transport, marshalling
            # error) must not leak the window slot or strand the futures:
            # route it through the normal failure path, then surface it to
            # the caller — it is a programming error, not network weather.
            self._on_error(calls, error)
            raise

    def _trace_queue_waits(self, calls: List[_ScheduledCall]) -> None:
        """Bill each traced call's buffer + window wait as a queue span."""
        tracer = getattr(self.space.network, "tracer", None)
        if tracer is None:
            return
        now = self._clock.now
        for call in calls:
            trace_id = call.context.get("x")
            if trace_id is None or call.queued_at is None or now <= call.queued_at:
                continue
            tracer.record_span(
                "pipeline-queue",
                trace_id=trace_id,
                parent_id=call.context.get("p"),
                kind="queue",
                start=call.queued_at,
                end=now,
                node=call.reference.node_id,
            )

    def _trace_requeue(self, call: _ScheduledCall, reason: str, **attrs) -> None:
        """Stamp a requeue on the traced call's still-open client span."""
        call.queued_at = self._clock.now
        trace_id = call.context.get("x")
        if trace_id is None:
            return
        tracer = getattr(self.space.network, "tracer", None)
        if tracer is None:
            return
        tracer.annotate(
            trace_id,
            call.context.get("p"),
            reason,
            ts=self._clock.now,
            attempt=call.future.attempts,
            **attrs,
        )

    def _complete(self, future: InvocationFuture) -> None:
        future.completed_at = self._clock.now
        self.completion_order.append(future)
        self._outstanding -= 1

    def _on_results(self, calls: List[_ScheduledCall], results: List[Any]) -> None:
        """Resolve one batch's futures from its ordered per-call results."""
        self._in_flight -= 1
        requeued: List[_ScheduledCall] = []
        for call, result in zip(calls, results):
            if result.ok:
                call.future._resolve(result.value)
            elif (
                self.replica_manager is not None
                and isinstance(result.error, REPLICATION_REFUSALS)
                and call.future.attempts <= self.max_failover_attempts
                and self.replica_manager.has_failover_target(call.reference)
            ):
                # A fenced or quorum-less primary refused this slot.  Unlike
                # ordinary application errors it is worth requeueing: ship
                # time re-resolves the reference, so the retry lands on the
                # current epoch's primary instead of the refusing one.
                self.failure_log.record(
                    FailureRecord(
                        member=call.member,
                        error_type=type(result.error).__name__,
                        attempt=call.future.attempts,
                        recovered=True,
                        simulated_time=self._clock.now,
                    )
                )
                self.calls_redirected += 1
                self._trace_requeue(
                    call, "failover-reship", error=type(result.error).__name__
                )
                requeued.append(call)
                continue
            else:
                # Application errors inside a successful batch stay isolated
                # per slot, exactly like the synchronous batch path.
                call.future._fail(result.error)
            self._complete(call.future)
        if requeued:
            backoff = max(
                self.retry_policy.backoff_for_attempt(
                    max(call.future.attempts for call in requeued)
                ),
                self.replica_manager.suggested_backoff(),
            )
            self._events.schedule(backoff, lambda: self._ship(requeued))

    def _on_error(self, calls: List[_ScheduledCall], error: Exception) -> None:
        """Handle a transport-level failure of one in-flight batch.

        Each call is judged individually against the retry policy (calls
        that have been requeued before carry higher attempt counts), so a
        re-grouped batch can simultaneously retry some calls and surface the
        error on others.  Fatal failures of replicated targets take the
        failover path instead: the call is requeued (bounded by
        ``max_failover_attempts``) with the replica manager's suggested
        backoff, riding out failure detection until the re-resolved
        reference points at the promoted replica.
        """
        self._in_flight -= 1
        requeued: List[_ScheduledCall] = []
        failing_over = False
        for call in calls:
            retry = self.retry_policy.should_retry(error, call.future.attempts)
            failover = False
            if (
                not retry
                and self.replica_manager is not None
                and isinstance(error, FATAL_FAILURES + REPLICATION_REFUSALS)
                and call.future.attempts <= self.max_failover_attempts
                and self.replica_manager.has_failover_target(call.reference)
            ):
                retry = failover = failing_over = True
            self.failure_log.record(
                FailureRecord(
                    member=call.member,
                    error_type=type(error).__name__,
                    attempt=call.future.attempts,
                    recovered=retry,
                    simulated_time=self._clock.now,
                )
            )
            if retry:
                requeued.append(call)
                # The two recovery paths stay separately countable.
                if failover:
                    self.calls_redirected += 1
                else:
                    self.calls_retried += 1
                self._trace_requeue(
                    call,
                    "failover-reship" if failover else "retry-requeued",
                    error=type(error).__name__,
                )
            else:
                call.future._fail(error)
                self._complete(call.future)
        if requeued:
            backoff = self.retry_policy.backoff_for_attempt(
                max(call.future.attempts for call in requeued)
            )
            if failing_over:
                backoff = max(backoff, self.replica_manager.suggested_backoff())
            self._events.schedule(backoff, lambda: self._ship(requeued))

    # ------------------------------------------------------------------
    # context manager
    # ------------------------------------------------------------------

    def __enter__(self) -> "PipelineScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.drain()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PipelineScheduler in_flight={self._in_flight}/{self.window} "
            f"outstanding={self._outstanding} max_batch={self.max_batch}>"
        )
