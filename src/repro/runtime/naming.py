"""Naming service.

A simple flat namespace mapping well-known names to remote references.  One
naming service is shared by every address space of a cluster (the simulated
equivalent of a registry process reachable by all nodes) so applications can
publish an object on one node and look it up from another without passing
references by hand.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro._errors import NamingError
from repro.runtime.remote_ref import RemoteRef

#: A rebind listener: ``(name, old reference or None, new reference)``.
RebindListener = Callable[[str, Optional[RemoteRef], RemoteRef], None]


class NamingService:
    """Flat name → reference registry shared by a cluster.

    Because one naming service is shared by every address space, a
    :meth:`rebind` — an object migrated, a replica promoted by failover — is
    immediately visible to lookups from *all* nodes.  Rebind listeners let
    caches (proxy pools, replica managers) invalidate eagerly instead of
    discovering the move on their next lookup.
    """

    def __init__(self) -> None:
        self._bindings: Dict[str, RemoteRef] = {}
        self._rebind_listeners: List[RebindListener] = []

    def bind(self, name: str, reference: RemoteRef) -> None:
        """Bind ``name`` to ``reference``; rebinding an existing name fails."""
        if name in self._bindings:
            raise NamingError(f"name {name!r} is already bound")
        self._bindings[name] = reference

    def rebind(self, name: str, reference: RemoteRef) -> None:
        """Bind ``name`` to ``reference``, replacing any previous binding."""
        previous = self._bindings.get(name)
        self._bindings[name] = reference
        if previous != reference:
            for listener in self._rebind_listeners:
                listener(name, previous, reference)

    def on_rebind(self, listener: RebindListener) -> None:
        """Call ``listener(name, old, new)`` whenever a binding changes."""
        self._rebind_listeners.append(listener)

    def off_rebind(self, listener: RebindListener) -> None:
        """Remove a listener registered with :meth:`on_rebind` (idempotent).

        Long-lived naming services outlive the sessions that observe them;
        a session that registered a listener must be able to detach it on
        close, or repeated sessions in one process leak callbacks.
        """
        try:
            self._rebind_listeners.remove(listener)
        except ValueError:
            pass

    def rebind_listener_count(self) -> int:
        """How many rebind listeners are currently registered (leak checks)."""
        return len(self._rebind_listeners)

    def lookup(self, name: str) -> RemoteRef:
        try:
            return self._bindings[name]
        except KeyError as exc:
            raise NamingError(f"name {name!r} is not bound") from exc

    def maybe_lookup(self, name: str) -> Optional[RemoteRef]:
        return self._bindings.get(name)

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise NamingError(f"name {name!r} is not bound")
        del self._bindings[name]

    def names(self) -> set[str]:
        return set(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)
