"""Naming service.

A simple flat namespace mapping well-known names to remote references.  One
naming service is shared by every address space of a cluster (the simulated
equivalent of a registry process reachable by all nodes) so applications can
publish an object on one node and look it up from another without passing
references by hand.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import NamingError
from repro.runtime.remote_ref import RemoteRef


class NamingService:
    """Flat name → reference registry shared by a cluster."""

    def __init__(self) -> None:
        self._bindings: Dict[str, RemoteRef] = {}

    def bind(self, name: str, reference: RemoteRef) -> None:
        """Bind ``name`` to ``reference``; rebinding an existing name fails."""
        if name in self._bindings:
            raise NamingError(f"name {name!r} is already bound")
        self._bindings[name] = reference

    def rebind(self, name: str, reference: RemoteRef) -> None:
        """Bind ``name`` to ``reference``, replacing any previous binding."""
        self._bindings[name] = reference

    def lookup(self, name: str) -> RemoteRef:
        try:
            return self._bindings[name]
        except KeyError as exc:
            raise NamingError(f"name {name!r} is not bound") from exc

    def maybe_lookup(self, name: str) -> Optional[RemoteRef]:
        return self._bindings.get(name)

    def unbind(self, name: str) -> None:
        if name not in self._bindings:
            raise NamingError(f"name {name!r} is not bound")
        del self._bindings[name]

    def names(self) -> set[str]:
        return set(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __len__(self) -> int:
        return len(self._bindings)
