"""Remote object references.

A :class:`RemoteRef` identifies an object exported by some address space: the
identifier of the hosting node, a per-node object identifier, and the name of
the extracted interface the object implements.  References are what travel on
the wire when a transformed object is passed by reference between address
spaces; the receiving side turns them back into proxies (or into the local
object itself when the reference points home).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional


class ObjectIdAllocator:
    """Allocates monotonically increasing per-node object identifiers.

    Identifiers are deterministic (``<node>:<counter>``) so test runs and
    benchmark traces are reproducible; no wall-clock or random component is
    involved.
    """

    def __init__(self, node_id: str) -> None:
        self._node_id = node_id
        self._counter = itertools.count(1)

    def allocate(self) -> str:
        return f"{self._node_id}:{next(self._counter)}"


@dataclass(frozen=True)
class RemoteRef:
    """A location-and-interface-qualified reference to an exported object."""

    object_id: str
    node_id: str
    interface_name: str

    # -- wire form -------------------------------------------------------------

    _WIRE_KIND = "ref"

    def to_wire(self) -> dict:
        return {
            "__kind__": self._WIRE_KIND,
            "object_id": self.object_id,
            "node_id": self.node_id,
            "interface": self.interface_name,
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "RemoteRef":
        return cls(
            object_id=wire["object_id"],
            node_id=wire["node_id"],
            interface_name=wire["interface"],
        )

    @classmethod
    def is_wire_ref(cls, value: object) -> bool:
        return isinstance(value, dict) and value.get("__kind__") == cls._WIRE_KIND

    # -- helpers ----------------------------------------------------------------

    def located_on(self, node_id: str) -> bool:
        return self.node_id == node_id

    def with_node(self, node_id: str) -> "RemoteRef":
        return RemoteRef(self.object_id, node_id, self.interface_name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.interface_name}@{self.object_id}"


def reference_of(proxy_or_handle: object) -> Optional[RemoteRef]:
    """Extract the :class:`RemoteRef` behind a proxy (or a handle bound to one)."""
    ref = getattr(proxy_or_handle, "_ref", None)
    if isinstance(ref, RemoteRef):
        return ref
    meta = getattr(proxy_or_handle, "__meta__", None)
    if meta is not None:
        return reference_of(meta.target)
    return None
