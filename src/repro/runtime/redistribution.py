"""Dynamic distribution-boundary changes.

The distributed program can adapt to its environment by dynamically altering
its distribution boundaries (paper §1): an object that was local can be moved
behind a proxy to a remote instance, a remote object can be brought back into
the caller's address space, and the transport a proxy uses can be exchanged —
all without invalidating the interface-typed references the rest of the
program holds, because those references point at rebindable redirector
handles.

:class:`DistributionController` implements the three primitive boundary
changes; the adaptive policy of :mod:`repro.policy.adaptive` decides *when*
to apply them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro._errors import RedistributionError
from repro.core.metaobject import KIND_LOCAL, KIND_REMOTE, metaobject_of
from repro.runtime.migration import capture_state, restore_state
from repro.runtime.remote_ref import reference_of


@dataclass
class BoundaryChange:
    """A record of one applied distribution-boundary change."""

    class_name: str
    operation: str  # "make_remote", "make_local", "move", "set_transport"
    node_id: Optional[str] = None
    transport: Optional[str] = None


class DistributionController:
    """Applies distribution-boundary changes to rebindable handles."""

    def __init__(self, application, cluster) -> None:
        self.application = application
        self.cluster = cluster
        self.changes: list[BoundaryChange] = []

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _require_handle(self, handle: Any):
        meta = metaobject_of(handle)
        if meta is None:
            raise RedistributionError(
                "dynamic redistribution requires a rebindable handle; create the "
                "object with a dynamic placement decision (policy dynamic=True)"
            )
        return meta

    def _class_name_of(self, handle: Any) -> str:
        class_name = getattr(type(handle), "_repro_class_name", None)
        if class_name is None:
            raise RedistributionError(
                f"{type(handle).__name__} is not a generated handle type"
            )
        return class_name

    def _home_space(self):
        space = self.application.current_space
        if space is None:
            raise RedistributionError(
                "the application is not bound to a cluster; call deploy() first"
            )
        return space

    # ------------------------------------------------------------------
    # the three primitive boundary changes
    # ------------------------------------------------------------------

    def make_remote(
        self, handle: Any, node_id: str, transport: Optional[str] = None
    ) -> BoundaryChange:
        """Move the object behind ``handle`` to ``node_id`` behind a proxy."""
        meta = self._require_handle(handle)
        class_name = self._class_name_of(handle)
        home = self._home_space()
        target_space = self.cluster.space(node_id)

        if meta.kind == KIND_REMOTE and meta.node_id == node_id:
            raise RedistributionError(
                f"object is already remote on node {node_id!r}"
            )

        if meta.kind == KIND_LOCAL:
            implementation = meta.target
        else:
            # Currently remote elsewhere: pull the state across and rebuild a
            # fresh implementation on the new node.
            implementation = self._rebuild_local(class_name, meta.target)
            old_reference = reference_of(meta.target)
            if old_reference is not None and old_reference.node_id in self.cluster.node_ids():
                self.cluster.space(old_reference.node_id).unexport(old_reference)

        reference = target_space.export(implementation)
        transport = transport or self.application.policy.instance_decision(class_name).transport
        proxy = self.application.proxy_for_ref(reference, home, transport=transport)
        meta.rebind(proxy, KIND_REMOTE, node_id=node_id)

        change = BoundaryChange(class_name, "make_remote", node_id=node_id, transport=transport)
        self.changes.append(change)
        return change

    def make_local(self, handle: Any) -> BoundaryChange:
        """Bring the object behind ``handle`` into the caller's address space."""
        meta = self._require_handle(handle)
        class_name = self._class_name_of(handle)
        if meta.kind == KIND_LOCAL:
            raise RedistributionError("object is already local")

        implementation = self._rebuild_local(class_name, meta.target)
        old_reference = reference_of(meta.target)
        if old_reference is not None and old_reference.node_id in self.cluster.node_ids():
            self.cluster.space(old_reference.node_id).unexport(old_reference)

        home = self._home_space()
        meta.rebind(implementation, KIND_LOCAL, node_id=home.node_id)
        change = BoundaryChange(class_name, "make_local", node_id=home.node_id)
        self.changes.append(change)
        return change

    def move(self, handle: Any, node_id: str, transport: Optional[str] = None) -> BoundaryChange:
        """Move an already-remote object to a different node."""
        meta = self._require_handle(handle)
        if meta.kind == KIND_LOCAL:
            return self.make_remote(handle, node_id, transport=transport)
        if meta.node_id == node_id:
            raise RedistributionError(f"object already resides on node {node_id!r}")
        change = self.make_remote(handle, node_id, transport=transport)
        change = BoundaryChange(change.class_name, "move", node_id=node_id, transport=change.transport)
        self.changes[-1] = change
        return change

    def set_transport(self, handle: Any, transport: str) -> BoundaryChange:
        """Exchange the protocol a remote handle uses, in place."""
        meta = self._require_handle(handle)
        class_name = self._class_name_of(handle)
        if meta.kind != KIND_REMOTE:
            raise RedistributionError(
                "set_transport applies to handles currently bound to a remote proxy"
            )
        reference = reference_of(meta.target)
        if reference is None:
            raise RedistributionError("remote handle carries no reference")
        home = self._home_space()
        proxy = self.application.proxy_for_ref(reference, home, transport=transport)
        meta.rebind(proxy, KIND_REMOTE, node_id=meta.node_id)
        change = BoundaryChange(class_name, "set_transport", node_id=meta.node_id, transport=transport)
        self.changes.append(change)
        return change

    # ------------------------------------------------------------------

    def _rebuild_local(self, class_name: str, source: Any) -> Any:
        """Copy the remote object's state into a fresh local implementation."""
        artifacts = self.application.artifacts(class_name)
        replacement = artifacts.local_cls()
        state = capture_state(self.application, class_name, source)
        restore_state(self.application, class_name, replacement, state)
        return replacement

    # ------------------------------------------------------------------

    def boundary_of(self, handle: Any) -> tuple[str, Optional[str]]:
        """Return (kind, node) describing where the handle's object lives now."""
        meta = self._require_handle(handle)
        return meta.kind, meta.node_id
