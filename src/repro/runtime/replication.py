"""Replicated objects with automatic failover across cluster nodes.

A crashed node used to take its objects down with it: the failure model can
kill a node (:meth:`~repro.network.failures.FailureModel.crash_node`) and the
migration layer can move state (:func:`~repro.runtime.migration.capture_state`),
but nothing re-homed objects when their host died.  This module closes that
gap with primary/backup replication:

* :class:`ReplicaManager` keeps a *replica group* per replicated object: one
  primary (the copy application traffic hits) plus backup copies hosted on
  distinct nodes.  Backups are seeded and kept in sync **over the simulated
  network** — replication traffic pays real message costs — either eagerly
  (every mutating call is forwarded to each backup as it happens) or on a
  configurable interval of simulated time (state snapshots shipped from the
  event queue).
* A :class:`~repro.network.heartbeat.HeartbeatDetector` (registered via
  ``detector=``) declares nodes down; the manager reacts by *failing over*
  every group whose primary lived there: the freshest backup is promoted in
  place, the group's well-known name is rebound in the
  :class:`~repro.runtime.naming.NamingService`, and a redirect from the old
  :class:`~repro.runtime.remote_ref.RemoteRef` to the new one is published so
  in-flight traffic can re-route.
* The invocation layers consume those redirects:
  :class:`~repro.runtime.faulttolerance.FaultTolerantInvoker` (built with
  ``replica_manager=``) waits out the detection window and retries against
  the promoted replica instead of surfacing
  :class:`~repro.api.errors.PartitionError`/:class:`~repro.api.errors.NodeUnreachableError`
  as fatal, and :class:`~repro.runtime.pipelining.PipelineScheduler` requeues
  the failed sub-batch and re-resolves every reference at ship time.

Consistency model: *eager* mode gives per-object sequential consistency for
deterministic operations — the primary executes a call, then forwards the
same call to each live backup before the response leaves, so a promoted
backup has observed every acknowledged write.  *interval* mode trades that
durability for write cost: a crash loses at most one interval's writes on the
backup.  Operations must be deterministic (same call, same state change) for
operation-shipping to keep replicas equal; mark non-mutating members
``readonly`` so reads are not forwarded at all.

Quorum mode (``quorum > 1`` with ``fencing=True``) hardens eager replication
against asymmetric partitions:

* A write is acknowledged only after a **majority** of replicas applied it
  (the primary's local apply counts as one vote); short of quorum the caller
  gets :class:`~repro.api.errors.QuorumLostError` and the write is recorded
  as *divergent* — it is discarded, not replayed, if the primary is later
  fenced.
* Every replication frame (``apply_op``/``apply_ops``/``apply_state``)
  carries the group **epoch**; a :class:`ReplicaEndpoint` that has adopted a
  newer epoch rejects older frames with
  :class:`~repro.api.errors.FencedError`.
* Promotion is a **vote**: the failure monitor's node sends ``adopt_epoch``
  to every backup endpoint and may promote only when a majority of the
  group's voters acknowledged the new epoch — a monitor blinded by a
  partition collects no votes and cannot mint a second primary.
* A superseded primary *retires itself*: its wrapper compares the epoch it
  was exported under against the group's current epoch on every call and
  raises :class:`~repro.api.errors.FencedError` (reads included, so a stale
  primary can never serve a cache fill) instead of acking doomed writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro._errors import (
    FencedError,
    NetworkError,
    QuorumLostError,
    RemoteInvocationError,
    ReplicationError,
)
from repro.runtime.migration import capture_state, restore_state
from repro.runtime.remote_ref import RemoteRef

#: The two replica-synchronization modes.
SYNC_MODES = ("eager", "interval")


def snapshot_state(obj: Any, application: Any = None) -> dict:
    """Capture ``obj``'s replicable state as a plain dict of wire values.

    Transformed objects (when ``application`` is supplied and knows their
    class) are read through their generated accessors via
    :func:`~repro.runtime.migration.capture_state`; ordinary objects
    contribute their public instance attributes.
    """
    class_name = getattr(type(obj), "_repro_class_name", None)
    if (
        application is not None
        and class_name is not None
        and class_name in application.registry.class_names()
    ):
        return capture_state(application, class_name, obj)
    return {
        name: value for name, value in vars(obj).items() if not name.startswith("_")
    }


def apply_state(obj: Any, state: dict, application: Any = None) -> int:
    """Write a :func:`snapshot_state` dict into ``obj``; returns fields written."""
    class_name = getattr(type(obj), "_repro_class_name", None)
    if (
        application is not None
        and class_name is not None
        and class_name in application.registry.class_names()
    ):
        return restore_state(application, class_name, obj, state)
    written = 0
    for name, value in state.items():
        setattr(obj, name, value)
        written += 1
    return written


class ReplicaEndpoint:
    """The backup-side service object hosted on each backup node.

    It wraps the backup copy and exposes the two replication operations the
    primary invokes remotely: :meth:`apply_op` replays one mutating call
    (eager mode) and :meth:`apply_state` overwrites the copy's state with a
    shipped snapshot (interval mode, initial seeding, and recovery re-sync).
    Because these arrive as ordinary remote invocations, replication traffic
    is charged, metered and failure-injected exactly like application
    traffic.

    Fencing endpoints additionally track the group **epoch**: every
    replication frame carries the sender's epoch, a frame claiming an older
    epoch than one already adopted is rejected with
    :class:`~repro.api.errors.FencedError`, and :meth:`adopt_epoch` doubles
    as the promotion *vote* — acknowledging it commits this replica to the
    new epoch, after which the superseded primary's frames bounce.
    """

    def __init__(
        self,
        impl: Any,
        application: Any = None,
        *,
        fencing: bool = False,
        epoch: int = 0,
    ) -> None:
        self._impl = impl
        self._application = application
        #: Whether frames are epoch-checked (quorum/fencing groups).
        self.fencing = fencing
        #: Highest epoch this replica has adopted.
        self.epoch = epoch
        #: Mutating operations replayed onto this copy.
        self.ops_applied = 0
        #: State snapshots applied to this copy.
        self.snapshots_applied = 0
        #: Frames rejected for carrying a superseded epoch.
        self.fenced_rejections = 0

    def _check_epoch(self, epoch: Optional[int]) -> None:
        """Fence one incoming frame: adopt newer epochs, reject older ones."""
        if epoch is None or not self.fencing:
            return
        if epoch < self.epoch:
            self.fenced_rejections += 1
            raise FencedError(
                f"frame from epoch {epoch} rejected: replica is at epoch {self.epoch}",
                stale_epoch=epoch,
                current_epoch=self.epoch,
            )
        self.epoch = epoch

    def adopt_epoch(self, epoch: int) -> int:
        """Vote for a promotion by committing this replica to ``epoch``.

        The acknowledgement *is* the vote: a promotion proceeds only when a
        majority of voters adopted the new epoch.  An epoch at or below the
        one already adopted is a superseded (or duplicate) promotion attempt
        and is rejected with :class:`~repro.api.errors.FencedError`.
        """
        if self.fencing and epoch <= self.epoch:
            self.fenced_rejections += 1
            raise FencedError(
                f"cannot adopt epoch {epoch}: replica already at epoch {self.epoch}",
                stale_epoch=epoch,
                current_epoch=self.epoch,
            )
        self.epoch = epoch
        return epoch

    def apply_op(
        self, member: str, args: list, kwargs: dict, epoch: Optional[int] = None
    ) -> Any:
        """Replay one operation on the backup copy; returns its result."""
        self._check_epoch(epoch)
        result = getattr(self._impl, member)(*args, **kwargs)
        self.ops_applied += 1
        return result

    def apply_ops(self, ops: list, epoch: Optional[int] = None) -> int:
        """Replay a list of ``(member, args, kwargs)`` operations in order.

        The batched form of :meth:`apply_op`: when the primary serves a
        dispatched batch of writes, the whole window's forwards travel to
        this backup as **one** message instead of one per write.  Returns the
        number of operations applied.
        """
        self._check_epoch(epoch)
        for member, args, kwargs in ops:
            getattr(self._impl, member)(*args, **kwargs)
            self.ops_applied += 1
        return len(ops)

    def apply_state(self, state: dict, epoch: Optional[int] = None) -> int:
        """Overwrite the copy's state with a snapshot; returns fields written."""
        self._check_epoch(epoch)
        written = apply_state(self._impl, state, self._application)
        self.snapshots_applied += 1
        return written

    def implementation(self) -> Any:
        """The backup copy itself (used locally during promotion)."""
        return self._impl


@dataclass
class ReplicaRecord:
    """One backup copy of a replica group."""

    node_id: str
    #: Reference of the node's :class:`ReplicaEndpoint`; ``None`` while the
    #: node is enrolled but not (re-)seeded — e.g. a crashed ex-primary.
    endpoint_ref: Optional[RemoteRef]
    #: The backup implementation object (held for local promotion).
    impl: Optional[Any]
    #: False once replication traffic to this copy failed or its node died.
    healthy: bool = True


@dataclass
class StalePrimary:
    """A superseded primary a fencing failover could not reach to retire.

    Fencing failovers never reach across a partition to unexport the old
    primary (the partition is exactly why they cannot trust that path);
    instead the superseded wrapper is recorded here, left to fence itself on
    its next call, and reconciled — divergent unacknowledged ops discarded,
    export retired — when its node heals.
    """

    node_id: str
    ref: RemoteRef
    #: The epoch the wrapper was exported under (now superseded).
    epoch: int
    #: The superseded :class:`ReplicatedObject` (holds the divergent ops).
    wrapper: Any
    #: True once the wrapper has rejected a call with ``FencedError``.
    retired: bool = False


@dataclass
class ReconciliationRecord:
    """What one partition-heal reconciliation of a fenced ex-primary did."""

    group_name: str
    node_id: str
    #: The superseded epoch the ex-primary was fenced at.
    epoch: int
    #: Divergent unacknowledged ops discarded (never replayed anywhere).
    ops_discarded: int
    simulated_time: float


@dataclass
class FailoverRecord:
    """What one completed failover did."""

    group_name: str
    from_node: str
    to_node: str
    old_reference: RemoteRef
    new_reference: RemoteRef
    epoch: int
    simulated_time: float
    #: Promotion votes gathered (fencing groups; 0 for legacy promotion).
    votes: int = 0


@dataclass
class ReplicaGroup:
    """One replicated object: its primary, backups and replication counters."""

    name: str
    class_name: str
    primary_node: str
    primary_ref: RemoteRef
    primary_impl: Any
    sync: str
    readonly: FrozenSet[str]
    backups: Dict[str, ReplicaRecord] = field(default_factory=dict)
    #: Incremented on every failover; lets observers order promotions.
    epoch: int = 0
    #: True when interval mode has unsynchronized writes.
    dirty: bool = False
    #: Mutating operations forwarded to backups (eager mode).
    writes_propagated: int = 0
    #: State snapshots shipped to backups (interval mode, seeding, re-sync).
    snapshots_shipped: int = 0
    #: Forward messages actually sent (eager mode): one per backup per write
    #: outside a batch, one per backup per *dispatched batch* inside one.
    forward_messages: int = 0
    #: Writes deferred during the current batch dispatch (eager mode).
    pending_ops: List[tuple] = field(default_factory=list)
    #: True while a commit hook is registered for the current batch.  Kept
    #: separate from ``pending_ops`` so a hook that never ran (or failed)
    #: cannot wedge the deferral machinery: the next batch re-arms.
    commit_armed: bool = False
    #: Zero-argument constructor used to build (re-)seeded backup copies.
    factory: Optional[Callable[[], Any]] = None
    #: Acks (primary's local apply included) required before a write is
    #: acknowledged; 1 preserves the legacy fire-and-forget behaviour.
    quorum: int = 1
    #: Whether frames are epoch-stamped and stale primaries self-retire.
    fencing: bool = False
    #: The currently exported :class:`ReplicatedObject` wrapper.
    primary_wrapper: Optional[Any] = None
    #: Superseded primaries awaiting partition-heal reconciliation.
    stale_primaries: List[StalePrimary] = field(default_factory=list)
    #: Writes acknowledged with a full quorum of acks (quorum mode).
    acked_writes: int = 0
    #: Writes refused an ack because the quorum could not be gathered.
    quorum_failures: int = 0
    #: Calls rejected by a superseded wrapper fencing itself.
    fenced_calls: int = 0
    #: Promotions vetoed for lack of a majority of adoption votes.
    promotions_vetoed: int = 0
    #: Divergent unacknowledged ops discarded at reconciliation.
    ops_discarded: int = 0

    def healthy_backups(self) -> List[ReplicaRecord]:
        """The backup records currently believed usable for promotion."""
        return [
            record
            for record in self.backups.values()
            if record.healthy and record.endpoint_ref is not None
        ]


class ReplicatedObject:
    """The primary-side wrapper exported in place of the implementation.

    Application calls dispatch through it transparently: the member runs on
    the primary implementation first, and — when the group synchronizes
    eagerly and the member is not declared ``readonly`` — the same call is
    then forwarded to every live backup before the result is returned, so an
    acknowledged write is never lost by a failover.  In interval mode the
    group is merely marked dirty and the event-queue sync loop ships a state
    snapshot later.

    In fencing groups the wrapper remembers the epoch it was exported under
    and compares it against the group's current epoch on **every** call:
    once a promotion has superseded it, it raises
    :class:`~repro.api.errors.FencedError` instead of dispatching — reads
    included, so a stale primary can never serve a cache fill — and writes
    that executed locally but failed quorum are recorded as *divergent*, to
    be discarded (never replayed) when the node reconciles after a heal.
    """

    def __init__(self, manager: "ReplicaManager", group: ReplicaGroup) -> None:
        self._manager = manager
        self._group = group
        #: The group epoch at export time; fencing compares it per call.
        self._epoch = group.epoch
        #: Writes applied locally that never gathered a quorum of acks.
        self._divergent_ops: List[tuple] = []

    @property
    def _repro_cache_target(self) -> Any:
        """The real implementation, for cacheability metadata lookups.

        The owning address space reads ``@cacheable`` markers off this
        instead of the wrapper type, so reads of a replicated object do not
        spuriously invalidate subscriber caches.
        """
        return self._group.primary_impl

    def __getattr__(self, member: str) -> Callable:
        if member.startswith("_"):
            raise AttributeError(member)

        def call(*args: Any, **kwargs: Any) -> Any:
            group = self._group
            if group.fencing and self._epoch < group.epoch:
                # Superseded: retire instead of acking doomed writes (or
                # serving reads another epoch may have invalidated).
                self._manager._reject_fenced(group, self)
            result = getattr(group.primary_impl, member)(*args, **kwargs)
            if member not in group.readonly:
                try:
                    self._manager._after_write(group, member, args, kwargs)
                except QuorumLostError:
                    # Applied locally, never acknowledged: divergent until a
                    # reconciliation discards it (or a later quorum re-forms
                    # around this primary, making the local apply canonical).
                    self._divergent_ops.append((member, list(args), dict(kwargs)))
                    raise
            return result

        call.__name__ = member
        return call


class ReplicaManager:
    """Creates, synchronizes and fails over primary/backup replica groups.

    The manager is the control plane of the replication subsystem: it places
    backup copies on distinct nodes, keeps them in sync (eagerly or on a
    simulated-time interval), listens to a heartbeat detector, and promotes
    backups when primaries die — rebinding names and publishing
    :class:`~repro.runtime.remote_ref.RemoteRef` redirects that the
    fault-tolerance and pipelining layers use to re-route in-flight traffic.

    Parameters
    ----------
    cluster:
        The :class:`~repro.runtime.cluster.Cluster` hosting the replicas.
    application:
        Optional transformed application, enabling accessor-based state
        capture for transformed classes.
    detector:
        Optional :class:`~repro.network.heartbeat.HeartbeatDetector`; when
        given, the manager subscribes to its failure/recovery declarations.
    sync:
        Default synchronization mode for new groups: ``"eager"`` forwards
        every mutating call as it happens; ``"interval"`` ships state
        snapshots every ``sync_interval`` simulated seconds.
    sync_interval:
        Period of the interval-mode sync loop, in simulated seconds.
    transport:
        Transport used for replication traffic (``None`` = space default).
    """

    def __init__(
        self,
        cluster,
        *,
        application: Any = None,
        detector: Any = None,
        sync: str = "eager",
        sync_interval: float = 0.05,
        transport: Optional[str] = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ReplicationError(f"unknown sync mode {sync!r} (use one of {SYNC_MODES})")
        if sync_interval <= 0:
            raise ReplicationError("sync_interval must be positive")
        self.cluster = cluster
        self.application = application
        self.detector = detector
        self.sync = sync
        self.sync_interval = sync_interval
        self.transport = transport
        self.running = True
        self._groups: Dict[str, ReplicaGroup] = {}
        self._by_primary_ref: Dict[RemoteRef, ReplicaGroup] = {}
        self._redirects: Dict[RemoteRef, RemoteRef] = {}
        #: Every completed failover, in promotion order.
        self.failovers: List[FailoverRecord] = []
        #: Every partition-heal reconciliation of a fenced ex-primary.
        self.reconciliations: List[ReconciliationRecord] = []
        if detector is not None:
            detector.on_failure(self.handle_node_down)
            detector.on_recovery(self.handle_node_recovered)

    # ------------------------------------------------------------------
    # group creation
    # ------------------------------------------------------------------

    def replicate(
        self,
        impl: Any,
        *,
        name: str,
        primary_node: str,
        backup_nodes: Sequence[str],
        readonly: Sequence[str] = (),
        sync: Optional[str] = None,
        factory: Optional[Callable[[], Any]] = None,
        quorum: int = 1,
        fencing: bool = False,
    ) -> ReplicaGroup:
        """Create a replica group for ``impl`` and return it.

        The implementation is exported from ``primary_node`` behind a
        :class:`ReplicatedObject` wrapper and bound to ``name`` in the
        cluster's naming service.  One backup copy (built by ``factory``,
        default: the implementation's class with no arguments) is seeded on
        each of ``backup_nodes`` by shipping a state snapshot over the
        network.  ``readonly`` names members that never mutate state and are
        therefore not forwarded to backups.

        ``quorum`` is the number of replica acks (the primary's local apply
        included) a write needs before it is acknowledged; ``quorum > 1``
        requires eager sync.  ``fencing`` stamps every replication frame
        with the group epoch, gates promotion on a majority of adoption
        votes, and makes superseded primaries retire themselves.
        """
        if name in self._groups:
            raise ReplicationError(f"replica group {name!r} already exists")
        mode = sync if sync is not None else self.sync
        if mode not in SYNC_MODES:
            raise ReplicationError(f"unknown sync mode {mode!r} (use one of {SYNC_MODES})")
        backup_nodes = list(backup_nodes)
        if not backup_nodes:
            raise ReplicationError(f"replica group {name!r} needs at least one backup node")
        if primary_node in backup_nodes:
            raise ReplicationError("backups must live on nodes distinct from the primary")
        if len(set(backup_nodes)) != len(backup_nodes):
            raise ReplicationError("backup nodes must be distinct")
        if quorum < 1:
            raise ReplicationError("quorum must be at least 1")
        if quorum > 1 + len(backup_nodes):
            raise ReplicationError(
                f"quorum {quorum} exceeds the group's {1 + len(backup_nodes)} replicas"
            )
        if quorum > 1 and mode != "eager":
            raise ReplicationError("quorum replication requires eager sync")

        primary_space = self.cluster.space(primary_node)
        interface_name = getattr(
            type(impl), "_repro_interface_name", type(impl).__name__
        )
        group = ReplicaGroup(
            name=name,
            class_name=type(impl).__name__,
            primary_node=primary_node,
            primary_ref=None,  # type: ignore[arg-type] - set right below
            primary_impl=impl,
            sync=mode,
            readonly=frozenset(readonly),
            quorum=quorum,
            fencing=fencing,
        )
        wrapper = ReplicatedObject(self, group)
        group.primary_wrapper = wrapper
        group.primary_ref = primary_space.export(wrapper, interface_name=interface_name)
        group.factory = factory if factory is not None else self._default_factory(impl)

        state = snapshot_state(impl, self.application)
        for node_id in backup_nodes:
            record = self._seed_backup(group, node_id, group.factory, state)
            group.backups[node_id] = record

        self._groups[name] = group
        self._by_primary_ref[group.primary_ref] = group
        self.cluster.naming.rebind(name, group.primary_ref)
        if mode == "interval":
            self._schedule_sync(group)
        return group

    def _default_factory(self, impl: Any) -> Callable[[], Any]:
        """A zero-argument constructor for backup copies of ``impl``."""
        class_name = getattr(type(impl), "_repro_class_name", None)
        if (
            self.application is not None
            and class_name is not None
            and class_name in self.application.registry.class_names()
        ):
            return self.application.artifacts(class_name).local_cls
        return type(impl)

    def _seed_backup(
        self,
        group: ReplicaGroup,
        node_id: str,
        make_copy: Callable[[], Any],
        state: dict,
    ) -> ReplicaRecord:
        """Create, export and state-sync one backup copy on ``node_id``."""
        copy = make_copy()
        endpoint = ReplicaEndpoint(
            copy, self.application, fencing=group.fencing, epoch=group.epoch
        )
        endpoint_ref = self.cluster.space(node_id).export(
            endpoint, interface_name=f"{group.class_name}.replica"
        )
        record = ReplicaRecord(node_id=node_id, endpoint_ref=endpoint_ref, impl=copy)
        try:
            self._primary_space(group).invoke_remote(
                endpoint_ref,
                "apply_state",
                self._stamp(group, (dict(state),)),
                transport=self.transport,
            )
            group.snapshots_shipped += 1
        except (NetworkError, RemoteInvocationError):
            record.healthy = False
        return record

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def group(self, name: str) -> ReplicaGroup:
        """The replica group bound to ``name``."""
        try:
            return self._groups[name]
        except KeyError as exc:
            raise ReplicationError(f"no replica group named {name!r}") from exc

    def groups(self) -> List[ReplicaGroup]:
        """Every replica group this manager maintains."""
        return list(self._groups.values())

    def current_ref(self, reference: RemoteRef) -> RemoteRef:
        """Resolve ``reference`` through the published failover redirects.

        Returns the reference of the most recently promoted primary when the
        given one has been superseded (following chains across repeated
        failovers), or the reference unchanged when no redirect applies.
        """
        seen = set()
        while reference in self._redirects and reference not in seen:
            seen.add(reference)
            reference = self._redirects[reference]
        return reference

    def group_for_ref(self, reference: RemoteRef) -> Optional[ReplicaGroup]:
        """The replica group whose (current) primary is ``reference``, if any."""
        return self._by_primary_ref.get(self.current_ref(reference))

    def has_failover_target(self, reference: RemoteRef) -> bool:
        """Whether traffic to ``reference`` can survive its node's death.

        True when a redirect is already published for it, or when it is the
        primary of a group that still has a promotable backup — the signal
        the retry layers use to keep trying instead of surfacing a fatal
        network error.
        """
        if self.current_ref(reference) != reference:
            return True
        group = self._by_primary_ref.get(reference)
        return group is not None and bool(self._promotable(group))

    def suggested_backoff(self) -> float:
        """Simulated seconds a retrier should wait between failover probes."""
        if self.detector is not None:
            return self.detector.interval
        return self.sync_interval

    def await_failover(self, reference: RemoteRef, max_wait: float) -> Optional[RemoteRef]:
        """Pump the event queue until ``reference`` is redirected, or give up.

        Drives the network's event queue (heartbeat rounds included) for at
        most ``max_wait`` simulated seconds.  Returns the promoted reference
        as soon as a redirect for ``reference`` is published, or ``None``
        when the deadline passes first.  Synchronous callers use this to
        ride out the detection window; the pipelined scheduler instead
        requeues with backoff, because it is already running inside the
        event loop.
        """
        events = self.cluster.network.events
        deadline = self.cluster.network.clock.now + max_wait
        while True:
            resolved = self.current_ref(reference)
            if resolved != reference:
                return resolved
            next_time = events.next_fire_time()
            if next_time is None or next_time > deadline:
                return None
            events.run_next()

    # ------------------------------------------------------------------
    # write synchronization
    # ------------------------------------------------------------------

    def _stamp(self, group: ReplicaGroup, args: tuple) -> tuple:
        """Append the group epoch to a replication frame's arguments.

        Fencing groups put the epoch on the wire with every frame so a
        replica that adopted a newer epoch rejects the sender; legacy groups
        keep the original frame shape.
        """
        if group.fencing:
            return args + (group.epoch,)
        return args

    def _reject_fenced(self, group: ReplicaGroup, wrapper: ReplicatedObject) -> None:
        """Retire a superseded primary wrapper: count, mark, and raise."""
        group.fenced_calls += 1
        for stale in group.stale_primaries:
            if stale.wrapper is wrapper:
                stale.retired = True
        raise FencedError(
            f"replica group {group.name!r} primary from epoch {wrapper._epoch} "
            f"was superseded by epoch {group.epoch}",
            stale_epoch=wrapper._epoch,
            current_epoch=group.epoch,
        )

    def _after_write(self, group: ReplicaGroup, member: str, args: tuple, kwargs: dict) -> None:
        """React to one mutating call on the primary (from the wrapper).

        Eager mode forwards the call to every backup — immediately for a
        single invocation, but *deferred and batched* while the primary's
        space is dispatching a batch message: the whole window's writes then
        travel as one ``apply_ops`` message per backup (committed before the
        batch response leaves), cutting the write amplification from one
        message per write to one per dispatched batch.

        Quorum groups instead commit each write individually — majority ack
        before the response leaves — bypassing the batch deferral: deferring
        past the batch response would acknowledge writes the quorum might
        yet refuse.
        """
        if group.sync != "eager":
            group.dirty = True
            return
        if group.quorum > 1:
            self._quorum_write(group, member, args, kwargs)
            return
        space = self._primary_space(group)
        if getattr(space, "in_batch_dispatch", False):
            if not group.commit_armed:
                group.commit_armed = True
                space.on_batch_commit(lambda: self._flush_pending_ops(group))
            group.pending_ops.append((member, list(args), dict(kwargs)))
        else:
            self._propagate_op(group, member, args, kwargs)

    def _trace_forwards(self, space, name: str, start: float, **attrs) -> None:
        """Record one replication span per trace the triggering message carried.

        The primary's address space accumulates ``(trace_id, parent_id)``
        refs while dispatching a message; a forward loop that ran between
        ``start`` and now is billed to each of those traces.  Zero-width
        intervals (no backup reachable, clock never advanced) are skipped —
        they would add noise without latency.
        """
        tracer = getattr(space.network, "tracer", None)
        if tracer is None:
            return
        end = space.network.clock.now
        if end <= start:
            return
        for trace_id, parent_id in getattr(space, "_message_trace_refs", ()):
            tracer.record_span(
                name,
                trace_id=trace_id,
                parent_id=parent_id,
                kind="replication",
                start=start,
                end=end,
                **attrs,
            )

    def _propagate_op(self, group: ReplicaGroup, member: str, args: tuple, kwargs: dict) -> None:
        """Forward one mutating call to every live backup (eager mode)."""
        space = self._primary_space(group)
        t0 = space.network.clock.now
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_op",
                    self._stamp(group, (member, list(args), dict(kwargs))),
                    transport=self.transport,
                )
                group.writes_propagated += 1
                group.forward_messages += 1
            except (NetworkError, RemoteInvocationError):
                # The forward was lost — or the replay failed on the backup
                # (its state has diverged).  Either way the copy is stale and
                # no longer a promotion candidate until a snapshot re-seeds
                # it; the primary's acknowledged write must not fail.
                record.healthy = False
                self._schedule_reseed(group, record.node_id)
        self._trace_forwards(space, "replicate", t0, group=group.name, op=member)

    def _quorum_write(self, group: ReplicaGroup, member: str, args: tuple, kwargs: dict) -> None:
        """Commit one quorum-mode write: majority ack or no client ack.

        The primary's local apply (already done by the wrapper) counts as
        one ack; the call is then forwarded — epoch-stamped — to every live
        backup.  Unreachable or failed backups are demoted and re-seeded
        like eager forwards; a backup answering with
        :class:`~repro.api.errors.FencedError` has adopted a newer epoch
        (a partial promotion attempt) and is treated the same way.  When
        fewer than ``group.quorum`` acks are gathered the write is refused
        with :class:`~repro.api.errors.QuorumLostError` — the caller is not
        acknowledged, and the wrapper records the local apply as divergent.
        """
        space = self._primary_space(group)
        acks = 1  # the primary's own apply
        t0 = space.network.clock.now
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_op",
                    self._stamp(group, (member, list(args), dict(kwargs))),
                    transport=self.transport,
                )
                acks += 1
                group.writes_propagated += 1
                group.forward_messages += 1
            except (NetworkError, RemoteInvocationError, FencedError):
                record.healthy = False
                self._schedule_reseed(group, record.node_id)
        self._trace_forwards(
            space, "quorum-write", t0, group=group.name, op=member, acks=acks
        )
        if acks < group.quorum:
            group.quorum_failures += 1
            raise QuorumLostError(
                f"write {member!r} on replica group {group.name!r} gathered "
                f"{acks} of the {group.quorum} acknowledgements required"
            )
        group.acked_writes += 1

    def _flush_pending_ops(self, group: ReplicaGroup) -> None:
        """Ship the batch-deferred writes: one ``apply_ops`` per live backup."""
        # Disarm first: whatever happens below, the next batch must register
        # a fresh hook rather than silently appending to a dead buffer.
        group.commit_armed = False
        ops, group.pending_ops = group.pending_ops, []
        if not ops:
            return
        space = self._primary_space(group)
        t0 = space.network.clock.now
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_ops",
                    self._stamp(group, ([list(op) for op in ops],)),
                    transport=self.transport,
                )
                group.writes_propagated += len(ops)
                group.forward_messages += 1
            except (NetworkError, RemoteInvocationError):
                # A lost forward or a failed replay (diverged backup) demotes
                # this copy only; it must not escape the batch-commit hook
                # and fail a batch the primary already executed, nor skip the
                # forwards to the remaining backups.
                record.healthy = False
                self._schedule_reseed(group, record.node_id)
        self._trace_forwards(
            space, "replicate-batch", t0, group=group.name, ops=len(ops)
        )

    def sync_now(self, group: ReplicaGroup) -> int:
        """Ship a state snapshot to every live backup; returns copies synced."""
        state = snapshot_state(group.primary_impl, self.application)
        space = self._primary_space(group)
        synced = 0
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_state",
                    self._stamp(group, (dict(state),)),
                    transport=self.transport,
                )
                group.snapshots_shipped += 1
                synced += 1
            except (NetworkError, RemoteInvocationError):
                # A failed snapshot application must not crash the interval
                # sync tick running on the event queue.
                record.healthy = False
                self._schedule_reseed(group, record.node_id)
        group.dirty = False
        return synced

    def _schedule_sync(self, group: ReplicaGroup) -> None:
        """Run the interval-mode sync loop for ``group`` on the event queue."""

        def tick() -> None:
            if not self.running or self._groups.get(group.name) is not group:
                return
            if group.dirty and not self._node_down(group.primary_node):
                self.sync_now(group)
            self.cluster.network.events.schedule(self.sync_interval, tick)

        self.cluster.network.events.schedule(self.sync_interval, tick)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def handle_node_down(self, node_id: str, at_time: float = 0.0) -> None:
        """React to a node being declared dead (heartbeat listener).

        Backups hosted there become unusable; every group whose primary
        lived there is failed over to its freshest backup (groups with no
        promotable backup are left as they are — traffic keeps failing until
        the node recovers).

        Fencing groups treat the monitor's view as advisory for *promotion*
        only: their backups are not demoted on a declaration alone, because
        a monitor blinded by an asymmetric partition would otherwise poison
        a perfectly healthy data plane — the primary demotes backups from
        its own failed forwards, which it can actually observe.
        """
        for group in self._groups.values():
            if group.fencing:
                continue
            record = group.backups.get(node_id)
            if record is not None:
                record.healthy = False
        for group in list(self._groups.values()):
            if group.primary_node == node_id and self._promotable(group):
                if group.fencing:
                    # A vetoed promotion (no majority of adoption votes —
                    # e.g. the monitor is the partitioned party) is a normal
                    # outcome, not an event-pump crash: the group simply
                    # stays unpromoted until the view changes.
                    try:
                        self.failover(group)
                    except ReplicationError:
                        continue
                else:
                    self.failover(group)

    def handle_node_recovered(self, node_id: str, at_time: float = 0.0) -> None:
        """React to a declared-dead node answering again (heartbeat listener).

        The node's copies are stale (it missed writes while unreachable), so
        every group with a replica slot there is re-seeded with a fresh
        snapshot of the current primary and re-enlisted as a healthy backup —
        which restores redundancy after a failover and makes fail-*back*
        possible on the next crash.
        """
        for group in self._groups.values():
            if group.primary_node == node_id:
                # The primary itself is back (it never failed over, e.g. its
                # backups were down too): restore the redundancy it lost.
                for other, record in list(group.backups.items()):
                    if not record.healthy and not self._node_down(other):
                        self._reenlist(group, other)
                continue
            record = group.backups.get(node_id)
            if record is None or record.healthy:
                continue
            if self._node_down(group.primary_node):
                # Cannot seed from a dead primary; the primary's own recovery
                # (branch above) re-enlists this slot when it returns.
                continue
            self._reconcile_stale_primary(group, node_id)
            self._reenlist(group, node_id)
            refreshed = group.backups.get(node_id)
            if refreshed is not None and not refreshed.healthy:
                self._schedule_reseed(group, node_id)

    def _reconcile_stale_primary(self, group: ReplicaGroup, node_id: str) -> None:
        """Reconcile a healed node that was a fenced primary of ``group``.

        The superseded wrapper's divergent ops — writes it applied locally
        that never gathered a quorum and were never acknowledged — are
        **discarded**, not replayed: the quorum that fenced this primary is
        the canonical history, and the client was told those writes failed.
        The stale export is then retired (the heal makes the node reachable
        again, so the retirement that the partition blocked at failover time
        can finally happen) before :meth:`_reenlist` re-seeds the node from
        the current primary's state.
        """
        remaining: List[StalePrimary] = []
        for stale in group.stale_primaries:
            if stale.node_id != node_id:
                remaining.append(stale)
                continue
            discarded = len(stale.wrapper._divergent_ops)
            stale.wrapper._divergent_ops.clear()
            group.ops_discarded += discarded
            if node_id in self.cluster:
                self.cluster.space(node_id).unexport(stale.ref)
            self.reconciliations.append(
                ReconciliationRecord(
                    group_name=group.name,
                    node_id=node_id,
                    epoch=stale.epoch,
                    ops_discarded=discarded,
                    simulated_time=self.cluster.network.clock.now,
                )
            )
        group.stale_primaries = remaining

    def _reenlist(self, group: ReplicaGroup, node_id: str) -> None:
        """Re-seed ``node_id`` as a healthy backup of ``group``.

        The existing record is replaced only once the fresh copy's seeding
        snapshot actually landed.  When it fails (the node may still be
        unreachable from the primary — e.g. mid-partition), the half-seeded
        export is retired and the old record kept: a stale copy that a
        fencing promotion can still elect by vote beats an empty husk that
        would lose every acknowledged write if promoted.
        """
        stale = group.backups.get(node_id)
        make_copy = group.factory or self._default_factory(group.primary_impl)
        state = snapshot_state(group.primary_impl, self.application)
        fresh = self._seed_backup(group, node_id, make_copy, state)
        if not fresh.healthy and stale is not None and stale.endpoint_ref is not None:
            self.cluster.space(node_id).unexport(fresh.endpoint_ref)
            return
        if stale is not None and stale.endpoint_ref is not None:
            # Retire the stale endpoint so crash/recover cycles do not leak
            # exports (or leave an out-of-date copy answering invocations).
            self.cluster.space(node_id).unexport(stale.endpoint_ref)
        group.backups[node_id] = fresh

    def _schedule_reseed(
        self, group: ReplicaGroup, node_id: str, attempt: int = 1, max_attempts: int = 8
    ) -> None:
        """Restore a backup demoted by lost replication traffic.

        A *transient* loss (a dropped forward) demotes the copy even though
        its host node is alive — without this loop the group would silently
        run unprotected forever.  A snapshot re-seed is retried with linear
        backoff while the host stays up; a host that is actually down is
        left to the detector's recovery path (:meth:`handle_node_recovered`).
        """

        def tick() -> None:
            if not self.running or self._groups.get(group.name) is not group:
                return
            record = group.backups.get(node_id)
            if record is None or record.healthy or group.primary_node == node_id:
                return
            if self._node_down(node_id) or self._node_down(group.primary_node):
                # Either side is down right now: keep the retry alive (the
                # detector's recovery declarations also re-enlist, but they
                # can race a seeding failure — see handle_node_recovered).
                if attempt < max_attempts:
                    self._schedule_reseed(group, node_id, attempt + 1, max_attempts)
                return
            self._reenlist(group, node_id)
            refreshed = group.backups.get(node_id)
            if (
                refreshed is not None
                and not refreshed.healthy
                and attempt < max_attempts
            ):
                self._schedule_reseed(group, node_id, attempt + 1, max_attempts)

        self.cluster.network.events.schedule(self.suggested_backoff() * attempt, tick)

    def _majority(self, group: ReplicaGroup) -> int:
        """Votes a promotion needs: a majority of the group's voters.

        Voters are every replica slot — the (presumed-dead) primary plus all
        enrolled backups — so the threshold stays fixed at ``N // 2 + 1`` of
        the group's size even while some slots are unreachable.
        """
        voters = 1 + len(group.backups)
        return voters // 2 + 1

    def _collect_promotion_votes(
        self, group: ReplicaGroup, new_epoch: int
    ) -> Tuple[int, List[str]]:
        """Ask every backup endpoint to adopt ``new_epoch``; returns the acks.

        Votes are solicited **from the failure monitor's node** (falling
        back to the first promotable candidate's): the monitor is the party
        claiming the primary is dead, so its own connectivity is what the
        vote tests.  A monitor blinded by an asymmetric partition collects
        no acks and the promotion is vetoed — it cannot mint a second
        primary no matter what its detector believes.  Each ack also fences
        the voter: having adopted ``new_epoch``, it will bounce every frame
        the superseded primary still sends.  Returns the vote count and the
        node ids that voted, so :meth:`failover` can prefer a voter — a
        replica proven reachable and already committed to the new epoch —
        as the promotion target.
        """
        monitor_node = getattr(self.detector, "monitor_node", None)
        if monitor_node is not None and monitor_node in self.cluster:
            vote_space = self.cluster.space(monitor_node)
        else:
            vote_space = self.cluster.space(self._promotable(group)[0].node_id)
        if self.detector is not None and hasattr(self.detector, "quorum_view"):
            # Cheap precheck on the monitor's own view: if it cannot even
            # *see* a majority of voters, skip the doomed vote round.
            voters = [group.primary_node, *group.backups]
            if self.detector.quorum_view(voters) < self._majority(group):
                return 0, []
        votes = 0
        voted: List[str] = []
        for record in group.backups.values():
            if record.endpoint_ref is None:
                continue
            try:
                vote_space.invoke_remote(
                    record.endpoint_ref,
                    "adopt_epoch",
                    (new_epoch,),
                    transport=self.transport,
                )
                votes += 1
                voted.append(record.node_id)
            except (NetworkError, RemoteInvocationError, FencedError):
                continue
        return votes, voted

    def failover(self, group: ReplicaGroup) -> FailoverRecord:
        """Promote the freshest backup of ``group`` to primary.

        The backup copy becomes the new primary implementation behind a new
        :class:`ReplicatedObject` export on its node, the group's name is
        rebound in the naming service, and a redirect ``old ref → new ref``
        is published for the retry layers.  The dead ex-primary's node stays
        enrolled as an (unhealthy) backup slot so a later recovery re-seeds
        it.  Raises :class:`~repro.api.errors.ReplicationError` when no healthy
        backup exists.

        Fencing groups promote by **vote**: a majority of the group's voters
        must acknowledge ``adopt_epoch`` (collected from the failure
        monitor's node) or the promotion is vetoed with
        :class:`~repro.api.errors.QuorumLostError`.  They also never reach
        across the partition to retire the old primary's export — the
        superseded wrapper is recorded as a :class:`StalePrimary`, fences
        itself on its next call, and is reconciled when its node heals.
        """
        candidates = self._promotable(group)
        if not candidates:
            raise ReplicationError(
                f"replica group {group.name!r} has no promotable backup"
            )
        votes = 0
        voted: List[str] = []
        if group.fencing:
            new_epoch = group.epoch + 1
            votes, voted = self._collect_promotion_votes(group, new_epoch)
            needed = self._majority(group)
            if votes < needed:
                group.promotions_vetoed += 1
                raise QuorumLostError(
                    f"promotion of replica group {group.name!r} to epoch "
                    f"{new_epoch} gathered {votes} of the {needed} adoption "
                    f"votes required"
                )
        # Prefer a candidate that voted: it is proven reachable and already
        # committed to the new epoch (pure preference — a majority elsewhere
        # still fences the old primary even if no candidate voted).
        promoted = next(
            (record for record in candidates if record.node_id in voted),
            candidates[0],
        )
        old_node, old_ref = group.primary_node, group.primary_ref
        old_wrapper, old_epoch = group.primary_wrapper, group.epoch
        new_space = self.cluster.space(promoted.node_id)

        # The endpoint retires; its copy becomes the primary implementation.
        new_space.unexport(promoted.endpoint_ref)
        group.primary_impl = promoted.impl
        group.primary_node = promoted.node_id
        group.epoch += 1
        wrapper = ReplicatedObject(self, group)
        group.primary_wrapper = wrapper
        group.primary_ref = new_space.export(
            wrapper, interface_name=old_ref.interface_name
        )
        del group.backups[promoted.node_id]
        stale_subscribers: Dict[str, Optional[float]] = {}
        if group.fencing:
            # Never reach across the partition: the old node may be alive
            # and merely unreachable from the monitor, in which case its
            # space cannot be trusted (or, in a real deployment, reached) to
            # hand over state.  Record the superseded wrapper instead; it
            # fences itself on its next call and the heal reconciles it.
            if old_wrapper is not None:
                group.stale_primaries.append(
                    StalePrimary(
                        node_id=old_node,
                        ref=old_ref,
                        epoch=old_epoch,
                        wrapper=old_wrapper,
                    )
                )
        elif old_node in self.cluster:
            # Capture the demoted primary's cache subscribers BEFORE
            # retiring its export (unexport purges the coherence
            # bookkeeping), so the promoted node can still flush their
            # leases below.
            stale_subscribers = self.cluster.space(old_node).take_cache_subscribers(
                old_ref.object_id
            )
            # Retire the superseded export: should the dead node come back,
            # its stale wrapper must not keep answering writes at the old
            # reference.
            self.cluster.space(old_node).unexport(old_ref)
        # Keep the dead node enrolled so recovery can re-enlist it.
        group.backups[old_node] = ReplicaRecord(
            node_id=old_node, endpoint_ref=None, impl=None, healthy=False
        )

        self._redirects[old_ref] = group.primary_ref
        self._by_primary_ref.pop(old_ref, None)
        self._by_primary_ref[group.primary_ref] = group
        self.cluster.naming.rebind(group.name, group.primary_ref)
        if group.fencing:
            # Without the old node's subscriber table (unreachable, above),
            # flush the old reference from *every* peer, stamped with the
            # new epoch: subscribers drop their leases immediately, the
            # epoch floor advances, and any later ``!inv`` the fenced
            # ex-primary mints at the old epoch is rejected on arrival.
            peers = [
                node for node in self.cluster.node_ids() if node != group.primary_node
            ]
            new_space.send_cache_invalidations(
                [old_ref.object_id], peers, epoch=group.epoch
            )
        elif stale_subscribers:
            # Flush cache leases held against the demoted primary: it can no
            # longer invalidate anyone, so the *promoted* node sends the
            # invalidation for the old reference — readers drop their entries
            # immediately rather than serving them until the lease runs out.
            # (Entry keys also re-home naturally: the promoted primary is a
            # fresh export, so post-failover reads miss and re-fill.)
            new_space.send_cache_invalidations(
                [old_ref.object_id], list(stale_subscribers)
            )

        record = FailoverRecord(
            group_name=group.name,
            from_node=old_node,
            to_node=group.primary_node,
            old_reference=old_ref,
            new_reference=group.primary_ref,
            epoch=group.epoch,
            simulated_time=self.cluster.network.clock.now,
            votes=votes,
        )
        self.failovers.append(record)
        return record

    # ------------------------------------------------------------------

    def dismantle(self, group: ReplicaGroup) -> None:
        """Tear one replica group fully down (the reverse of :meth:`replicate`).

        The primary wrapper and every backup endpoint are unexported and the
        group is forgotten (redirect chains into it included) — dismantling a
        session must leave no exports or manager state behind.  The group's
        well-known name is the caller's to unbind (the manager does not know
        whether anyone else rebound it).  Idempotent per group.
        """
        if self._groups.get(group.name) is not group:
            return
        if group.primary_node in self.cluster:
            self.cluster.space(group.primary_node).unexport(group.primary_ref)
        for record in group.backups.values():
            if record.endpoint_ref is not None and record.node_id in self.cluster:
                self.cluster.space(record.node_id).unexport(record.endpoint_ref)
        for stale in group.stale_primaries:
            # Fenced ex-primaries that never healed still hold their export.
            if stale.node_id in self.cluster:
                self.cluster.space(stale.node_id).unexport(stale.ref)
        group.stale_primaries = []
        del self._groups[group.name]
        self._by_primary_ref.pop(group.primary_ref, None)
        self._redirects = {
            old: new
            for old, new in self._redirects.items()
            if new != group.primary_ref
        }

    def stop(self) -> None:
        """Stop the interval sync loops (pending ticks become no-ops)."""
        self.running = False

    def detach(self) -> None:
        """Unsubscribe this manager's listeners from its heartbeat detector.

        Detector instances can outlive the manager (and the session that
        created it); without detaching, every discarded manager would keep
        reacting — and keep being referenced — forever.  Idempotent, and a
        no-op for managers built without a detector.
        """
        if self.detector is not None:
            self.detector.off_failure(self.handle_node_down)
            self.detector.off_recovery(self.handle_node_recovered)

    def _primary_space(self, group: ReplicaGroup):
        return self.cluster.space(group.primary_node)

    def _promotable(self, group: ReplicaGroup) -> List[ReplicaRecord]:
        """Backups :meth:`failover` would actually promote.

        The single source of truth for "can this group fail over" — the
        heartbeat listener must apply exactly this filter before calling
        :meth:`failover`, or a group whose every backup host is also dead
        would raise out of the listener and crash the event pump.

        Legacy groups require ``record.healthy``; fencing groups do **not**:
        the healthy flag reflects the *primary's* failed forwards, and when
        the primary is the partitioned party it has demoted every backup it
        lost sight of — the very replicas the promotion must choose from.
        For them any seeded, non-crashed slot is a candidate (healthy ones
        preferred), and the adoption-vote round is what actually tests
        reachability and majority before the promotion commits.
        """
        if group.fencing:
            candidates = [
                record
                for record in group.backups.values()
                if record.endpoint_ref is not None
                and record.impl is not None
                and not self._node_down(record.node_id)
            ]
            candidates.sort(key=lambda record: not record.healthy)
            return candidates
        return [
            record
            for record in group.healthy_backups()
            if not self._node_down(record.node_id)
        ]

    def _node_down(self, node_id: str) -> bool:
        return self.cluster.network.failures.is_node_down(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaManager groups={sorted(self._groups)} "
            f"failovers={len(self.failovers)}>"
        )
