"""Replicated objects with automatic failover across cluster nodes.

A crashed node used to take its objects down with it: the failure model can
kill a node (:meth:`~repro.network.failures.FailureModel.crash_node`) and the
migration layer can move state (:func:`~repro.runtime.migration.capture_state`),
but nothing re-homed objects when their host died.  This module closes that
gap with primary/backup replication:

* :class:`ReplicaManager` keeps a *replica group* per replicated object: one
  primary (the copy application traffic hits) plus backup copies hosted on
  distinct nodes.  Backups are seeded and kept in sync **over the simulated
  network** — replication traffic pays real message costs — either eagerly
  (every mutating call is forwarded to each backup as it happens) or on a
  configurable interval of simulated time (state snapshots shipped from the
  event queue).
* A :class:`~repro.network.heartbeat.HeartbeatDetector` (registered via
  ``detector=``) declares nodes down; the manager reacts by *failing over*
  every group whose primary lived there: the freshest backup is promoted in
  place, the group's well-known name is rebound in the
  :class:`~repro.runtime.naming.NamingService`, and a redirect from the old
  :class:`~repro.runtime.remote_ref.RemoteRef` to the new one is published so
  in-flight traffic can re-route.
* The invocation layers consume those redirects:
  :class:`~repro.runtime.faulttolerance.FaultTolerantInvoker` (built with
  ``replica_manager=``) waits out the detection window and retries against
  the promoted replica instead of surfacing
  :class:`~repro.errors.PartitionError`/:class:`~repro.errors.NodeUnreachableError`
  as fatal, and :class:`~repro.runtime.pipelining.PipelineScheduler` requeues
  the failed sub-batch and re-resolves every reference at ship time.

Consistency model: *eager* mode gives per-object sequential consistency for
deterministic operations — the primary executes a call, then forwards the
same call to each live backup before the response leaves, so a promoted
backup has observed every acknowledged write.  *interval* mode trades that
durability for write cost: a crash loses at most one interval's writes on the
backup.  Operations must be deterministic (same call, same state change) for
operation-shipping to keep replicas equal; mark non-mutating members
``readonly`` so reads are not forwarded at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence

from repro.errors import NetworkError, RemoteInvocationError, ReplicationError
from repro.runtime.migration import capture_state, restore_state
from repro.runtime.remote_ref import RemoteRef

#: The two replica-synchronization modes.
SYNC_MODES = ("eager", "interval")


def snapshot_state(obj: Any, application: Any = None) -> dict:
    """Capture ``obj``'s replicable state as a plain dict of wire values.

    Transformed objects (when ``application`` is supplied and knows their
    class) are read through their generated accessors via
    :func:`~repro.runtime.migration.capture_state`; ordinary objects
    contribute their public instance attributes.
    """
    class_name = getattr(type(obj), "_repro_class_name", None)
    if (
        application is not None
        and class_name is not None
        and class_name in application.registry.class_names()
    ):
        return capture_state(application, class_name, obj)
    return {
        name: value for name, value in vars(obj).items() if not name.startswith("_")
    }


def apply_state(obj: Any, state: dict, application: Any = None) -> int:
    """Write a :func:`snapshot_state` dict into ``obj``; returns fields written."""
    class_name = getattr(type(obj), "_repro_class_name", None)
    if (
        application is not None
        and class_name is not None
        and class_name in application.registry.class_names()
    ):
        return restore_state(application, class_name, obj, state)
    written = 0
    for name, value in state.items():
        setattr(obj, name, value)
        written += 1
    return written


class ReplicaEndpoint:
    """The backup-side service object hosted on each backup node.

    It wraps the backup copy and exposes the two replication operations the
    primary invokes remotely: :meth:`apply_op` replays one mutating call
    (eager mode) and :meth:`apply_state` overwrites the copy's state with a
    shipped snapshot (interval mode, initial seeding, and recovery re-sync).
    Because these arrive as ordinary remote invocations, replication traffic
    is charged, metered and failure-injected exactly like application
    traffic.
    """

    def __init__(self, impl: Any, application: Any = None) -> None:
        self._impl = impl
        self._application = application
        #: Mutating operations replayed onto this copy.
        self.ops_applied = 0
        #: State snapshots applied to this copy.
        self.snapshots_applied = 0

    def apply_op(self, member: str, args: list, kwargs: dict) -> Any:
        """Replay one operation on the backup copy; returns its result."""
        result = getattr(self._impl, member)(*args, **kwargs)
        self.ops_applied += 1
        return result

    def apply_ops(self, ops: list) -> int:
        """Replay a list of ``(member, args, kwargs)`` operations in order.

        The batched form of :meth:`apply_op`: when the primary serves a
        dispatched batch of writes, the whole window's forwards travel to
        this backup as **one** message instead of one per write.  Returns the
        number of operations applied.
        """
        for member, args, kwargs in ops:
            getattr(self._impl, member)(*args, **kwargs)
            self.ops_applied += 1
        return len(ops)

    def apply_state(self, state: dict) -> int:
        """Overwrite the copy's state with a snapshot; returns fields written."""
        written = apply_state(self._impl, state, self._application)
        self.snapshots_applied += 1
        return written

    def implementation(self) -> Any:
        """The backup copy itself (used locally during promotion)."""
        return self._impl


@dataclass
class ReplicaRecord:
    """One backup copy of a replica group."""

    node_id: str
    #: Reference of the node's :class:`ReplicaEndpoint`; ``None`` while the
    #: node is enrolled but not (re-)seeded — e.g. a crashed ex-primary.
    endpoint_ref: Optional[RemoteRef]
    #: The backup implementation object (held for local promotion).
    impl: Optional[Any]
    #: False once replication traffic to this copy failed or its node died.
    healthy: bool = True


@dataclass
class FailoverRecord:
    """What one completed failover did."""

    group_name: str
    from_node: str
    to_node: str
    old_reference: RemoteRef
    new_reference: RemoteRef
    epoch: int
    simulated_time: float


@dataclass
class ReplicaGroup:
    """One replicated object: its primary, backups and replication counters."""

    name: str
    class_name: str
    primary_node: str
    primary_ref: RemoteRef
    primary_impl: Any
    sync: str
    readonly: FrozenSet[str]
    backups: Dict[str, ReplicaRecord] = field(default_factory=dict)
    #: Incremented on every failover; lets observers order promotions.
    epoch: int = 0
    #: True when interval mode has unsynchronized writes.
    dirty: bool = False
    #: Mutating operations forwarded to backups (eager mode).
    writes_propagated: int = 0
    #: State snapshots shipped to backups (interval mode, seeding, re-sync).
    snapshots_shipped: int = 0
    #: Forward messages actually sent (eager mode): one per backup per write
    #: outside a batch, one per backup per *dispatched batch* inside one.
    forward_messages: int = 0
    #: Writes deferred during the current batch dispatch (eager mode).
    pending_ops: List[tuple] = field(default_factory=list)
    #: True while a commit hook is registered for the current batch.  Kept
    #: separate from ``pending_ops`` so a hook that never ran (or failed)
    #: cannot wedge the deferral machinery: the next batch re-arms.
    commit_armed: bool = False
    #: Zero-argument constructor used to build (re-)seeded backup copies.
    factory: Optional[Callable[[], Any]] = None

    def healthy_backups(self) -> List[ReplicaRecord]:
        """The backup records currently believed usable for promotion."""
        return [
            record
            for record in self.backups.values()
            if record.healthy and record.endpoint_ref is not None
        ]


class ReplicatedObject:
    """The primary-side wrapper exported in place of the implementation.

    Application calls dispatch through it transparently: the member runs on
    the primary implementation first, and — when the group synchronizes
    eagerly and the member is not declared ``readonly`` — the same call is
    then forwarded to every live backup before the result is returned, so an
    acknowledged write is never lost by a failover.  In interval mode the
    group is merely marked dirty and the event-queue sync loop ships a state
    snapshot later.
    """

    def __init__(self, manager: "ReplicaManager", group: ReplicaGroup) -> None:
        self._manager = manager
        self._group = group

    @property
    def _repro_cache_target(self) -> Any:
        """The real implementation, for cacheability metadata lookups.

        The owning address space reads ``@cacheable`` markers off this
        instead of the wrapper type, so reads of a replicated object do not
        spuriously invalidate subscriber caches.
        """
        return self._group.primary_impl

    def __getattr__(self, member: str) -> Callable:
        if member.startswith("_"):
            raise AttributeError(member)

        def call(*args: Any, **kwargs: Any) -> Any:
            result = getattr(self._group.primary_impl, member)(*args, **kwargs)
            if member not in self._group.readonly:
                self._manager._after_write(self._group, member, args, kwargs)
            return result

        call.__name__ = member
        return call


class ReplicaManager:
    """Creates, synchronizes and fails over primary/backup replica groups.

    The manager is the control plane of the replication subsystem: it places
    backup copies on distinct nodes, keeps them in sync (eagerly or on a
    simulated-time interval), listens to a heartbeat detector, and promotes
    backups when primaries die — rebinding names and publishing
    :class:`~repro.runtime.remote_ref.RemoteRef` redirects that the
    fault-tolerance and pipelining layers use to re-route in-flight traffic.

    Parameters
    ----------
    cluster:
        The :class:`~repro.runtime.cluster.Cluster` hosting the replicas.
    application:
        Optional transformed application, enabling accessor-based state
        capture for transformed classes.
    detector:
        Optional :class:`~repro.network.heartbeat.HeartbeatDetector`; when
        given, the manager subscribes to its failure/recovery declarations.
    sync:
        Default synchronization mode for new groups: ``"eager"`` forwards
        every mutating call as it happens; ``"interval"`` ships state
        snapshots every ``sync_interval`` simulated seconds.
    sync_interval:
        Period of the interval-mode sync loop, in simulated seconds.
    transport:
        Transport used for replication traffic (``None`` = space default).
    """

    def __init__(
        self,
        cluster,
        *,
        application: Any = None,
        detector: Any = None,
        sync: str = "eager",
        sync_interval: float = 0.05,
        transport: Optional[str] = None,
    ) -> None:
        if sync not in SYNC_MODES:
            raise ReplicationError(f"unknown sync mode {sync!r} (use one of {SYNC_MODES})")
        if sync_interval <= 0:
            raise ReplicationError("sync_interval must be positive")
        self.cluster = cluster
        self.application = application
        self.detector = detector
        self.sync = sync
        self.sync_interval = sync_interval
        self.transport = transport
        self.running = True
        self._groups: Dict[str, ReplicaGroup] = {}
        self._by_primary_ref: Dict[RemoteRef, ReplicaGroup] = {}
        self._redirects: Dict[RemoteRef, RemoteRef] = {}
        #: Every completed failover, in promotion order.
        self.failovers: List[FailoverRecord] = []
        if detector is not None:
            detector.on_failure(self.handle_node_down)
            detector.on_recovery(self.handle_node_recovered)

    # ------------------------------------------------------------------
    # group creation
    # ------------------------------------------------------------------

    def replicate(
        self,
        impl: Any,
        *,
        name: str,
        primary_node: str,
        backup_nodes: Sequence[str],
        readonly: Sequence[str] = (),
        sync: Optional[str] = None,
        factory: Optional[Callable[[], Any]] = None,
    ) -> ReplicaGroup:
        """Create a replica group for ``impl`` and return it.

        The implementation is exported from ``primary_node`` behind a
        :class:`ReplicatedObject` wrapper and bound to ``name`` in the
        cluster's naming service.  One backup copy (built by ``factory``,
        default: the implementation's class with no arguments) is seeded on
        each of ``backup_nodes`` by shipping a state snapshot over the
        network.  ``readonly`` names members that never mutate state and are
        therefore not forwarded to backups.
        """
        if name in self._groups:
            raise ReplicationError(f"replica group {name!r} already exists")
        mode = sync if sync is not None else self.sync
        if mode not in SYNC_MODES:
            raise ReplicationError(f"unknown sync mode {mode!r} (use one of {SYNC_MODES})")
        backup_nodes = list(backup_nodes)
        if not backup_nodes:
            raise ReplicationError(f"replica group {name!r} needs at least one backup node")
        if primary_node in backup_nodes:
            raise ReplicationError("backups must live on nodes distinct from the primary")
        if len(set(backup_nodes)) != len(backup_nodes):
            raise ReplicationError("backup nodes must be distinct")

        primary_space = self.cluster.space(primary_node)
        interface_name = getattr(
            type(impl), "_repro_interface_name", type(impl).__name__
        )
        group = ReplicaGroup(
            name=name,
            class_name=type(impl).__name__,
            primary_node=primary_node,
            primary_ref=None,  # type: ignore[arg-type] - set right below
            primary_impl=impl,
            sync=mode,
            readonly=frozenset(readonly),
        )
        wrapper = ReplicatedObject(self, group)
        group.primary_ref = primary_space.export(wrapper, interface_name=interface_name)
        group.factory = factory if factory is not None else self._default_factory(impl)

        state = snapshot_state(impl, self.application)
        for node_id in backup_nodes:
            record = self._seed_backup(group, node_id, group.factory, state)
            group.backups[node_id] = record

        self._groups[name] = group
        self._by_primary_ref[group.primary_ref] = group
        self.cluster.naming.rebind(name, group.primary_ref)
        if mode == "interval":
            self._schedule_sync(group)
        return group

    def _default_factory(self, impl: Any) -> Callable[[], Any]:
        """A zero-argument constructor for backup copies of ``impl``."""
        class_name = getattr(type(impl), "_repro_class_name", None)
        if (
            self.application is not None
            and class_name is not None
            and class_name in self.application.registry.class_names()
        ):
            return self.application.artifacts(class_name).local_cls
        return type(impl)

    def _seed_backup(
        self,
        group: ReplicaGroup,
        node_id: str,
        make_copy: Callable[[], Any],
        state: dict,
    ) -> ReplicaRecord:
        """Create, export and state-sync one backup copy on ``node_id``."""
        copy = make_copy()
        endpoint = ReplicaEndpoint(copy, self.application)
        endpoint_ref = self.cluster.space(node_id).export(
            endpoint, interface_name=f"{group.class_name}.replica"
        )
        record = ReplicaRecord(node_id=node_id, endpoint_ref=endpoint_ref, impl=copy)
        try:
            self._primary_space(group).invoke_remote(
                endpoint_ref, "apply_state", (dict(state),), transport=self.transport
            )
            group.snapshots_shipped += 1
        except (NetworkError, RemoteInvocationError):
            record.healthy = False
        return record

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def group(self, name: str) -> ReplicaGroup:
        """The replica group bound to ``name``."""
        try:
            return self._groups[name]
        except KeyError as exc:
            raise ReplicationError(f"no replica group named {name!r}") from exc

    def groups(self) -> List[ReplicaGroup]:
        """Every replica group this manager maintains."""
        return list(self._groups.values())

    def current_ref(self, reference: RemoteRef) -> RemoteRef:
        """Resolve ``reference`` through the published failover redirects.

        Returns the reference of the most recently promoted primary when the
        given one has been superseded (following chains across repeated
        failovers), or the reference unchanged when no redirect applies.
        """
        seen = set()
        while reference in self._redirects and reference not in seen:
            seen.add(reference)
            reference = self._redirects[reference]
        return reference

    def group_for_ref(self, reference: RemoteRef) -> Optional[ReplicaGroup]:
        """The replica group whose (current) primary is ``reference``, if any."""
        return self._by_primary_ref.get(self.current_ref(reference))

    def has_failover_target(self, reference: RemoteRef) -> bool:
        """Whether traffic to ``reference`` can survive its node's death.

        True when a redirect is already published for it, or when it is the
        primary of a group that still has a promotable backup — the signal
        the retry layers use to keep trying instead of surfacing a fatal
        network error.
        """
        if self.current_ref(reference) != reference:
            return True
        group = self._by_primary_ref.get(reference)
        return group is not None and bool(self._promotable(group))

    def suggested_backoff(self) -> float:
        """Simulated seconds a retrier should wait between failover probes."""
        if self.detector is not None:
            return self.detector.interval
        return self.sync_interval

    def await_failover(self, reference: RemoteRef, max_wait: float) -> Optional[RemoteRef]:
        """Pump the event queue until ``reference`` is redirected, or give up.

        Drives the network's event queue (heartbeat rounds included) for at
        most ``max_wait`` simulated seconds.  Returns the promoted reference
        as soon as a redirect for ``reference`` is published, or ``None``
        when the deadline passes first.  Synchronous callers use this to
        ride out the detection window; the pipelined scheduler instead
        requeues with backoff, because it is already running inside the
        event loop.
        """
        events = self.cluster.network.events
        deadline = self.cluster.network.clock.now + max_wait
        while True:
            resolved = self.current_ref(reference)
            if resolved != reference:
                return resolved
            next_time = events.next_fire_time()
            if next_time is None or next_time > deadline:
                return None
            events.run_next()

    # ------------------------------------------------------------------
    # write synchronization
    # ------------------------------------------------------------------

    def _after_write(self, group: ReplicaGroup, member: str, args: tuple, kwargs: dict) -> None:
        """React to one mutating call on the primary (from the wrapper).

        Eager mode forwards the call to every backup — immediately for a
        single invocation, but *deferred and batched* while the primary's
        space is dispatching a batch message: the whole window's writes then
        travel as one ``apply_ops`` message per backup (committed before the
        batch response leaves), cutting the write amplification from one
        message per write to one per dispatched batch.
        """
        if group.sync != "eager":
            group.dirty = True
            return
        space = self._primary_space(group)
        if getattr(space, "in_batch_dispatch", False):
            if not group.commit_armed:
                group.commit_armed = True
                space.on_batch_commit(lambda: self._flush_pending_ops(group))
            group.pending_ops.append((member, list(args), dict(kwargs)))
        else:
            self._propagate_op(group, member, args, kwargs)

    def _propagate_op(self, group: ReplicaGroup, member: str, args: tuple, kwargs: dict) -> None:
        """Forward one mutating call to every live backup (eager mode)."""
        space = self._primary_space(group)
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_op",
                    (member, list(args), dict(kwargs)),
                    transport=self.transport,
                )
                group.writes_propagated += 1
                group.forward_messages += 1
            except (NetworkError, RemoteInvocationError):
                # The forward was lost — or the replay failed on the backup
                # (its state has diverged).  Either way the copy is stale and
                # no longer a promotion candidate until a snapshot re-seeds
                # it; the primary's acknowledged write must not fail.
                record.healthy = False
                self._schedule_reseed(group, record.node_id)

    def _flush_pending_ops(self, group: ReplicaGroup) -> None:
        """Ship the batch-deferred writes: one ``apply_ops`` per live backup."""
        # Disarm first: whatever happens below, the next batch must register
        # a fresh hook rather than silently appending to a dead buffer.
        group.commit_armed = False
        ops, group.pending_ops = group.pending_ops, []
        if not ops:
            return
        space = self._primary_space(group)
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_ops",
                    ([list(op) for op in ops],),
                    transport=self.transport,
                )
                group.writes_propagated += len(ops)
                group.forward_messages += 1
            except (NetworkError, RemoteInvocationError):
                # A lost forward or a failed replay (diverged backup) demotes
                # this copy only; it must not escape the batch-commit hook
                # and fail a batch the primary already executed, nor skip the
                # forwards to the remaining backups.
                record.healthy = False
                self._schedule_reseed(group, record.node_id)

    def sync_now(self, group: ReplicaGroup) -> int:
        """Ship a state snapshot to every live backup; returns copies synced."""
        state = snapshot_state(group.primary_impl, self.application)
        space = self._primary_space(group)
        synced = 0
        for record in group.healthy_backups():
            try:
                space.invoke_remote(
                    record.endpoint_ref,
                    "apply_state",
                    (dict(state),),
                    transport=self.transport,
                )
                group.snapshots_shipped += 1
                synced += 1
            except (NetworkError, RemoteInvocationError):
                # A failed snapshot application must not crash the interval
                # sync tick running on the event queue.
                record.healthy = False
                self._schedule_reseed(group, record.node_id)
        group.dirty = False
        return synced

    def _schedule_sync(self, group: ReplicaGroup) -> None:
        """Run the interval-mode sync loop for ``group`` on the event queue."""

        def tick() -> None:
            if not self.running or self._groups.get(group.name) is not group:
                return
            if group.dirty and not self._node_down(group.primary_node):
                self.sync_now(group)
            self.cluster.network.events.schedule(self.sync_interval, tick)

        self.cluster.network.events.schedule(self.sync_interval, tick)

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------

    def handle_node_down(self, node_id: str, at_time: float = 0.0) -> None:
        """React to a node being declared dead (heartbeat listener).

        Backups hosted there become unusable; every group whose primary
        lived there is failed over to its freshest backup (groups with no
        promotable backup are left as they are — traffic keeps failing until
        the node recovers).
        """
        for group in self._groups.values():
            record = group.backups.get(node_id)
            if record is not None:
                record.healthy = False
        for group in list(self._groups.values()):
            if group.primary_node == node_id and self._promotable(group):
                self.failover(group)

    def handle_node_recovered(self, node_id: str, at_time: float = 0.0) -> None:
        """React to a declared-dead node answering again (heartbeat listener).

        The node's copies are stale (it missed writes while unreachable), so
        every group with a replica slot there is re-seeded with a fresh
        snapshot of the current primary and re-enlisted as a healthy backup —
        which restores redundancy after a failover and makes fail-*back*
        possible on the next crash.
        """
        for group in self._groups.values():
            if group.primary_node == node_id:
                # The primary itself is back (it never failed over, e.g. its
                # backups were down too): restore the redundancy it lost.
                for other, record in list(group.backups.items()):
                    if not record.healthy and not self._node_down(other):
                        self._reenlist(group, other)
                continue
            record = group.backups.get(node_id)
            if record is None or record.healthy:
                continue
            if self._node_down(group.primary_node):
                # Cannot seed from a dead primary; the primary's own recovery
                # (branch above) re-enlists this slot when it returns.
                continue
            self._reenlist(group, node_id)
            refreshed = group.backups.get(node_id)
            if refreshed is not None and not refreshed.healthy:
                self._schedule_reseed(group, node_id)

    def _reenlist(self, group: ReplicaGroup, node_id: str) -> None:
        """Re-seed ``node_id`` as a healthy backup of ``group``."""
        stale = group.backups.get(node_id)
        if stale is not None and stale.endpoint_ref is not None:
            # Retire the stale endpoint so crash/recover cycles do not leak
            # exports (or leave an out-of-date copy answering invocations).
            self.cluster.space(node_id).unexport(stale.endpoint_ref)
        make_copy = group.factory or self._default_factory(group.primary_impl)
        state = snapshot_state(group.primary_impl, self.application)
        group.backups[node_id] = self._seed_backup(group, node_id, make_copy, state)

    def _schedule_reseed(
        self, group: ReplicaGroup, node_id: str, attempt: int = 1, max_attempts: int = 8
    ) -> None:
        """Restore a backup demoted by lost replication traffic.

        A *transient* loss (a dropped forward) demotes the copy even though
        its host node is alive — without this loop the group would silently
        run unprotected forever.  A snapshot re-seed is retried with linear
        backoff while the host stays up; a host that is actually down is
        left to the detector's recovery path (:meth:`handle_node_recovered`).
        """

        def tick() -> None:
            if not self.running or self._groups.get(group.name) is not group:
                return
            record = group.backups.get(node_id)
            if record is None or record.healthy or group.primary_node == node_id:
                return
            if self._node_down(node_id) or self._node_down(group.primary_node):
                # Either side is down right now: keep the retry alive (the
                # detector's recovery declarations also re-enlist, but they
                # can race a seeding failure — see handle_node_recovered).
                if attempt < max_attempts:
                    self._schedule_reseed(group, node_id, attempt + 1, max_attempts)
                return
            self._reenlist(group, node_id)
            refreshed = group.backups.get(node_id)
            if (
                refreshed is not None
                and not refreshed.healthy
                and attempt < max_attempts
            ):
                self._schedule_reseed(group, node_id, attempt + 1, max_attempts)

        self.cluster.network.events.schedule(self.suggested_backoff() * attempt, tick)

    def failover(self, group: ReplicaGroup) -> FailoverRecord:
        """Promote the freshest backup of ``group`` to primary.

        The backup copy becomes the new primary implementation behind a new
        :class:`ReplicatedObject` export on its node, the group's name is
        rebound in the naming service, and a redirect ``old ref → new ref``
        is published for the retry layers.  The dead ex-primary's node stays
        enrolled as an (unhealthy) backup slot so a later recovery re-seeds
        it.  Raises :class:`~repro.errors.ReplicationError` when no healthy
        backup exists.
        """
        candidates = self._promotable(group)
        if not candidates:
            raise ReplicationError(
                f"replica group {group.name!r} has no promotable backup"
            )
        promoted = candidates[0]
        old_node, old_ref = group.primary_node, group.primary_ref
        new_space = self.cluster.space(promoted.node_id)

        # The endpoint retires; its copy becomes the primary implementation.
        new_space.unexport(promoted.endpoint_ref)
        group.primary_impl = promoted.impl
        group.primary_node = promoted.node_id
        group.epoch += 1
        wrapper = ReplicatedObject(self, group)
        group.primary_ref = new_space.export(
            wrapper, interface_name=old_ref.interface_name
        )
        del group.backups[promoted.node_id]
        # Capture the demoted primary's cache subscribers BEFORE retiring
        # its export (unexport purges the coherence bookkeeping), so the
        # promoted node can still flush their leases below.
        stale_subscribers: Dict[str, Optional[float]] = {}
        if old_node in self.cluster:
            stale_subscribers = self.cluster.space(old_node).take_cache_subscribers(
                old_ref.object_id
            )
            # Retire the superseded export: should the dead node come back,
            # its stale wrapper must not keep answering writes at the old
            # reference.
            self.cluster.space(old_node).unexport(old_ref)
        # Keep the dead node enrolled so recovery can re-enlist it.
        group.backups[old_node] = ReplicaRecord(
            node_id=old_node, endpoint_ref=None, impl=None, healthy=False
        )

        self._redirects[old_ref] = group.primary_ref
        self._by_primary_ref.pop(old_ref, None)
        self._by_primary_ref[group.primary_ref] = group
        self.cluster.naming.rebind(group.name, group.primary_ref)
        if stale_subscribers:
            # Flush cache leases held against the demoted primary: it can no
            # longer invalidate anyone, so the *promoted* node sends the
            # invalidation for the old reference — readers drop their entries
            # immediately rather than serving them until the lease runs out.
            # (Entry keys also re-home naturally: the promoted primary is a
            # fresh export, so post-failover reads miss and re-fill.)
            new_space.send_cache_invalidations(
                [old_ref.object_id], list(stale_subscribers)
            )

        record = FailoverRecord(
            group_name=group.name,
            from_node=old_node,
            to_node=group.primary_node,
            old_reference=old_ref,
            new_reference=group.primary_ref,
            epoch=group.epoch,
            simulated_time=self.cluster.network.clock.now,
        )
        self.failovers.append(record)
        return record

    # ------------------------------------------------------------------

    def dismantle(self, group: ReplicaGroup) -> None:
        """Tear one replica group fully down (the reverse of :meth:`replicate`).

        The primary wrapper and every backup endpoint are unexported and the
        group is forgotten (redirect chains into it included) — dismantling a
        session must leave no exports or manager state behind.  The group's
        well-known name is the caller's to unbind (the manager does not know
        whether anyone else rebound it).  Idempotent per group.
        """
        if self._groups.get(group.name) is not group:
            return
        if group.primary_node in self.cluster:
            self.cluster.space(group.primary_node).unexport(group.primary_ref)
        for record in group.backups.values():
            if record.endpoint_ref is not None and record.node_id in self.cluster:
                self.cluster.space(record.node_id).unexport(record.endpoint_ref)
        del self._groups[group.name]
        self._by_primary_ref.pop(group.primary_ref, None)
        self._redirects = {
            old: new
            for old, new in self._redirects.items()
            if new != group.primary_ref
        }

    def stop(self) -> None:
        """Stop the interval sync loops (pending ticks become no-ops)."""
        self.running = False

    def detach(self) -> None:
        """Unsubscribe this manager's listeners from its heartbeat detector.

        Detector instances can outlive the manager (and the session that
        created it); without detaching, every discarded manager would keep
        reacting — and keep being referenced — forever.  Idempotent, and a
        no-op for managers built without a detector.
        """
        if self.detector is not None:
            self.detector.off_failure(self.handle_node_down)
            self.detector.off_recovery(self.handle_node_recovered)

    def _primary_space(self, group: ReplicaGroup):
        return self.cluster.space(group.primary_node)

    def _promotable(self, group: ReplicaGroup) -> List[ReplicaRecord]:
        """Backups :meth:`failover` would actually promote: healthy AND up.

        The single source of truth for "can this group fail over" — the
        heartbeat listener must apply exactly this filter before calling
        :meth:`failover`, or a group whose every backup host is also dead
        would raise out of the listener and crash the event pump.
        """
        return [
            record
            for record in group.healthy_backups()
            if not self._node_down(record.node_id)
        ]

    def _node_down(self, node_id: str) -> bool:
        return self.cluster.network.failures.is_node_down(node_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReplicaManager groups={sorted(self._groups)} "
            f"failovers={len(self.failovers)}>"
        )
