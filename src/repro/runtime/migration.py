"""Object migration between address spaces.

Migration captures the state of a transformed object through its interface
accessors (every field is a property, so the full state is reachable without
any knowledge of the implementation), re-creates the object in the target
address space, and re-points the naming service and any rebindable handles at
the new location.  It is the state-moving half of dynamic redistribution; the
handle-rebinding half lives in :mod:`repro.runtime.redistribution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro._errors import MigrationError
from repro.core.metaobject import metaobject_of
from repro.runtime.address_space import AddressSpace
from repro.runtime.remote_ref import RemoteRef, reference_of


@dataclass
class MigrationRecord:
    """What a completed migration produced."""

    class_name: str
    old_reference: Optional[RemoteRef]
    new_reference: RemoteRef
    source_node: Optional[str]
    target_node: str
    fields_copied: int


def capture_state(application, class_name: str, source: Any) -> dict:
    """Read every field of ``source`` through its getter accessors."""
    artifacts = application.artifacts(class_name)
    state: dict[str, Any] = {}
    for signature in artifacts.instance_interface.accessors():
        if signature.accessor_kind != "get":
            continue
        getter = getattr(source, signature.name)
        state[signature.accessor_for] = getter()
    return state


def restore_state(application, class_name: str, target: Any, state: dict) -> int:
    """Write a captured state dict into ``target`` through its setters."""
    artifacts = application.artifacts(class_name)
    written = 0
    for signature in artifacts.instance_interface.accessors():
        if signature.accessor_kind != "set":
            continue
        field_name = signature.accessor_for
        if field_name in state:
            setter = getattr(target, signature.name)
            setter(state[field_name])
            written += 1
    return written


def reachable_handles(application, root: Any, max_depth: int = 10) -> list[Any]:
    """Rebindable handles reachable from ``root`` through interface accessors.

    Performs a breadth-first walk over getter values (descending into lists,
    tuples and dict values).  Only redirector handles are returned — they are
    the references that can be transparently re-pointed when a whole object
    graph is migrated together.
    """

    seen: set[int] = set()
    found: list[Any] = []
    frontier: list[tuple[Any, int]] = [(root, 0)]
    while frontier:
        current, depth = frontier.pop(0)
        if depth > max_depth or id(current) in seen:
            continue
        seen.add(id(current))
        if metaobject_of(current) is not None and current is not root:
            found.append(current)
        class_name = getattr(type(current), "_repro_class_name", None)
        if class_name is None and metaobject_of(current) is not None:
            class_name = getattr(type(metaobject_of(current).target), "_repro_class_name", None)
        if class_name is None or class_name not in application.registry.class_names():
            continue
        artifacts = application.artifacts(class_name)
        for signature in artifacts.instance_interface.accessors():
            if signature.accessor_kind != "get":
                continue
            value = getattr(current, signature.name)()
            for candidate in _iter_candidates(value):
                frontier.append((candidate, depth + 1))
    return found


def _iter_candidates(value: Any):
    if isinstance(value, (list, tuple, set, frozenset)):
        for item in value:
            yield from _iter_candidates(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _iter_candidates(item)
    elif value is not None and not isinstance(value, (bool, int, float, str, bytes)):
        yield value


class ObjectMigrator:
    """Moves transformed objects between the address spaces of a cluster."""

    def __init__(self, application, cluster) -> None:
        self.application = application
        self.cluster = cluster

    # ------------------------------------------------------------------

    def migrate(self, subject: Any, target_node: str) -> MigrationRecord:
        """Migrate ``subject`` (a handle, proxy or local implementation).

        The object's state is copied into a fresh local implementation hosted
        by ``target_node``; when ``subject`` is a rebindable handle it is
        rebound to a proxy for the new location so every reference held
        through the handle observes the move transparently.
        """

        class_name = getattr(type(subject), "_repro_class_name", None)
        meta = metaobject_of(subject)
        if class_name is None and meta is not None:
            class_name = getattr(type(meta.target), "_repro_class_name", None)
        if class_name is None:
            raise MigrationError(
                f"cannot migrate {type(subject).__name__}: not a transformed object"
            )

        target_space: AddressSpace = self.cluster.space(target_node)
        source_object = meta.target if meta is not None else subject
        old_reference = reference_of(subject)
        if old_reference is None:
            # A local implementation may have been exported directly (e.g. to
            # publish it in the naming service); find that export so it can be
            # retired and its naming entries re-pointed.
            for space in self.cluster.spaces():
                exported = space.reference_for(source_object)
                if exported is not None:
                    old_reference = exported
                    break
        source_node = old_reference.node_id if old_reference is not None else None
        if source_node == target_node:
            raise MigrationError(
                f"object already resides on node {target_node!r}"
            )

        state = capture_state(self.application, class_name, source_object)

        artifacts = self.application.artifacts(class_name)
        replacement = artifacts.local_cls()
        fields = restore_state(self.application, class_name, replacement, state)
        new_reference = target_space.export(replacement)

        # Retire the old exported object, if there was one.
        if old_reference is not None and old_reference.node_id in self.cluster.node_ids():
            self.cluster.space(old_reference.node_id).unexport(old_reference)

        # Rebind the handle (if any) so existing references follow the object.
        if meta is not None:
            caller_space = self.application.current_space or target_space
            if caller_space.node_id == target_node:
                meta.rebind(replacement, "local", node_id=target_node)
            else:
                proxy = self.application.proxy_for_ref(new_reference, caller_space)
                meta.rebind(proxy, "remote", node_id=target_node)

        # Follow the move in the naming service.
        naming = getattr(self.cluster, "naming", None)
        if naming is not None and old_reference is not None:
            for name in list(naming.names()):
                if naming.maybe_lookup(name) == old_reference:
                    naming.rebind(name, new_reference)

        return MigrationRecord(
            class_name=class_name,
            old_reference=old_reference,
            new_reference=new_reference,
            source_node=source_node,
            target_node=target_node,
            fields_copied=fields,
        )

    # ------------------------------------------------------------------

    def migrate_graph(
        self, root: Any, target_node: str, *, max_depth: int = 10
    ) -> list[MigrationRecord]:
        """Migrate ``root`` together with every handle reachable from it.

        Co-migration avoids splitting a tightly-coupled object graph across
        address spaces: the root and all rebindable handles found by
        :func:`reachable_handles` end up on ``target_node``.  Objects already
        resident there are skipped.  Returns one record per object moved.
        """

        subjects = [root] + reachable_handles(self.application, root, max_depth=max_depth)
        records: list[MigrationRecord] = []
        for subject in subjects:
            try:
                records.append(self.migrate(subject, target_node))
            except MigrationError:
                # Already on the target node (or not migratable): leave it be.
                continue
        return records
