"""The distributed object layer: address spaces, references, migration."""

from repro.runtime.address_space import AddressSpace
from repro.runtime.batching import BatchResult, BatchingProxy, PendingCall
from repro.runtime.cluster import (
    Cluster,
    default_transport_registry,
    lan_cluster,
    single_node_cluster,
)
from repro.runtime.faulttolerance import (
    NO_RETRY,
    FailureLog,
    FailureObservingInterceptor,
    FaultTolerantInvoker,
    RetryPolicy,
    guard_handle,
)
from repro.runtime.invocation import (
    InvocationBatch,
    InvocationBatchResponse,
    InvocationRequest,
    InvocationResponse,
)
from repro.runtime.migration import MigrationRecord, ObjectMigrator, capture_state, restore_state
from repro.runtime.naming import NamingService
from repro.runtime.pipelining import InvocationFuture, PipelineScheduler
from repro.runtime.redistribution import BoundaryChange, DistributionController
from repro.runtime.remote_ref import ObjectIdAllocator, RemoteRef, reference_of
from repro.runtime.replication import (
    FailoverRecord,
    ReplicaGroup,
    ReplicaManager,
    ReplicaRecord,
    ReplicatedObject,
    apply_state,
    snapshot_state,
)
from repro.runtime.serialization import Marshaller

__all__ = [
    "AddressSpace",
    "BatchResult",
    "BatchingProxy",
    "BoundaryChange",
    "Cluster",
    "DistributionController",
    "FailureLog",
    "FailureObservingInterceptor",
    "FaultTolerantInvoker",
    "InvocationBatch",
    "InvocationBatchResponse",
    "InvocationFuture",
    "InvocationRequest",
    "InvocationResponse",
    "Marshaller",
    "MigrationRecord",
    "NO_RETRY",
    "NamingService",
    "ObjectIdAllocator",
    "ObjectMigrator",
    "PendingCall",
    "PipelineScheduler",
    "RemoteRef",
    "ReplicaGroup",
    "ReplicaManager",
    "ReplicaRecord",
    "ReplicatedObject",
    "FailoverRecord",
    "RetryPolicy",
    "guard_handle",
    "apply_state",
    "capture_state",
    "snapshot_state",
    "default_transport_registry",
    "lan_cluster",
    "reference_of",
    "restore_state",
    "single_node_cluster",
]
