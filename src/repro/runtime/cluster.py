"""Clusters: a convenience bundle of address spaces on one simulated network.

A :class:`Cluster` creates the address spaces, installs the same transport
registry on each of them, shares a naming service and exposes the pieces the
benchmarks need (clock, metrics).  It is what a transformed application binds
to via :meth:`~repro.core.transformer.TransformedApplication.deploy`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

from repro.network.clock import SimClock
from repro.network.failures import FailureModel
from repro.network.metrics import NetworkMetrics
from repro.network.simnet import LinkConfig, ServicePool, SimulatedNetwork
from repro.runtime.address_space import AddressSpace
from repro.runtime.naming import NamingService
from repro.transports.base import TransportRegistry
from repro.transports.corba import CorbaTransport
from repro.transports.inproc import InProcTransport
from repro.transports.rmi import RmiTransport
from repro.transports.soap import SoapTransport


def default_transport_registry() -> TransportRegistry:
    """All transports shipped with the reproduction."""
    return TransportRegistry(
        [InProcTransport(), RmiTransport(), CorbaTransport(), SoapTransport()]
    )


class Cluster:
    """A set of address spaces connected by one simulated network."""

    def __init__(
        self,
        node_ids: Sequence[str] = ("node-0", "node-1"),
        *,
        network: Optional[SimulatedNetwork] = None,
        link: Optional[LinkConfig] = None,
        failures: Optional[FailureModel] = None,
        transports: Optional[TransportRegistry] = None,
        default_transport: str = "rmi",
    ) -> None:
        if not node_ids:
            raise ValueError("a cluster needs at least one node")
        if network is None:
            network = SimulatedNetwork(
                default_link=link or SimulatedNetwork().default_link,
                failures=failures,
            )
        self.network = network
        self.transports = transports or default_transport_registry()
        self.naming = NamingService()
        self._spaces: Dict[str, AddressSpace] = {}
        for node_id in node_ids:
            self._spaces[node_id] = AddressSpace(
                node_id, network, self.transports, default_transport=default_transport
            )
        self._default_node_id = node_ids[0]

    # ------------------------------------------------------------------

    @property
    def default_node_id(self) -> str:
        return self._default_node_id

    @property
    def clock(self) -> SimClock:
        return self.network.clock

    @property
    def metrics(self) -> NetworkMetrics:
        return self.network.metrics

    def space(self, node_id: str) -> AddressSpace:
        try:
            return self._spaces[node_id]
        except KeyError as exc:
            raise KeyError(f"cluster has no node {node_id!r}") from exc

    def spaces(self) -> Iterable[AddressSpace]:
        return list(self._spaces.values())

    def node_ids(self) -> list[str]:
        return list(self._spaces)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._spaces

    def __len__(self) -> int:
        return len(self._spaces)

    def set_service_pool(
        self,
        node_id: str,
        pool: Optional[ServicePool] = None,
        *,
        workers: int = 1,
        queue_limit: int = 16,
        service_time: float = 0.0,
    ) -> Optional[ServicePool]:
        """Bound ``node_id``'s serving capacity and return the pool.

        Pass a ready-made :class:`~repro.network.simnet.ServicePool`, or let
        the keyword arguments build one (``workers`` parallel servers, an
        admission queue of ``queue_limit``, each request holding a worker for
        ``service_time`` simulated seconds).  ``pool=None`` with default
        keywords still installs a fresh pool; call
        ``space(node_id).install_service_pool(None)`` to remove a bound.
        """
        space = self.space(node_id)  # validates the node exists
        if pool is None:
            pool = ServicePool(
                workers=workers, queue_limit=queue_limit, service_time=service_time
            )
        space.install_service_pool(pool)
        return pool

    # ------------------------------------------------------------------

    def add_node(self, node_id: str, default_transport: str = "rmi") -> AddressSpace:
        """Add a node to a running cluster (the environment can grow)."""
        if node_id in self._spaces:
            raise ValueError(f"node {node_id!r} already exists")
        space = AddressSpace(
            node_id, self.network, self.transports, default_transport=default_transport
        )
        self._spaces[node_id] = space
        return space

    def remove_node(self, node_id: str) -> None:
        space = self._spaces.pop(node_id, None)
        if space is not None:
            space.shutdown()

    def shutdown(self) -> None:
        for space in self._spaces.values():
            space.shutdown()
        self._spaces.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Cluster nodes={sorted(self._spaces)}>"


def single_node_cluster(node_id: str = "local") -> Cluster:
    """A cluster with one address space: the single-address-space deployment."""
    return Cluster((node_id,))


def lan_cluster(count: int = 3, prefix: str = "node") -> Cluster:
    """A LAN-like cluster with ``count`` nodes named ``<prefix>-<i>``."""
    return Cluster(tuple(f"{prefix}-{index}" for index in range(count)))
