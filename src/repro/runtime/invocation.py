"""Invocation messages exchanged between address spaces.

A remote method call is represented by an :class:`InvocationRequest` (which
object, which member, which — already marshalled — arguments) and an
:class:`InvocationResponse` (a marshalled result or an error description).
Transports only ever see the dictionary form of these messages, so every
protocol carries exactly the same logical content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional


@dataclass
class InvocationRequest:
    """One remote member invocation, in marshalled (wire-value) form."""

    target_id: str
    interface_name: str
    member: str
    args: list = field(default_factory=list)
    kwargs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "target": self.target_id,
            "interface": self.interface_name,
            "member": self.member,
            "args": list(self.args),
            "kwargs": dict(self.kwargs),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "InvocationRequest":
        return cls(
            target_id=payload.get("target", ""),
            interface_name=payload.get("interface", ""),
            member=payload.get("member", ""),
            args=list(payload.get("args", [])),
            kwargs=dict(payload.get("kwargs", {})),
        )


@dataclass
class InvocationResponse:
    """The outcome of a remote invocation, in marshalled form."""

    result: Any = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.error_type is not None

    def to_dict(self) -> dict:
        if self.is_error:
            return {"error": {"type": self.error_type, "message": self.error_message}}
        return {"result": self.result}

    @classmethod
    def from_dict(cls, payload: dict) -> "InvocationResponse":
        error = payload.get("error")
        if error:
            return cls(
                result=None,
                error_type=error.get("type", "Exception"),
                error_message=error.get("message", ""),
            )
        return cls(result=payload.get("result"))

    @classmethod
    def for_result(cls, result: Any) -> "InvocationResponse":
        return cls(result=result)

    @classmethod
    def for_exception(cls, exc: BaseException) -> "InvocationResponse":
        return cls(result=None, error_type=type(exc).__name__, error_message=str(exc))
