"""Invocation messages exchanged between address spaces.

A remote method call is represented by an :class:`InvocationRequest` (which
object, which member, which — already marshalled — arguments) and an
:class:`InvocationResponse` (a marshalled result or an error description).
N calls travelling together form an :class:`InvocationBatch`, answered by an
:class:`InvocationBatchResponse` that preserves request order and isolates
per-call errors.  Transports only ever see the dictionary form of these
messages, so every protocol carries exactly the same logical content.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro._errors import TransportError


@dataclass
class InvocationRequest:
    """One remote member invocation, in marshalled (wire-value) form.

    ``context`` carries the call's control fields (call id, tenant,
    deadline — see :class:`~repro.api.middleware.CallContext`); it is
    serialized as a ``ctx`` key only when non-empty, so requests issued
    without middleware stay byte-identical to the pre-middleware wire
    format.
    """

    target_id: str
    interface_name: str
    member: str
    args: list = field(default_factory=list)
    kwargs: dict = field(default_factory=dict)
    context: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        payload = {
            "target": self.target_id,
            "interface": self.interface_name,
            "member": self.member,
            "args": list(self.args),
            "kwargs": dict(self.kwargs),
        }
        if self.context:
            payload["ctx"] = dict(self.context)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "InvocationRequest":
        return cls(
            target_id=payload.get("target", ""),
            interface_name=payload.get("interface", ""),
            member=payload.get("member", ""),
            args=list(payload.get("args", [])),
            kwargs=dict(payload.get("kwargs", {})),
            context=dict(payload.get("ctx") or {}),
        )


@dataclass
class InvocationResponse:
    """The outcome of a remote invocation, in marshalled form."""

    result: Any = None
    error_type: Optional[str] = None
    error_message: Optional[str] = None

    @property
    def is_error(self) -> bool:
        return self.error_type is not None

    def to_dict(self) -> dict:
        if self.is_error:
            return {"error": {"type": self.error_type, "message": self.error_message}}
        return {"result": self.result}

    @classmethod
    def from_dict(cls, payload: dict) -> "InvocationResponse":
        if not isinstance(payload, dict):
            raise TransportError(
                f"invocation response must be a dictionary, got {type(payload).__name__}"
            )
        error = payload.get("error")
        if error is not None:
            if not isinstance(error, dict):
                raise TransportError(
                    f"invocation error payload must be a dictionary, got {type(error).__name__}"
                )
            return cls(
                result=None,
                error_type=str(error.get("type", "Exception")),
                error_message=str(error.get("message", "")),
            )
        return cls(result=payload.get("result"))

    @classmethod
    def for_result(cls, result: Any) -> "InvocationResponse":
        return cls(result=result)

    @classmethod
    def for_exception(cls, exc: BaseException) -> "InvocationResponse":
        return cls(result=None, error_type=type(exc).__name__, error_message=str(exc))


@dataclass
class InvocationBatch:
    """An ordered group of invocation requests carried by one wire message.

    A batch amortises per-message transport cost: the sending space frames
    and ships one message for N calls, and the simulated network charges one
    round trip instead of N.  All requests in a batch must target objects in
    the same destination address space.
    """

    requests: List[InvocationRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def to_dicts(self) -> list[dict]:
        return [request.to_dict() for request in self.requests]

    @classmethod
    def from_dicts(cls, payloads: list) -> "InvocationBatch":
        if not isinstance(payloads, (list, tuple)):
            raise TransportError(
                f"invocation batch must be a list, got {type(payloads).__name__}"
            )
        return cls(requests=[InvocationRequest.from_dict(item) for item in payloads])


@dataclass
class InvocationBatchResponse:
    """Per-call outcomes of a batch, in request order.

    A transport-level failure fails the whole batch (the message never makes
    it back), but application errors raised by individual calls are carried
    here per slot, so one failing call does not poison its neighbours.
    """

    responses: List[InvocationResponse] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    @property
    def error_count(self) -> int:
        return sum(1 for response in self.responses if response.is_error)

    def to_dicts(self) -> list[dict]:
        return [response.to_dict() for response in self.responses]

    @classmethod
    def from_dicts(cls, payloads: list) -> "InvocationBatchResponse":
        if not isinstance(payloads, (list, tuple)):
            raise TransportError(
                f"invocation batch response must be a list, got {type(payloads).__name__}"
            )
        return cls(responses=[InvocationResponse.from_dict(item) for item in payloads])
