"""Address spaces: the nodes of the distributed object layer.

An :class:`AddressSpace` is the unit of distribution in the paper: objects
live in exactly one address space, other spaces hold proxies to them, and
"changing applications to span address space boundaries" means placing
objects in different spaces.  Each space owns

* an object table of exported objects (keyed by object identifier),
* a marshaller that converts arguments and results to and from wire values,
* the set of installed transports, and
* a network-facing dispatcher that serves incoming invocation requests by
  invoking the target object and returning the marshalled result.

Address spaces are deliberately unaware of policy and of the transformation:
they host whatever objects the application exports into them.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro._errors import (
    InvocationError,
    NetworkError,
    TransportError,
    UnknownObjectError,
    remote_error,
)
from repro.core.interfaces import cacheable_members
from repro.network.simnet import SimulatedNetwork
from repro.observability.tracing import trace_refs_from_contexts
from repro.runtime.batching import BatchResult
from repro.runtime.invocation import (
    InvocationBatch,
    InvocationBatchResponse,
    InvocationRequest,
    InvocationResponse,
)
from repro.runtime.remote_ref import ObjectIdAllocator, RemoteRef
from repro.runtime.serialization import Marshaller
from repro.transports.base import (
    TransportRegistry,
    attach_invalidations,
    frame_batch_message,
    frame_invalidation,
    frame_invalidation_ack,
    frame_message,
    frame_pong,
    frame_subscription_ack,
    is_invalidation,
    is_ping,
    is_subscription,
    parse_frame,
    parse_heartbeat,
    parse_invalidation_body,
    parse_subscription,
    split_invalidations,
)

#: One call of a batch: (reference, member, positional args, keyword args),
#: optionally extended with a fifth element — the call's wire-context dict
#: (call id, tenant, deadline; see :class:`~repro.api.middleware.CallContext`).
BatchCall = Tuple[RemoteRef, str, tuple, dict]


class AddressSpace:
    """One simulated address space (node) hosting exported objects."""

    def __init__(
        self,
        node_id: str,
        network: SimulatedNetwork,
        transports: TransportRegistry,
        default_transport: str = "rmi",
    ) -> None:
        self.node_id = node_id
        self.network = network
        self.transports = transports
        self.default_transport = default_transport
        self.marshaller = Marshaller(self)
        #: Set by TransformedApplication.bind_runtime; used to build proxies
        #: for references that arrive over the wire.
        self.application: Any = None

        self._objects: Dict[str, Any] = {}
        self._exported_refs: Dict[int, RemoteRef] = {}
        self._allocator = ObjectIdAllocator(node_id)
        self._dispatch_hooks: list[Any] = []
        #: Server-side interceptor chains (see :meth:`use_middleware`),
        #: bracketing every dispatched request in installation order.
        self._middleware_chains: list[Any] = []
        self._batch_scope_depth = 0
        self._batch_commit_hooks: list[Any] = []
        #: Cache-coherence state (server side): object id → {node → lease
        #: expiry in simulated seconds, or None for an unbounded lease}.
        self._cache_subscribers: Dict[str, Dict[str, Optional[float]]] = {}
        #: Cacheable-member sets memoized per implementation type.
        self._cacheable_sets: Dict[type, frozenset] = {}
        #: Client-declared cacheable members per object id (from ``!sub``
        #: frames), honoured in addition to the ``@cacheable`` markers.
        self._cacheable_declared: Dict[str, set] = {}
        #: Mutated-and-subscribed object ids of the message being served.
        self._pending_invalidations: set[str] = set()
        #: Cache-coherence state (client side): listeners fed every ``!inv``
        #: frame (standalone or piggybacked) that reaches this space.
        self._invalidation_listeners: list[Any] = []
        #: Highest replication epoch seen per object id on epoch-stamped
        #: ``!inv`` frames; frames claiming an older epoch are rejected.
        self._invalidation_epoch_floor: Dict[str, int] = {}
        #: ``(trace_id, client_span_id)`` of every traced call dispatched
        #: from the message currently being served — server-side observers
        #: (eager replication forwards) parent their spans here.
        self._message_trace_refs: List[Tuple[str, Optional[str]]] = []

        #: Number of invocation requests served by this space's dispatcher.
        self.invocations_served = 0
        #: Number of remote invocations issued from this space.
        self.invocations_sent = 0
        #: Number of batch messages issued from this space.
        self.batches_sent = 0
        #: Number of batch messages served by this space's dispatcher.
        self.batches_served = 0
        #: Number of heartbeat probes answered by this space.
        self.pings_answered = 0
        #: Batch-commit hooks that raised (isolated; see ``on_batch_commit``).
        self.batch_commit_hook_failures = 0
        #: Cache subscriptions registered with this space (renewals included).
        self.cache_subscriptions = 0
        #: Standalone ``!inv`` frames this space has sent to subscribers.
        self.invalidations_sent = 0
        #: Responses that left this space carrying piggybacked invalidations.
        self.invalidations_piggybacked = 0
        #: Invalidation deliveries applied at this space (as a client).
        self.invalidations_received = 0
        #: Epoch-stamped ``!inv`` frames rejected for claiming an epoch older
        #: than one already seen for the object (fenced ex-primary traffic).
        self.stale_invalidations_rejected = 0
        #: Dispatched ``@cacheable`` calls that rebound instance state on
        #: their target — the runtime complement of lint rule DS102.  Each
        #: offending ``(class, member)`` pair additionally gets a one-shot
        #: :class:`RuntimeWarning`.  Detection compares a shallow
        #: ``__dict__`` snapshot by identity around the call, so attribute
        #: rebinding is caught but in-place container mutation is not —
        #: the static rule covers that half.
        self.cacheable_violations = 0
        self._cacheable_violations_warned: set = set()

        network.register(node_id, self._handle_message)

    # ------------------------------------------------------------------
    # Serving capacity
    # ------------------------------------------------------------------

    def install_service_pool(self, pool: Any) -> None:
        """Bound this node's request-serving capacity.

        Installs a :class:`~repro.network.simnet.ServicePool` on the
        network for this node: delivered messages wait for one of the
        pool's workers (holding it for the pool's service time) and are
        refused with :class:`~repro.api.errors.AdmissionError` once the pool
        saturates.  Passing ``None`` removes the bound and restores the
        idealised unbounded-concurrency model.
        """
        self.network.set_service_pool(self.node_id, pool)

    @property
    def service_pool(self) -> Any:
        """This node's installed service pool, or ``None`` when unbounded."""
        return self.network.service_pool(self.node_id)

    # ------------------------------------------------------------------
    # Object table
    # ------------------------------------------------------------------

    def export(self, implementation: Any, interface_name: Optional[str] = None) -> RemoteRef:
        """Export an object from this space, returning its remote reference.

        Exporting the same object twice returns the same reference.
        """

        existing = self._exported_refs.get(id(implementation))
        if existing is not None:
            return existing
        if interface_name is None:
            interface_name = getattr(type(implementation), "_repro_interface_name", None)
            if interface_name is None:
                interface_name = type(implementation).__name__
        object_id = self._allocator.allocate()
        reference = RemoteRef(object_id, self.node_id, interface_name)
        self._objects[object_id] = implementation
        self._exported_refs[id(implementation)] = reference
        return reference

    def unexport(self, reference: RemoteRef) -> None:
        implementation = self._objects.pop(reference.object_id, None)
        if implementation is not None:
            self._exported_refs.pop(id(implementation), None)
        # A retired export needs no coherence bookkeeping: long-lived spaces
        # serving many short-lived caching clients must not accumulate
        # subscriber tables or declared-cacheable sets per dead object id.
        # (Failover captures the dead primary's subscribers *before* its
        # unexport, so the promoted node can still flush them.)
        self._cache_subscribers.pop(reference.object_id, None)
        self._cacheable_declared.pop(reference.object_id, None)

    def lookup_local_object(self, object_id: str) -> Any:
        try:
            return self._objects[object_id]
        except KeyError as exc:
            raise UnknownObjectError(
                f"object {object_id!r} is not exported by node {self.node_id!r}"
            ) from exc

    def is_exported(self, implementation: Any) -> bool:
        return id(implementation) in self._exported_refs

    def reference_for(self, implementation: Any) -> Optional[RemoteRef]:
        return self._exported_refs.get(id(implementation))

    def exported_objects(self) -> Dict[str, Any]:
        return dict(self._objects)

    def object_count(self) -> int:
        return len(self._objects)

    # ------------------------------------------------------------------
    # Dispatch hooks (used by the application to track the executing node)
    # ------------------------------------------------------------------

    def add_dispatch_hook(self, hook: Any) -> None:
        if hook not in self._dispatch_hooks:
            self._dispatch_hooks.append(hook)

    def remove_dispatch_hook(self, hook: Any) -> None:
        if hook in self._dispatch_hooks:
            self._dispatch_hooks.remove(hook)

    # ------------------------------------------------------------------
    # Server-side middleware (see repro.api.middleware)
    # ------------------------------------------------------------------

    def use_middleware(self, chain: Any) -> Any:
        """Install an interceptor chain around every request this space serves.

        ``chain`` is an :class:`~repro.api.middleware.InterceptorChain` (or a
        sequence of interceptors, wrapped into one).  The chain runs inside
        dispatch — after the request is decoded, before/after the target
        method — and is batch-aware: one framed batch message brackets its N
        calls individually.  A ``begin`` rejection (deadline expired, tenant
        over quota) aborts the call before it executes and travels back as a
        typed error response.  Several chains may be installed (e.g. by
        different sessions deploying onto the same node); they nest in
        installation order.  Returns the installed chain (the handle for
        :meth:`remove_middleware`).

        The same chain *instance* may be installed on several spaces — a
        replica group's primary and backups share interceptor state that
        way, so a failover does not reset rate-limit buckets or metrics.
        """
        from repro.api.middleware import Interceptor, InterceptorChain

        if isinstance(chain, (list, tuple)):
            chain = InterceptorChain(chain)
        elif isinstance(chain, Interceptor):
            chain = InterceptorChain((chain,))
        if chain not in self._middleware_chains:
            self._middleware_chains.append(chain)
        return chain

    def remove_middleware(self, chain: Any) -> None:
        """Uninstall a chain installed by :meth:`use_middleware` (idempotent)."""
        if chain in self._middleware_chains:
            self._middleware_chains.remove(chain)

    def middleware_chain_count(self) -> int:
        """How many server-side chains are installed (leak checks)."""
        return len(self._middleware_chains)

    # ------------------------------------------------------------------
    # Batch-dispatch scope (amortisation hooks for server-side observers)
    # ------------------------------------------------------------------

    @property
    def in_batch_dispatch(self) -> bool:
        """True while this space is executing the calls of one batch message.

        Server-side observers — most importantly eager replication's write
        forwarding — use this to amortise their own per-call traffic: work
        deferred through :meth:`on_batch_commit` runs once per dispatched
        batch instead of once per call.
        """
        return self._batch_scope_depth > 0

    def on_batch_commit(self, hook: Any) -> None:
        """Run ``hook()`` once when the current batch dispatch completes.

        Hooks are one-shot and fire *before* the batch response leaves the
        node, so an acknowledged batch has observed every commit-time effect
        (e.g. its writes were forwarded to replicas).  Batch-scope hooks run
        isolated from one another: one raising hook neither skips the
        remaining hooks nor fails the already-executed batch (the failure is
        counted in ``batch_commit_hook_failures``) — hooks with real failure
        modes, like replication forwards, handle them internally.  Outside a
        batch dispatch the hook runs immediately and synchronously in the
        registering caller, so an error propagates to that caller (there is
        no executed batch to protect, and no counter is touched).
        """
        if self.in_batch_dispatch:
            self._batch_commit_hooks.append(hook)
        else:
            hook()

    def _enter_batch_scope(self) -> None:
        self._batch_scope_depth += 1

    def _exit_batch_scope(self) -> None:
        self._batch_scope_depth -= 1
        if self._batch_scope_depth == 0 and self._batch_commit_hooks:
            hooks, self._batch_commit_hooks = self._batch_commit_hooks, []
            for hook in hooks:
                try:
                    hook()
                except Exception:  # noqa: BLE001 - isolation, see on_batch_commit
                    # The batch's calls already executed on this node; a
                    # failing observer must not turn the executed batch into
                    # a transport error (an at-least-once retry would then
                    # double-apply the writes) nor starve the other hooks.
                    self.batch_commit_hook_failures += 1

    # ------------------------------------------------------------------
    # Cache coherence (see repro.runtime.caching)
    # ------------------------------------------------------------------

    def add_invalidation_listener(self, listener: Any) -> None:
        """Feed ``listener(object_ids)`` every invalidation reaching this space.

        Registered by the client-side :class:`~repro.runtime.caching.CacheManager`;
        both standalone ``!inv`` frames and invalidations piggybacked on
        response messages are delivered.
        """
        if listener not in self._invalidation_listeners:
            self._invalidation_listeners.append(listener)

    def remove_invalidation_listener(self, listener: Any) -> None:
        """Detach a listener registered with :meth:`add_invalidation_listener`."""
        if listener in self._invalidation_listeners:
            self._invalidation_listeners.remove(listener)

    def invalidation_listener_count(self) -> int:
        """How many invalidation listeners are registered (leak checks)."""
        return len(self._invalidation_listeners)

    def _deliver_invalidations(self, object_ids: Sequence[str]) -> None:
        """Hand one invalidation delivery to every registered listener."""
        if not object_ids:
            return
        self.invalidations_received += 1
        for listener in list(self._invalidation_listeners):
            listener(list(object_ids))

    def register_cache_subscriber(
        self, object_id: str, node_id: str, expiry: Optional[float] = None
    ) -> None:
        """Record one client node's interest in ``object_id``'s invalidations.

        ``expiry`` bounds the subscription in simulated seconds (``None``
        keeps it until the next invalidation).  Subscriptions are one-shot:
        sending (or piggybacking) an invalidation drops the subscriber, and
        the client re-subscribes on its next cache fill.  One node may host
        several caching clients, so a re-registration can only *extend* the
        recorded expiry — a short-lease subscriber must not silence the
        invalidations a longer-lease subscriber on the same node relies on.
        """
        subscribers = self._cache_subscribers.setdefault(object_id, {})
        if node_id in subscribers:
            existing = subscribers[node_id]
            if existing is None or (expiry is not None and existing >= expiry):
                expiry = existing
        subscribers[node_id] = expiry
        self.cache_subscriptions += 1

    def cache_subscriber_count(self, object_id: Optional[str] = None) -> int:
        """Live subscriptions for one object (or in total, introspection)."""
        if object_id is not None:
            return len(self._cache_subscribers.get(object_id, {}))
        return sum(len(nodes) for nodes in self._cache_subscribers.values())

    def take_cache_subscribers(self, object_id: str) -> Dict[str, Optional[float]]:
        """Remove and return one object's subscriber table.

        Used by the failover path: the demoted primary's subscriptions are
        handed to the promoted node, which flushes them with an explicit
        invalidation (the dead node can no longer send anything itself).
        """
        return self._cache_subscribers.pop(object_id, {})

    def send_cache_invalidations(
        self,
        object_ids: Sequence[str],
        nodes: Sequence[str],
        epoch: Optional[int] = None,
    ) -> int:
        """Send one ``!inv`` frame for ``object_ids`` to each of ``nodes``.

        Unreachable subscribers are skipped (their caches self-expire or
        re-key); returns how many frames were delivered.  ``epoch`` stamps
        the frame with the sender's replication epoch so recipients can
        reject invalidations minted by a fenced ex-primary.
        """
        payload = frame_invalidation(object_ids, epoch)
        delivered = 0
        for node in sorted(set(nodes)):
            try:
                self.network.send_request(self.node_id, node, payload)
            except NetworkError:
                continue
            self.invalidations_sent += 1
            delivered += 1
        return delivered

    def _cacheable_members_for(self, target: Any) -> frozenset:
        """The target's side-effect-free members, memoized per type.

        Wrappers that interpose on a real implementation (e.g. the
        replication layer's ``ReplicatedObject``) expose it via
        ``_repro_cache_target`` so cacheability is read off the real class.
        """
        unwrapped = getattr(target, "_repro_cache_target", None)
        if unwrapped is not None:
            target = unwrapped
        cls = type(target)
        members = self._cacheable_sets.get(cls)
        if members is None:
            members = cacheable_members(cls)
            self._cacheable_sets[cls] = members
        return members

    def _mutates_subscribed_object(
        self, object_id: str, target: Any, member: str
    ) -> bool:
        """Whether dispatching ``member`` must invalidate subscriber caches.

        Any member not marked cacheable is conservatively a write; objects
        nobody subscribed to need no bookkeeping at all.
        """
        if object_id not in self._cache_subscribers:
            return False
        if member in self._cacheable_members_for(target):
            return False
        declared = self._cacheable_declared.get(object_id)
        return declared is None or member not in declared

    def _broadcast_invalidations(
        self, object_ids: set, exclude: Optional[str] = None
    ) -> set:
        """Invalidate every live subscriber of ``object_ids`` — now.

        One ``!inv`` frame travels per subscriber node (ids coalesced), paid
        on the simulated network *before* the triggering write's response
        leaves.  Expired leases are pruned instead of invalidated, and
        delivered subscriptions are dropped (one-shot).  Subscriptions held
        by ``exclude`` — the node whose request triggered the write — are
        returned instead of messaged, so the caller can piggyback them on
        the response for free.

        An *undeliverable* invalidation (the subscriber's node is down, the
        frame was dropped) falls back to the classic lease protocol: the
        write stalls until the lost subscriber's lease has run out, so by
        the time the write is acknowledged the unreachable cache's entries
        have expired on their own.  Unbounded subscriptions (``invalidate``
        mode) have no lease to wait out — that mode's coherence assumes
        deliverable invalidations, which is why ``leases`` is the default.
        """
        now = self.network.clock.now
        per_node: Dict[str, list] = {}
        excluded_ids: set = set()
        for object_id in object_ids:
            subscribers = self._cache_subscribers.get(object_id)
            if not subscribers:
                continue
            for node, expiry in list(subscribers.items()):
                del subscribers[node]
                if expiry is not None and expiry <= now:
                    continue
                if node == exclude:
                    excluded_ids.add(object_id)
                    continue
                ids, expiries = per_node.setdefault(node, [set(), []])
                ids.add(object_id)
                expiries.append(expiry)
            if not subscribers:
                self._cache_subscribers.pop(object_id, None)
        for node in sorted(per_node):
            ids, expiries = per_node[node]
            payload = frame_invalidation(sorted(ids))
            try:
                self.network.send_request(self.node_id, node, payload)
                self.invalidations_sent += 1
            except NetworkError:
                if None not in expiries:
                    # Wait the lost subscriber's leases out before the write
                    # is acknowledged: its entries expire by themselves.
                    latest = max(expiries)
                    if latest > self.network.clock.now:
                        self.network.clock.advance(latest - self.network.clock.now)
        return excluded_ids

    def _handle_subscription(self, payload: bytes) -> bytes:
        """Serve one ``!sub`` frame: record the subscriber, acknowledge."""
        body = parse_subscription(payload)
        lease = body.get("lease")
        expiry = self.network.clock.now + float(lease) if lease is not None else None
        object_id = str(body["object_id"])
        declared = body.get("cacheable") or ()
        if declared:
            self._cacheable_declared.setdefault(object_id, set()).update(
                str(member) for member in declared
            )
        self.register_cache_subscriber(object_id, str(body["node"]), expiry)
        return frame_subscription_ack()

    # ------------------------------------------------------------------
    # Outgoing invocations (the proxy side)
    # ------------------------------------------------------------------

    def invoke_remote(
        self,
        reference: RemoteRef,
        member: str,
        args: tuple = (),
        kwargs: Optional[dict] = None,
        transport: Optional[str] = None,
        context: Optional[dict] = None,
    ) -> Any:
        """Invoke ``member`` on the object behind ``reference``.

        When the reference points at this very space the call short-circuits
        to a direct local invocation — remote and non-remote versions of an
        object are interchangeable, so a proxy that finds itself co-located
        with its target behaves like the local version.  (The short-circuit
        bypasses the wire *and* the serving space's middleware chain — a
        co-located caller is trusted like local code.)

        ``context`` is the call's wire-context dict (call id, tenant,
        deadline); it rides the request as a ``ctx`` control field and is
        rebuilt into the server-side
        :class:`~repro.api.middleware.CallContext`.
        """

        kwargs = kwargs or {}
        if reference.located_on(self.node_id):
            target = self.lookup_local_object(reference.object_id)
            if self._cache_subscribers and self._mutates_subscribed_object(
                reference.object_id, target, member
            ):
                # A co-located writer bypasses the dispatcher, but remote
                # subscribers must still drop their entries before the write
                # returns to the caller.
                try:
                    return getattr(target, member)(*args, **kwargs)
                finally:
                    self._broadcast_invalidations({reference.object_id})
            return getattr(target, member)(*args, **kwargs)

        transport_impl = self.transports.get(transport or self.default_transport)
        wire_args, wire_kwargs = self.marshaller.marshal_arguments(tuple(args), kwargs)
        request = InvocationRequest(
            target_id=reference.object_id,
            interface_name=reference.interface_name,
            member=member,
            args=wire_args,
            kwargs=wire_kwargs,
            context=dict(context or {}),
        )
        body = transport_impl.encode_request(request.to_dict())
        self.network.clock.advance(transport_impl.processing_overhead)
        payload = frame_message(transport_impl.name, body)

        self.invocations_sent += 1
        trace = None
        if self.network.tracer is not None:
            trace = trace_refs_from_contexts((request.context,)) or None
        raw_response = self.network.send_request(
            self.node_id, reference.node_id, payload, trace=trace
        )

        piggybacked, raw_response = split_invalidations(raw_response)
        if piggybacked:
            self._deliver_invalidations(piggybacked)
        response_name, response_body, response_is_batch = parse_frame(raw_response)
        if response_is_batch:
            raise TransportError("batch response received for a single invocation")
        response_transport = self.transports.get(response_name)
        self.network.clock.advance(response_transport.processing_overhead)
        response = InvocationResponse.from_dict(
            response_transport.decode_response(response_body)
        )
        if response.is_error:
            raise remote_error(response.error_type, response.error_message or "")
        return self.marshaller.from_wire(response.result)

    def invoke_remote_many(
        self,
        calls: Sequence[BatchCall],
        transport: Optional[str] = None,
    ) -> List[BatchResult]:
        """Invoke N member calls with one framed network message (a batch).

        Every call must target the same destination space; the batch travels
        as a single wire message, the transport's fixed processing charge and
        the network round trip are paid once, and the responses come back in
        request order.  Application errors raised by individual calls are
        isolated into their :class:`~repro.runtime.batching.BatchResult`
        slots; a transport- or network-level failure raises and fails the
        whole batch atomically.

        When the batch targets this very space it short-circuits to direct
        local invocations (with the same per-call error isolation), mirroring
        :meth:`invoke_remote`.
        """

        normalized = self._normalize_calls(calls)
        if not normalized:
            return []

        destinations = {reference.node_id for reference, _, _, _, _ in normalized}
        if len(destinations) > 1:
            raise InvocationError(
                f"a batch must target one address space, got {sorted(destinations)}"
            )
        destination = destinations.pop()

        if destination == self.node_id:
            return self._invoke_batch_locally(normalized)

        payload = self._encode_batch_payload(normalized, transport)
        self.invocations_sent += len(normalized)
        self.batches_sent += 1
        trace = None
        if self.network.tracer is not None:
            trace = (
                trace_refs_from_contexts(context for *_, context in normalized) or None
            )
        raw_response = self.network.send_request(
            self.node_id, destination, payload, trace=trace
        )
        return self._decode_batch_payload(raw_response, len(normalized))

    def invoke_remote_many_async(
        self,
        calls: Sequence[BatchCall],
        on_results: Any,
        on_error: Any,
        transport: Optional[str] = None,
    ) -> None:
        """Ship a batch asynchronously; the outcome arrives via callback.

        The batch is encoded and posted on the network's event queue, then
        control returns to the caller immediately — several batches (to the
        same node or to different shards) can be in flight at once, and their
        round-trip delays overlap in simulated time.  When the response event
        fires, ``on_results`` receives the same ordered
        :class:`~repro.runtime.batching.BatchResult` list the synchronous
        :meth:`invoke_remote_many` would have returned; a transport- or
        network-level failure of the whole message reaches ``on_error``
        instead.

        This is the completion-callback primitive under
        :class:`~repro.runtime.pipelining.PipelineScheduler`; application
        code normally uses the scheduler's future-based API rather than
        calling this directly.
        """

        normalized = self._normalize_calls(calls)
        if not normalized:
            self.network.events.schedule(0.0, lambda: on_results([]))
            return

        destinations = {reference.node_id for reference, _, _, _, _ in normalized}
        if len(destinations) > 1:
            raise InvocationError(
                f"a batch must target one address space, got {sorted(destinations)}"
            )
        destination = destinations.pop()

        if destination == self.node_id:
            self.network.events.schedule(
                0.0, lambda: on_results(self._invoke_batch_locally(normalized))
            )
            return

        payload = self._encode_batch_payload(normalized, transport)
        self.invocations_sent += len(normalized)
        self.batches_sent += 1

        def complete(raw_response: bytes) -> None:
            try:
                results = self._decode_batch_payload(raw_response, len(normalized))
            except Exception as error:  # noqa: BLE001 - routed to callback
                on_error(error)
                return
            on_results(results)

        trace = None
        if self.network.tracer is not None:
            trace = (
                trace_refs_from_contexts(context for *_, context in normalized) or None
            )
        self.network.post(
            self.node_id, destination, payload, complete, on_error, trace=trace
        )

    @staticmethod
    def _normalize_calls(
        calls: Sequence[BatchCall],
    ) -> list[tuple[RemoteRef, str, tuple, dict, dict]]:
        """Copy batch calls into uniform 5-tuples (context defaulting empty)."""
        normalized: list[tuple[RemoteRef, str, tuple, dict, dict]] = []
        for call in calls:
            reference, member, args, kwargs, *rest = call
            context = rest[0] if rest else None
            normalized.append(
                (reference, member, tuple(args), dict(kwargs or {}), dict(context or {}))
            )
        return normalized

    def _encode_batch_payload(
        self,
        normalized: Sequence[tuple[RemoteRef, str, tuple, dict, dict]],
        transport: Optional[str],
    ) -> bytes:
        """Marshal and frame N calls as one batch message, charging encode cost.

        Accepts 4-tuples too (context defaulting empty) so callers holding
        pre-middleware call shapes keep working without normalizing first.
        """
        transport_impl = self.transports.get(transport or self.default_transport)
        batch = InvocationBatch()
        for reference, member, args, kwargs, context in self._normalize_calls(
            normalized
        ):
            wire_args, wire_kwargs = self.marshaller.marshal_arguments(args, kwargs)
            batch.requests.append(
                InvocationRequest(
                    target_id=reference.object_id,
                    interface_name=reference.interface_name,
                    member=member,
                    args=wire_args,
                    kwargs=wire_kwargs,
                    context=context,
                )
            )
        body = transport_impl.encode_batch_request(batch.to_dicts())
        self.network.clock.advance(transport_impl.batch_processing_overhead(len(batch)))
        return frame_batch_message(transport_impl.name, body)

    def _decode_batch_payload(
        self, raw_response: bytes, expected: int
    ) -> List[BatchResult]:
        """Decode a framed batch response into per-call results, charging decode cost."""
        piggybacked, raw_response = split_invalidations(raw_response)
        if piggybacked:
            # Delivered before the batch's own results are decoded, so reads
            # in the same window re-fill with post-invalidation state.
            self._deliver_invalidations(piggybacked)
        response_name, response_body, response_is_batch = parse_frame(raw_response)
        if not response_is_batch:
            raise TransportError("single response received for a batched invocation")
        response_transport = self.transports.get(response_name)
        self.network.clock.advance(
            response_transport.batch_processing_overhead(expected)
        )
        batch_response = InvocationBatchResponse.from_dicts(
            response_transport.decode_batch_response(response_body)
        )
        if len(batch_response) != expected:
            raise TransportError(
                f"batch response carries {len(batch_response)} results "
                f"for {expected} calls"
            )

        results: list[BatchResult] = []
        for index, response in enumerate(batch_response):
            if response.is_error:
                results.append(
                    BatchResult(
                        index=index,
                        error=remote_error(
                            response.error_type, response.error_message or ""
                        ),
                    )
                )
            else:
                results.append(
                    BatchResult(index=index, value=self.marshaller.from_wire(response.result))
                )
        return results

    def _invoke_batch_locally(
        self, calls: Sequence[tuple[RemoteRef, str, tuple, dict, dict]]
    ) -> List[BatchResult]:
        results: list[BatchResult] = []
        mutated: set[str] = set()
        self._enter_batch_scope()
        try:
            for index, (reference, member, args, kwargs, _context) in enumerate(calls):
                try:
                    target = self.lookup_local_object(reference.object_id)
                    if self._cache_subscribers and self._mutates_subscribed_object(
                        reference.object_id, target, member
                    ):
                        mutated.add(reference.object_id)
                    value = getattr(target, member)(*args, **kwargs)
                except Exception as error:  # noqa: BLE001 - per-call isolation
                    results.append(BatchResult(index=index, error=error))
                else:
                    results.append(BatchResult(index=index, value=value))
        finally:
            self._exit_batch_scope()
            if mutated:
                # A co-located batch has no response message to piggyback on;
                # every subscriber (this node's own caches included) gets the
                # broadcast before the results reach the caller.
                self._broadcast_invalidations(mutated)
        return results

    # ------------------------------------------------------------------
    # Incoming invocations (the dispatcher side)
    # ------------------------------------------------------------------

    def _handle_message(self, source: str, payload: bytes) -> bytes:
        if is_ping(payload):
            # Liveness probes are answered before any transport decoding —
            # a node that can run its handler is alive, whatever protocols
            # it speaks.  They do not count as served invocations.
            self.pings_answered += 1
            return frame_pong(parse_heartbeat(payload))
        if is_subscription(payload):
            # Cache control frames bypass the codecs like heartbeats do.
            return self._handle_subscription(payload)
        if is_invalidation(payload):
            object_ids, epoch = parse_invalidation_body(payload)
            if epoch is not None:
                # Epoch-stamped frames are fenced: an invalidation claiming
                # an epoch older than one already seen for the object came
                # from a superseded primary and must not flush (or, worse,
                # re-prime) the local caches.
                accepted = []
                for object_id in object_ids:
                    floor = self._invalidation_epoch_floor.get(object_id, -1)
                    if epoch < floor:
                        self.stale_invalidations_rejected += 1
                        continue
                    self._invalidation_epoch_floor[object_id] = epoch
                    accepted.append(object_id)
                object_ids = accepted
            self._deliver_invalidations(object_ids)
            return frame_invalidation_ack(len(object_ids))
        # Mutations of subscribed objects collect per served message, so one
        # batch of writes coalesces into one invalidation round.
        outer_pending = self._pending_invalidations
        self._pending_invalidations = set()
        outer_refs = self._message_trace_refs
        self._message_trace_refs = []
        try:
            transport_name, body, is_batch = parse_frame(payload)
            transport = self.transports.get(transport_name)
            if is_batch:
                self.batches_served += 1
                batch = InvocationBatch.from_dicts(transport.decode_batch_request(body))
                self._enter_batch_scope()
                try:
                    responses = InvocationBatchResponse(
                        [self._dispatch(request) for request in batch]
                    )
                finally:
                    # Commit hooks (e.g. batched replication forwards) run
                    # before the response is framed: an acknowledged batch is
                    # durable.
                    self._exit_batch_scope()
                framed = frame_batch_message(
                    transport_name, transport.encode_batch_response(responses.to_dicts())
                )
            else:
                request = InvocationRequest.from_dict(transport.decode_request(body))
                response = self._dispatch(request)
                framed = frame_message(
                    transport_name, transport.encode_response(response.to_dict())
                )
        finally:
            pending, self._pending_invalidations = (
                self._pending_invalidations,
                outer_pending,
            )
            self._message_trace_refs = outer_refs
        if pending:
            # Coherence guarantee: every subscriber's entries drop before the
            # write's response leaves this node.  The requesting client's own
            # invalidation rides the response itself (free), everyone else
            # pays one !inv frame per node.
            piggyback = self._broadcast_invalidations(pending, exclude=source)
            if piggyback:
                framed = attach_invalidations(framed, sorted(piggyback))
                self.invalidations_piggybacked += 1
        return framed

    def _dispatch(self, request: InvocationRequest) -> InvocationResponse:
        self.invocations_served += 1
        for hook in self._dispatch_hooks:
            hook.before_dispatch(self)
        tracer = self.network.tracer
        span = None
        context = request.context
        if tracer is not None and context and "x" in context:
            ref = (context["x"], context.get("p"))
            # Remember which traces this message carried: replication
            # forwards triggered by the call attribute their spans here.
            self._message_trace_refs.append(ref)
            span = tracer.start_span(
                f"{request.interface_name}.{request.member}",
                trace_id=ref[0],
                parent_id=ref[1],
                kind="server",
                ts=self.network.clock.now,
                node=self.node_id,
            )
        try:
            if not self._middleware_chains:
                response, _ = self._serve_request(request)
                return response
            return self._dispatch_intercepted(request, span)
        finally:
            if span is not None:
                tracer.end_span(span, ts=self.network.clock.now)
            for hook in reversed(self._dispatch_hooks):
                hook.after_dispatch(self)

    def _dispatch_intercepted(
        self, request: InvocationRequest, span: Any = None
    ) -> InvocationResponse:
        """Serve one request inside every installed interceptor chain.

        Chains nest in installation order: the first installed chain's
        ``begin`` runs first and its ``end``/``abort`` runs last.  A
        ``begin`` rejection aborts the call before the target method runs
        and travels back as a typed error response; the chains already
        opened are failed in reverse so their brackets stay balanced.
        Batches need no special handling here — the batch loop dispatches
        each framed call individually, so N calls get N brackets.
        """
        from repro.api.middleware import CallContext

        ctx = CallContext.from_wire(
            request.context,
            service=request.interface_name,
            member=request.member,
            args=tuple(request.args),
            kwargs=dict(request.kwargs),
            clock=self.network.clock,
        )
        if span is not None:
            # Server-side interceptor spans nest under the dispatch span,
            # not under the remote client's span.
            ctx.trace = span
            ctx.tracer = self.network.tracer
        brackets = []
        for chain in list(self._middleware_chains):
            try:
                brackets.append(chain.open(ctx))
            except Exception as exc:  # noqa: BLE001 - typed rejection travels back
                for bracket in reversed(brackets):
                    bracket.fail(exc)
                return InvocationResponse.for_exception(exc)
        try:
            response, error = self._serve_request(request)
        except BaseException as exc:
            # Unmarshalling failures propagate (the whole message is bad),
            # but the opened brackets must still settle exactly once.
            for bracket in reversed(brackets):
                bracket.fail(exc)
            raise
        if error is None:
            for bracket in reversed(brackets):
                bracket.close(response.result)
        else:
            for bracket in reversed(brackets):
                bracket.fail(error)
        return response

    def _serve_request(
        self, request: InvocationRequest
    ) -> tuple[InvocationResponse, Optional[BaseException]]:
        """Execute one decoded request against the local object table.

        Returns ``(response, error)`` where ``error`` is the exception
        instance the response describes (``None`` on success) — the
        middleware layer needs the live instance for its ``abort`` hooks,
        not just the marshalled error text.
        """
        try:
            target = self.lookup_local_object(request.target_id)
        except UnknownObjectError as exc:
            return InvocationResponse.for_exception(exc), exc
        try:
            member = getattr(target, request.member)
        except AttributeError:
            error = InvocationError(
                f"object {request.target_id!r} has no member {request.member!r}"
            )
            return InvocationResponse.for_exception(error), error
        if self._cache_subscribers and self._mutates_subscribed_object(
            request.target_id, target, request.member
        ):
            # Recorded before execution: a write that raises may still
            # have mutated state, so subscribers are invalidated either
            # way (conservative, never stale).
            self._pending_invalidations.add(request.target_id)
        args, kwargs = self.marshaller.unmarshal_arguments(
            request.args, request.kwargs
        )
        snapshot = None
        if request.member in self._cacheable_members_for(target):
            snapshot = self._state_snapshot(target)
        try:
            result = member(*args, **kwargs)
        except Exception as exc:  # noqa: BLE001 - application errors travel back
            return InvocationResponse.for_exception(exc), exc
        finally:
            # Checked on the error path too: a @cacheable member that
            # mutated and *then* raised still poisoned the caches.
            if snapshot is not None:
                self._check_cacheable_purity(target, request.member, snapshot)
        try:
            return InvocationResponse.for_result(self.marshaller.to_wire(result)), None
        except Exception as exc:  # noqa: BLE001 - marshalling errors travel back
            return InvocationResponse.for_exception(exc), exc

    @staticmethod
    def _state_snapshot(target: Any) -> Optional[Dict[str, Any]]:
        """A shallow copy of the real implementation's ``__dict__``.

        Wrappers (e.g. the replication layer's ``ReplicatedObject``) are
        unwrapped via ``_repro_cache_target`` so purity is judged on the
        application object itself.  ``None`` when the target keeps no
        instance dict (slots-only objects have nothing to compare).
        """
        real = getattr(target, "_repro_cache_target", target)
        try:
            return dict(vars(real))
        except TypeError:
            return None

    def _check_cacheable_purity(
        self, target: Any, member: str, before: Dict[str, Any]
    ) -> None:
        """Count (and warn once per class/member) a @cacheable mutation.

        Identity comparison only — no application ``__eq__`` runs, so the
        check can never raise out of the dispatch path.
        """
        real = getattr(target, "_repro_cache_target", target)
        try:
            after = vars(real)
        except TypeError:
            return
        if before.keys() == after.keys() and all(
            before[key] is after[key] for key in before
        ):
            return
        self.cacheable_violations += 1
        key = (type(real), member)
        if key not in self._cacheable_violations_warned:
            self._cacheable_violations_warned.add(key)
            warnings.warn(
                f"@cacheable member {type(real).__name__}.{member} mutated "
                "instance state during dispatch — cached results go stale "
                "with no invalidation ever broadcast (lint rule DS102)",
                RuntimeWarning,
                stacklevel=2,
            )

    # ------------------------------------------------------------------

    def shutdown(self) -> None:
        """Detach this space from the network and drop its object table."""
        self.network.unregister(self.node_id)
        self._objects.clear()
        self._exported_refs.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<AddressSpace {self.node_id!r} objects={len(self._objects)}>"
