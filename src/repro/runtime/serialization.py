"""Marshalling of invocation arguments and results.

Primitive values pass by value.  Containers pass by value with their elements
marshalled recursively.  Objects of transformed classes — local
implementations, proxies and rebindable handles alike — pass **by
reference**: the sending side exports the object (or reuses the reference a
proxy already carries) and puts a :class:`~repro.runtime.remote_ref.RemoteRef`
on the wire; the receiving side either resolves the reference to its own
local object (when the reference points home) or manufactures a proxy for it
through the owning application's registry.

This is the mechanism that makes Figure 1 work: when the shared instance of
``C`` becomes remote, the references ``A`` and ``B`` hold are (transparently)
references, not copies.
"""

from __future__ import annotations

import base64
from typing import Any

from repro._errors import SerializationError
from repro.runtime.remote_ref import RemoteRef

_KIND = "__kind__"
_PRIMITIVES = (type(None), bool, int, float, str)


def _is_transformed_instance(value: Any) -> bool:
    """True for generated locals, proxies and redirector handles."""
    return getattr(type(value), "_repro_interface_name", None) is not None


class Marshaller:
    """Converts between live values and wire values for one address space."""

    def __init__(self, space) -> None:
        self._space = space

    # ------------------------------------------------------------------
    # live -> wire
    # ------------------------------------------------------------------

    def to_wire(self, value: Any) -> Any:
        if isinstance(value, _PRIMITIVES):
            return value
        if isinstance(value, bytes):
            return {_KIND: "bytes", "data": base64.b64encode(value).decode("ascii")}
        if isinstance(value, (list, tuple)):
            return {
                _KIND: "list" if isinstance(value, list) else "tuple",
                "items": [self.to_wire(item) for item in value],
            }
        if isinstance(value, (set, frozenset)):
            return {
                _KIND: "set",
                "items": sorted((self.to_wire(item) for item in value), key=repr),
            }
        if isinstance(value, dict):
            items = []
            for key, item in value.items():
                if not isinstance(key, str):
                    raise SerializationError(
                        f"only string keys can be marshalled, got {type(key).__name__}"
                    )
                items.append([key, self.to_wire(item)])
            return {_KIND: "map", "items": items}
        if isinstance(value, RemoteRef):
            return value.to_wire()
        if _is_transformed_instance(value):
            return self._reference_for(value).to_wire()
        raise SerializationError(
            f"cannot marshal value of type {type(value).__name__}: it is neither a "
            "primitive, a container of marshallable values, nor an instance of a "
            "transformed class"
        )

    def _reference_for(self, value: Any) -> RemoteRef:
        role = getattr(type(value), "_repro_role", None)
        if role == "proxy":
            reference = getattr(value, "_ref", None)
            if reference is None:
                raise SerializationError("proxy is not bound to a remote reference")
            return reference
        if role == "redirector":
            meta = getattr(value, "__meta__", None)
            if meta is None:
                raise SerializationError("redirector handle has no metaobject")
            return self._reference_for(meta.target)
        # A local implementation (instance or class singleton): export it from
        # this address space so the receiver can call back into it.
        return self._space.export(value)

    # ------------------------------------------------------------------
    # wire -> live
    # ------------------------------------------------------------------

    def from_wire(self, value: Any) -> Any:
        if isinstance(value, _PRIMITIVES):
            return value
        if isinstance(value, list):
            return [self.from_wire(item) for item in value]
        if isinstance(value, dict):
            kind = value.get(_KIND)
            if kind is None:
                return {key: self.from_wire(item) for key, item in value.items()}
            if kind == "bytes":
                return base64.b64decode(value["data"])
            if kind == "list":
                return [self.from_wire(item) for item in value["items"]]
            if kind == "tuple":
                return tuple(self.from_wire(item) for item in value["items"])
            if kind == "set":
                return {self.from_wire(item) for item in value["items"]}
            if kind == "map":
                return {key: self.from_wire(item) for key, item in value["items"]}
            if kind == RemoteRef._WIRE_KIND:
                return self._resolve_reference(RemoteRef.from_wire(value))
            raise SerializationError(f"unknown wire kind {kind!r}")
        raise SerializationError(
            f"cannot unmarshal wire value of type {type(value).__name__}"
        )

    def _resolve_reference(self, reference: RemoteRef) -> Any:
        if reference.located_on(self._space.node_id):
            return self._space.lookup_local_object(reference.object_id)
        application = getattr(self._space, "application", None)
        if application is None:
            raise SerializationError(
                "cannot build a proxy for an incoming reference: the address space "
                "is not attached to a transformed application"
            )
        return application.proxy_for_ref(reference, self._space)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def marshal_arguments(self, args: tuple, kwargs: dict) -> tuple[list, dict]:
        return (
            [self.to_wire(argument) for argument in args],
            {key: self.to_wire(value) for key, value in kwargs.items()},
        )

    def unmarshal_arguments(self, args: list, kwargs: dict) -> tuple[list, dict]:
        return (
            [self.from_wire(argument) for argument in args],
            {key: self.from_wire(value) for key, value in kwargs.items()},
        )
