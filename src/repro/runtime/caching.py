"""Coherent client-side result caching with leases and write-invalidation.

Every read used to pay a full round trip even though read-mostly services are
the canonical middleware hot path.  This module closes that gap: a
:class:`CacheManager` interposes on remote invocations and serves repeated
calls to :func:`~repro.core.interfaces.cacheable` (side-effect-free) members
from a per-client :class:`ResultCache`, kept coherent by **time-bounded
leases** plus **write-invalidation frames**:

* On a cache fill the client *subscribes* to the owning address space (a
  ``!sub`` control frame, see :mod:`repro.transports.base`), optionally
  bounded by the policy's lease.  Subscribing happens *before* the read
  ships, so no write can slip into the gap unnoticed.
* When any client invokes a mutating member, the owning
  :class:`~repro.runtime.address_space.AddressSpace` broadcasts a ``!inv``
  frame to every live subscriber **before the write is acknowledged** — and
  piggybacks the invalidation on the (batch) response when the writer is
  itself a subscriber.
* Every invalidation bumps a per-object *version*; a fill records the
  version it started from and is discarded if an invalidation arrived while
  its read was in flight.  This closes the read/write race: a response
  computed before a write can never resurrect stale data after it.
* Leases bound staleness in time even without invalidation traffic: an
  entry older than ``lease_ms`` of simulated time is a miss, and the server
  prunes expired subscriptions instead of invalidating them.

Three :class:`CachePolicy` modes trade coherence for traffic:

``"leases"`` (default)
    Subscriptions carry the lease; entries expire after ``lease_ms`` *and*
    are invalidated on writes — full coherence with self-cleaning server
    state.
``"invalidate"``
    Unbounded subscriptions, no time expiry: entries live until a write
    invalidates them.  Full coherence; server subscription state lives until
    the next write.
``"write_through"``
    No subscriptions: the client's own writes invalidate its own entries,
    other clients' writes go unnoticed until the lease expires — bounded
    staleness (≤ ``lease_ms``), zero coherence traffic.

The façade consumes this module through
:class:`~repro.api.policy.ServicePolicy`'s ``cache`` field; generated batch
proxies attach a cache via
:meth:`~repro.runtime.batching.BatchingDispatchMixin.enable_caching`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro._errors import NetworkError, PolicyError
from repro.runtime.pipelining import InvocationFuture
from repro.runtime.remote_ref import RemoteRef
from repro.transports.base import frame_subscription

#: The three cache-coherence modes (see the module docstring).
CACHE_MODES = ("leases", "invalidate", "write_through")


@dataclass(frozen=True)
class CachePolicy:
    """Declarative knobs of one service's client-side result cache.

    An immutable value object carried by
    :class:`~repro.api.policy.ServicePolicy` (``cache=``): ``max_entries``
    bounds the cache's size (LRU eviction), ``lease_ms`` bounds an entry's
    lifetime in *simulated* milliseconds, and ``mode`` picks the coherence
    protocol (``"leases"``, ``"invalidate"`` or ``"write_through"``).
    ``cacheable`` names members that are safe to cache in addition to any
    :func:`~repro.core.interfaces.cacheable`-decorated members of the
    implementation class — useful when attaching to a service deployed by
    another party, where the implementation class is not at hand.
    """

    #: Maximum entries held; least-recently-used entries are evicted beyond.
    max_entries: int = 256
    #: Entry/lease lifetime in simulated milliseconds (ignored by
    #: ``"invalidate"`` mode, which keeps entries until a write).
    lease_ms: float = 50.0
    #: Coherence mode: one of :data:`CACHE_MODES`.
    mode: str = "leases"
    #: Explicitly cacheable member names (unioned with ``@cacheable`` markers).
    cacheable: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.max_entries < 1:
            raise PolicyError("max_entries must be at least 1")
        if self.lease_ms <= 0:
            raise PolicyError("lease_ms must be positive")
        if self.mode not in CACHE_MODES:
            raise PolicyError(
                f"unknown cache mode {self.mode!r} (use one of {CACHE_MODES})"
            )
        if not isinstance(self.cacheable, tuple):
            object.__setattr__(self, "cacheable", tuple(self.cacheable))

    @property
    def lease_seconds(self) -> float:
        """The lease converted to the simulated clock's seconds."""
        return self.lease_ms / 1000.0

    @property
    def subscribes(self) -> bool:
        """Whether this mode registers for write-invalidation frames."""
        return self.mode in ("leases", "invalidate")

    @property
    def expires(self) -> bool:
        """Whether entries time out after the lease."""
        return self.mode in ("leases", "write_through")


def freeze_arguments(args: tuple, kwargs: dict) -> Any:
    """Canonicalize call arguments into a hashable cache-key component.

    Lists and dicts (the containers the marshaller round-trips) are frozen
    recursively; unhashable values that remain raise ``TypeError`` to the
    caller, which treats the call as uncacheable.
    """

    def freeze(value: Any) -> Any:
        if isinstance(value, (list, tuple)):
            return tuple(freeze(item) for item in value)
        if isinstance(value, dict):
            return tuple(sorted((key, freeze(item)) for key, item in value.items()))
        if isinstance(value, set):
            return frozenset(freeze(item) for item in value)
        hash(value)
        return value

    return (freeze(args), freeze(kwargs))


@dataclass
class _Entry:
    """One cached result: the value plus its expiry deadline."""

    value: Any
    #: Simulated time after which the entry is stale (``None`` = no expiry).
    expires_at: Optional[float]


@dataclass(frozen=True)
class FillToken:
    """The validity snapshot a cache fill captures before its read ships.

    ``version`` is the target object's invalidation version at fill start;
    :meth:`ResultCache.store` rejects the fill when the version moved while
    the read was in flight (a write raced it).  ``expires_at`` is the lease
    deadline measured from fill *start*, so an entry can never outlive the
    subscription that guards it.
    """

    object_id: str
    version: int
    expires_at: Optional[float]


class ResultCache:
    """One service's client-side result cache (keyed by member + arguments).

    Built by :meth:`CacheManager.create_cache`; the manager routes incoming
    invalidations into every cache it created.  Entries are keyed by
    ``(object id, member, frozen arguments)``; an invalidation drops every
    entry of the named object.  All counters (``hits``, ``misses``, ...) are
    exposed for benchmarks and the adaptive policy's hit-rate term.
    """

    def __init__(
        self,
        manager: "CacheManager",
        policy: CachePolicy,
        cacheable: frozenset = frozenset(),
    ) -> None:
        self.manager = manager
        self.policy = policy
        #: Member names this cache may serve (union of implementation
        #: ``@cacheable`` markers and the policy's explicit list).
        self.cacheable = frozenset(cacheable) | frozenset(policy.cacheable)
        self._entries: Dict[tuple, _Entry] = {}
        self._by_object: Dict[str, set] = {}
        self._pending_writes: Dict[str, list] = {}
        #: Lookups served locally (no round trip).
        self.hits = 0
        #: Lookups that had to go to the network.
        self.misses = 0
        #: Entries stored (successful fills).
        self.stores = 0
        #: Fills discarded because an invalidation raced the read.
        self.racy_fills_discarded = 0
        #: Entries dropped by incoming invalidations.
        self.entries_invalidated = 0
        #: Lookups refused because an own write was still unresolved.
        self.write_bypasses = 0
        #: Entries dropped because their lease expired.
        self.entries_expired = 0

    # ------------------------------------------------------------------
    # the read path
    # ------------------------------------------------------------------

    def lookup(self, reference: RemoteRef, member: str, args: tuple, kwargs: dict):
        """Serve one call locally if possible; returns ``(hit, value)``.

        Misses when the member is not cacheable, the arguments are not
        hashable, the entry is absent or lease-expired, or a write through
        this client is still unresolved (serving a pre-write value while the
        write is in flight would violate program order).
        """
        if member not in self.cacheable:
            return False, None
        object_id = reference.object_id
        if self._has_pending_write(object_id):
            self.write_bypasses += 1
            self.misses += 1
            return False, None
        try:
            key = (object_id, member, freeze_arguments(args, kwargs))
        except TypeError:
            self.misses += 1
            return False, None
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return False, None
        if entry.expires_at is not None and self.manager.now() >= entry.expires_at:
            self._discard(key)
            self.entries_expired += 1
            self.misses += 1
            return False, None
        # LRU touch: re-insert at the back of the (ordered) dict.
        del self._entries[key]
        self._entries[key] = entry
        self.hits += 1
        return True, entry.value

    def begin_fill(self, reference: RemoteRef) -> FillToken:
        """Snapshot validity for one miss about to go to the network.

        Subscribing happens here — *before* the read ships — so any write
        the read races is guaranteed to either be observed by the read or to
        bump the version and void the fill.
        """
        now = self.manager.now()
        expires_at = now + self.policy.lease_seconds if self.policy.expires else None
        version = self.manager.version(reference.object_id)
        if self.policy.subscribes:
            lease = self.policy.lease_seconds if self.policy.mode == "leases" else None
            subscribed_until = self.manager.subscribe(
                reference, lease, cacheable=self.policy.cacheable
            )
            if subscribed_until is None:
                # No subscription, no coherence guarantee: poison the token
                # so this fill is never stored (the read itself still runs —
                # and typically rides a failover to a re-keyed export).
                version = -1
            elif expires_at is not None:
                # An entry must never outlive the subscription guarding it:
                # a reused (earlier) subscription shortens the entry, it
                # does not stretch the lease.
                expires_at = min(expires_at, subscribed_until)
        return FillToken(
            object_id=reference.object_id,
            version=version,
            expires_at=expires_at,
        )

    def store(
        self,
        reference: RemoteRef,
        member: str,
        args: tuple,
        kwargs: dict,
        value: Any,
        token: FillToken,
    ) -> bool:
        """Insert one filled result, unless an invalidation raced its read."""
        if member not in self.cacheable:
            return False
        object_id = reference.object_id
        if token.object_id != object_id or token.version != self.manager.version(
            object_id
        ):
            self.racy_fills_discarded += 1
            return False
        if token.expires_at is not None and self.manager.now() >= token.expires_at:
            return False
        try:
            key = (object_id, member, freeze_arguments(args, kwargs))
        except TypeError:
            return False
        if key in self._entries:
            del self._entries[key]
        self._entries[key] = _Entry(value=value, expires_at=token.expires_at)
        self._by_object.setdefault(object_id, set()).add(key)
        self.stores += 1
        while len(self._entries) > self.policy.max_entries:
            oldest = next(iter(self._entries))
            self._discard(oldest)
        return True

    # ------------------------------------------------------------------
    # the write path
    # ------------------------------------------------------------------

    def note_write(self, reference: RemoteRef, future: Any = None) -> None:
        """React to a (possibly still buffered) write through this client.

        The object's entries drop and its version bumps immediately — a
        pre-write value must not survive, and in-flight fills must be
        voided.  When the write's ``future`` is supplied, cacheable lookups
        on the object additionally *bypass* the cache until it resolves, so
        a read enqueued after an unflushed write never observes the
        pre-write state out of order.
        """
        object_id = reference.object_id
        self.manager.bump_version(object_id)
        if future is not None and not getattr(future, "done", True):
            pending = self._pending_writes.setdefault(object_id, [])
            pending.append(future)

    def _has_pending_write(self, object_id: str) -> bool:
        pending = self._pending_writes.get(object_id)
        if not pending:
            return False
        live = [future for future in pending if not future.done]
        if live:
            self._pending_writes[object_id] = live
            return True
        del self._pending_writes[object_id]
        return False

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------

    def invalidate_object(self, object_id: str) -> int:
        """Drop every entry of one object; returns how many were dropped."""
        keys = self._by_object.pop(object_id, None)
        if not keys:
            return 0
        dropped = 0
        for key in keys:
            if self._entries.pop(key, None) is not None:
                dropped += 1
        self.entries_invalidated += dropped
        return dropped

    def flush_reference(self, reference: RemoteRef) -> int:
        """Drop every entry held against ``reference`` (failover, rebind)."""
        return self.invalidate_object(reference.object_id)

    def clear(self) -> None:
        """Drop everything (counters are kept)."""
        self._entries.clear()
        self._by_object.clear()

    def _discard(self, key: tuple) -> None:
        self._entries.pop(key, None)
        keys = self._by_object.get(key[0])
        if keys is not None:
            keys.discard(key)
            if not keys:
                del self._by_object[key[0]]

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served locally (0.0 before any lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache entries={len(self._entries)} hits={self.hits} "
            f"misses={self.misses} mode={self.policy.mode!r}>"
        )


def cached_enqueue(
    cache: "ResultCache",
    cacheable: frozenset,
    reference: RemoteRef,
    member: str,
    args: tuple,
    kwargs: dict,
    enqueue: Any,
) -> InvocationFuture:
    """The cache-aware dispatch protocol, shared by every entry point.

    Both the façade (:meth:`repro.api.service.Service._enqueue`) and the
    generated batch proxies
    (:meth:`~repro.runtime.batching.BatchingDispatchMixin._enqueue`) funnel
    through this one function, so the coherence-critical sequence lives in
    exactly one place: a cacheable **hit** returns an already-resolved
    future without touching ``enqueue``; a **miss** snapshots a fill token
    (subscribing *before* the read ships) and stores the result only if no
    invalidation raced it; a **non-cacheable** call counts as a write — it
    drops the cache's entries for the object and bypasses lookups until its
    future resolves.  ``enqueue(member, args, kwargs)`` performs the actual
    dispatch and must return an
    :class:`~repro.runtime.pipelining.InvocationFuture`.
    """
    tracer = getattr(cache.manager.space.network, "tracer", None)
    if member in cacheable:
        hit, value = cache.lookup(reference, member, args, kwargs)
        if hit:
            if tracer is not None:
                # The hit never reaches the dispatch pipe, so no trace is
                # sampled for it — a global instant is the only record.
                tracer.instant(
                    "cache-hit",
                    ts=cache.manager.now(),
                    member=member,
                    object=reference.object_id,
                )
            future = InvocationFuture(member)
            future._resolve(value)
            return future
        if tracer is not None:
            tracer.instant(
                "cache-miss",
                ts=cache.manager.now(),
                member=member,
                object=reference.object_id,
            )
        token = cache.begin_fill(reference)
        future = enqueue(member, args, kwargs)

        def fill(done: InvocationFuture) -> None:
            if done.ok:
                cache.store(reference, member, args, kwargs, done.result(), token)

        future.add_done_callback(fill)
        return future
    future = enqueue(member, args, kwargs)
    cache.note_write(reference, future)
    return future


class CacheManager:
    """The per-client cache control plane: one per caching address space.

    The manager owns the pieces every cache on one client shares: the
    invalidation listener registered with the client's
    :class:`~repro.runtime.address_space.AddressSpace` (standalone ``!inv``
    frames and response piggybacks both arrive there), the per-object
    invalidation *versions* that void racy fills, and the subscription
    bookkeeping that keeps ``!sub`` traffic down to one message per object
    per lease window.  :class:`~repro.api.session.Session` creates one
    lazily when the first cached service appears and closes it on teardown.
    """

    def __init__(self, space: Any) -> None:
        self.space = space
        self._caches: List[ResultCache] = []
        self._versions: Dict[str, int] = {}
        #: Active subscriptions: object id → simulated expiry (inf = no lease).
        self._subscriptions: Dict[str, float] = {}
        #: Standalone + piggybacked invalidation frames applied.
        self.invalidations_received = 0
        #: Subscription frames actually sent (renewals included).
        self.subscriptions_sent = 0
        self._closed = False
        space.add_invalidation_listener(self._on_invalidation)

    # ------------------------------------------------------------------
    # cache creation / lifecycle
    # ------------------------------------------------------------------

    def create_cache(
        self, policy: CachePolicy, cacheable: frozenset = frozenset()
    ) -> ResultCache:
        """Build one service's :class:`ResultCache` under this manager."""
        cache = ResultCache(self, policy, cacheable)
        self._caches.append(cache)
        return cache

    def caches(self) -> List[ResultCache]:
        """Every cache created through this manager."""
        return list(self._caches)

    def close(self) -> None:
        """Detach from the address space and drop every cache (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self.space.remove_invalidation_listener(self._on_invalidation)
        for cache in self._caches:
            cache.clear()
        self._subscriptions.clear()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    # ------------------------------------------------------------------
    # shared coherence state
    # ------------------------------------------------------------------

    def now(self) -> float:
        """The simulated clock the leases are measured against."""
        return self.space.network.clock.now

    def version(self, object_id: str) -> int:
        """The object's invalidation version (bumped on every invalidation)."""
        return self._versions.get(object_id, 0)

    def bump_version(self, object_id: str) -> int:
        """Advance the object's version and drop its entries everywhere."""
        self._versions[object_id] = self._versions.get(object_id, 0) + 1
        for cache in self._caches:
            cache.invalidate_object(object_id)
        return self._versions[object_id]

    def subscribe(
        self,
        reference: RemoteRef,
        lease: Optional[float],
        cacheable: tuple = (),
    ) -> Optional[float]:
        """Ensure a live subscription for ``reference``.

        Returns the active subscription's expiry in simulated time
        (``inf`` for an unbounded one) — fills clamp their entries to it —
        or ``None`` when the owner is unreachable (mid-failover), in which
        case the caller must not cache its fill.  A subscription still
        covering at least half the lease is reused rather than renewed, so
        a burst of misses on one object pays one ``!sub`` frame, not one
        per miss.  The server answers invalidations by *dropping* the
        subscription, and :meth:`_on_invalidation` mirrors that here — the
        next fill re-subscribes.  ``cacheable`` carries the policy's
        explicitly-declared side-effect-free members for the server to
        honour (see :func:`~repro.transports.base.frame_subscription`).
        """
        object_id = reference.object_id
        now = self.now()
        current = self._subscriptions.get(object_id)
        if current is not None:
            if current == float("inf"):
                return current
            if lease is not None and current - now >= lease / 2:
                return current
        payload = frame_subscription(
            object_id,
            self.space.node_id,
            None if lease is None else lease,
            cacheable=cacheable,
        )
        try:
            self.space.network.send_request(
                self.space.node_id, reference.node_id, payload
            )
        except NetworkError:
            return None
        expiry = float("inf") if lease is None else now + lease
        self._subscriptions[object_id] = expiry
        self.subscriptions_sent += 1
        return expiry

    def flush_reference(self, reference: RemoteRef) -> int:
        """Drop every cached entry held against ``reference``.

        Used by the failover path: leases held against a demoted primary are
        flushed rather than left to expire.  The flush also bumps the
        object's version so a fill already in flight against the demoted
        primary is voided at :meth:`ResultCache.store` time — without the
        bump it would re-prime the cache with a pre-failover value right
        after the flush emptied it.
        """
        self._subscriptions.pop(reference.object_id, None)
        dropped = 0
        for cache in self._caches:
            dropped += cache.flush_reference(reference)
        self.bump_version(reference.object_id)
        return dropped

    def _on_invalidation(self, object_ids: List[str]) -> None:
        """The address space's listener: apply one ``!inv`` frame."""
        tracer = getattr(self.space.network, "tracer", None)
        for object_id in object_ids:
            self.invalidations_received += 1
            self._subscriptions.pop(object_id, None)
            self.bump_version(object_id)
            if tracer is not None:
                tracer.instant(
                    "cache-inv", ts=self.now(), object=object_id, node=self.space.node_id
                )

    # ------------------------------------------------------------------
    # aggregate statistics (consumed by the adaptive policy)
    # ------------------------------------------------------------------

    @property
    def hits(self) -> int:
        """Total hits across every cache."""
        return sum(cache.hits for cache in self._caches)

    @property
    def misses(self) -> int:
        """Total misses across every cache."""
        return sum(cache.misses for cache in self._caches)

    @property
    def hit_rate(self) -> float:
        """Aggregate fraction of lookups served locally."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CacheManager node={self.space.node_id!r} caches={len(self._caches)} "
            f"hit_rate={self.hit_rate:.2f}>"
        )
